//! The self-healing acceptance test: a three-node cluster with seeded
//! fault injection, a node killed mid-event under an asymmetric partition,
//! heartbeat-driven failover from the dead node's registry checkpoint —
//! and the merged per-stream alarm sequences still **bit-identical** to an
//! undisturbed single-process run, with zero duplicate deliveries.
//!
//! Every seed scripts a different kill round and a different sprinkle of
//! transient transport faults (dropped frames, corrupted frames, read
//! stalls), all replayed deterministically from the seed: no wall clocks,
//! no entropy. Set `ETSC_FAULT_SEED` to pin a single seed (decimal or
//! `0x`-hex) when bisecting a failure.

use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::net::{
    ClientConfig, Cluster, Endpoint, Fault, FaultPlan, Listener, Node, NodeConfig, RetryPolicy,
    Supervisor, SupervisorConfig,
};
use etsc::persist::ModelRegistry;
use etsc::serve::{DedupCursor, Record, Runtime, RuntimeConfig, StreamAlarm};
use etsc::stream::{Alarm, StreamMonitorConfig, StreamNorm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

/// Same two-class problem as the serve and net end-to-end tests.
fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let level = if i % 2 == 0 { 0.0 } else { 3.0 };
            (0..24)
                .map(|j| level + 0.06 * ((i * 5 + j * 3) % 11) as f64)
                .collect()
        })
        .collect();
    let labels = (0..10).map(|i| i % 2).collect();
    UcrDataset::new(data, labels).unwrap()
}

fn serve_cfg() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 3,
            norm: StreamNorm::Raw,
            refractory: 40,
        },
        model_name: "ects".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

const STREAM_IDS: [u64; 5] = [3, 17, 256, 99_991, u64::MAX / 3];
const ROUNDS: usize = 160;

/// Interleaved traffic: every stream alternates quiet background with an
/// event resembling a class-1 training exemplar, offset per stream.
fn traffic() -> Vec<Vec<Record>> {
    let train = train_set();
    let event: Vec<f64> = train.series(1).to_vec();
    (0..ROUNDS)
        .map(|t| {
            STREAM_IDS
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let start = 20 + 13 * k;
                    let value = if t >= start && t < start + event.len() {
                        event[t - start]
                    } else {
                        0.02 * ((t * 7 + k) % 5) as f64
                    };
                    Record::new(id, value)
                })
                .collect()
        })
        .collect()
}

/// The in-process reference run the disturbed cluster must match.
fn reference_alarms(clf: &Ects) -> Vec<StreamAlarm> {
    let mut rt = Runtime::new(clf, serve_cfg()).unwrap();
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        rt.ingest(batch).unwrap();
        if (t + 1) % 8 == 0 {
            alarms.extend(rt.drain());
        }
    }
    alarms.extend(rt.drain());
    assert!(!alarms.is_empty(), "the planted events must produce alarms");
    alarms
}

fn per_stream(alarms: &[StreamAlarm], id: u64) -> Vec<Alarm> {
    alarms
        .iter()
        .filter(|a| a.stream == id)
        .map(|a| a.alarm)
        .collect()
}

fn bind_loopback() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    (listener, endpoint)
}

fn tmp_root(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("etsc-fault-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

struct StopGuard<'n, 'a>(&'n Node<'a, Ects>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// The seeds the fault matrix runs. `ETSC_FAULT_SEED` overrides with a
/// single pinned seed for bisection.
fn fault_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("ETSC_FAULT_SEED") {
        let s = s.trim();
        let seed = s
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| s.parse())
            .unwrap_or_else(|e| panic!("ETSC_FAULT_SEED {s:?}: {e}"));
        return vec![seed];
    }
    vec![0xA1, 0xB2C3, 0xD4E5F6]
}

/// One full kill-and-heal run under the given seed. Panics (with the seed
/// in the message) on any divergence from the reference.
fn run_seed(seed: u64, clf: &Ects, reference: &[StreamAlarm]) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Where the crash lands: always mid-run, usually inside some stream's
    // event window, always with traffic left to serve afterwards.
    let kill_round = rng.random_range(30..120usize);
    // Rounds that take a scripted transient fault on their first request.
    let mut chaos: BTreeSet<usize> = BTreeSet::new();
    while chaos.len() < 3 {
        let r = rng.random_range(5..kill_round);
        chaos.insert(r);
    }
    let chaos_faults: Vec<Fault> = (0..chaos.len())
        .map(|_| match rng.random_range(0..3u32) {
            0 => Fault::DropWrite,
            1 => Fault::CorruptWrite,
            _ => Fault::StallReads(1 + rng.random_range(0..3u32)),
        })
        .collect();

    let root = tmp_root(&format!("seed-{seed:x}"));
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Node 0 is doomed: it checkpoints after every batch so that every
    // batch it ever acks is covered when it dies.
    let mut rt0 = Runtime::new(clf, serve_cfg()).unwrap();
    rt0.enable_checkpoints(ModelRegistry::open(&dirs[0]).unwrap(), 1)
        .unwrap();
    let node0 = Node::new(rt0, NodeConfig::default());
    let node1 = Node::new(
        Runtime::new(clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let node2 = Node::new(
        Runtime::new(clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();
    let (l2, e2) = bind_loopback();

    let batches = traffic();
    let disturbed = std::thread::scope(|s| {
        let mut guard0 = Some(StopGuard(&node0));
        let guard1 = StopGuard(&node1);
        let guard2 = StopGuard(&node2);
        let mut server0 = Some(s.spawn(|| node0.serve(l0)));
        let server1 = s.spawn(|| node1.serve(l1));
        let server2 = s.spawn(|| node2.serve(l2));

        let inj = FaultPlan::new().build();
        let cfg = ClientConfig {
            request_timeout: Duration::from_millis(150),
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                jitter_seed: seed,
            },
            client_id: 1,
            faults: Some(inj.clone()),
            ..ClientConfig::default()
        };
        let mut cluster = Cluster::connect_with(&[e0, e1, e2], cfg).unwrap();
        for &id in &STREAM_IDS {
            cluster.open_stream(id).unwrap();
        }
        // Deterministic placement (the ring depends on ephemeral ports):
        // two streams on the doomed node, three across the survivors.
        cluster.migrate(&[STREAM_IDS[1], STREAM_IDS[3]], 0).unwrap();
        cluster.migrate(&[STREAM_IDS[0], STREAM_IDS[4]], 1).unwrap();
        cluster.migrate(&[STREAM_IDS[2]], 2).unwrap();

        let sup_cfg = SupervisorConfig::new(dirs.clone(), "ects");
        let mut sup: Supervisor<Ects> = Supervisor::new(sup_cfg);
        let mut sink = DedupCursor::default();
        let mut delivered: Vec<StreamAlarm> = Vec::new();
        let mut failed_over = false;

        for (t, batch) in batches.iter().enumerate() {
            if chaos.contains(&t) {
                // A scripted transient: the next transport op takes the
                // fault, the tagged retry absorbs it.
                let k = chaos.iter().position(|&r| r == t).unwrap();
                inj.inject(chaos_faults[k]);
            }
            if t == kill_round {
                // The partition first: requests keep reaching the nodes
                // but every ack is lost, so this round's sub-batches are
                // applied-but-unacknowledged and end up stashed.
                inj.inject(Fault::PartitionInbound);
                assert!(
                    cluster.ingest(batch).is_err(),
                    "seed {seed:#x}: the partitioned round must surface its failure"
                );
                assert!(cluster.pending_batches() >= 1);
                // Kill the doomed node while the partition still holds.
                node0.stop();
                drop(guard0.take());
                server0.take().unwrap().join().unwrap().unwrap();
                inj.heal();

                // Three missed heartbeats declare it dead; the failover
                // recovers its streams from the checkpoint and re-homes
                // them onto the survivors.
                let mut reports = Vec::new();
                for _ in 0..3 {
                    reports.extend(sup.tick(&mut cluster).unwrap());
                }
                assert_eq!(reports.len(), 1, "seed {seed:#x}: exactly one failover");
                let report = &reports[0];
                assert_eq!(report.node, 0);
                let mut moved: Vec<u64> = report.moved.iter().map(|&(id, _)| id).collect();
                moved.sort_unstable();
                assert_eq!(moved, {
                    let mut v = vec![STREAM_IDS[1], STREAM_IDS[3]];
                    v.sort_unstable();
                    v
                });
                cluster.apply_failover(report).unwrap();
                // Only the dead node's stash is settled here; the
                // survivors' applied-but-unacknowledged sub-batches stay
                // stashed until the next ingest flushes them (and the
                // nodes dedup the re-sends).
                assert!(cluster.pending_batches() <= 2, "seed {seed:#x}");
                // Checkpoint recovery re-delivers at-least-once; the sink
                // cursor upgrades that to exactly-once.
                delivered.extend(sink.filter(report.redelivered.clone()));
                failed_over = true;
                continue;
            }
            cluster
                .ingest(batch)
                .unwrap_or_else(|e| panic!("seed {seed:#x}, round {t}: {e}"));
            if (t + 1) % 8 == 0 {
                let drained = cluster
                    .drain()
                    .unwrap_or_else(|e| panic!("seed {seed:#x}, round {t}: drain: {e}"));
                delivered.extend(sink.filter(drained));
            }
        }
        delivered.extend(sink.filter(cluster.drain().unwrap()));
        assert!(failed_over, "seed {seed:#x}: the kill round must have run");
        assert_eq!(
            cluster.pending_batches(),
            0,
            "seed {seed:#x}: every stashed batch must have been redelivered"
        );
        assert!(cluster.router().is_down(0));
        assert_eq!(cluster.stream_count().unwrap(), STREAM_IDS.len());
        assert_eq!(cluster.failovers(), 1);
        // The partitioned round's sub-batches reached the survivors but
        // their acks were lost; the post-failover flush re-sent them and
        // the nodes' ingest cursors dropped every re-send.
        for node in [&node1, &node2] {
            assert!(
                node.with_runtime(|rt| rt.stats().duplicate_batches) >= 1,
                "seed {seed:#x}: survivors must have deduplicated the re-flushed batches"
            );
        }

        drop(guard1);
        drop(guard2);
        server1.join().unwrap().unwrap();
        server2.join().unwrap().unwrap();
        delivered
    });
    let _ = std::fs::remove_dir_all(&root);

    // Exactly-once: no (stream, time) delivered twice, ever.
    let mut seen = BTreeSet::new();
    for a in &disturbed {
        assert!(
            seen.insert((a.stream, a.alarm.time)),
            "seed {seed:#x}: duplicate delivery of stream {} time {}",
            a.stream,
            a.alarm.time
        );
    }
    // Bit-identical: the kill, the partition, the chaos rounds, and the
    // failover are all invisible in every stream's alarm sequence.
    for &id in &STREAM_IDS {
        assert_eq!(
            per_stream(&disturbed, id),
            per_stream(reference, id),
            "seed {seed:#x}, stream {id}: disturbed run diverged from the reference"
        );
    }
}

#[test]
fn killed_node_under_partition_is_invisible_in_the_alarm_sequences() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);
    for seed in fault_seeds() {
        run_seed(seed, &clf, &reference);
    }
}
