//! End-to-end audit tests: the full meaningfulness report over the words
//! domain, plus the Fig 9 prefix-curve property.

use etsc::audit::homophone::homophone_audit;
use etsc::audit::inclusion::inclusion_audit;
use etsc::audit::normalization::sensitivity_sweep;
use etsc::audit::prefix::prefix_audit;
use etsc::audit::report::{Assessment, DeploymentAssumptions, MeaningfulnessReport};
use etsc::audit::PatternLexicon;
use etsc::classifiers::eval::accuracy;
use etsc::classifiers::knn::NearestNeighbors;
use etsc::datasets::words::{utterance, WordConfig};
use etsc::early::metrics::PrefixPolicy;
use etsc::stream::CostModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn gun_point_domain_fails_the_meaningfulness_audit() {
    // Canonical (jitter-free) renditions: the audit asks whether the
    // *lexicon* contains confusers, so rendition noise only blurs the
    // question.
    let cfg = WordConfig {
        noise: 0.0,
        amp_jitter: 0.0,
        time_jitter: 0.0,
        ..WordConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(301);

    let mut targets = PatternLexicon::new();
    targets.add("gun", utterance("gun", &cfg, &mut rng));
    targets.add("point", utterance("point", &cfg, &mut rng));

    let mut lexicon = PatternLexicon::new();
    for word in [
        "gunk",
        "gunnysack",
        "pointer",
        "pointless",
        "burgundy",
        "appointment",
    ] {
        lexicon.add(word, utterance(word, &cfg, &mut rng));
    }

    let prefix_findings = prefix_audit(&targets, &lexicon, 0.35);
    let inclusion_findings = inclusion_audit(&targets, &lexicon, 0.35);
    assert!(
        prefix_findings.len() >= 3,
        "gun-/point-prefixed words must collide, got {}",
        prefix_findings.len()
    );
    assert!(
        inclusion_findings.len() >= prefix_findings.len(),
        "inclusion is a superset of prefix collisions"
    );
    // Every prefix collision names a genuinely prefixed word.
    for f in &prefix_findings {
        assert!(
            f.confuser.starts_with(&f.target),
            "{} flagged as prefix-confuser of {}",
            f.confuser,
            f.target
        );
    }

    // Assemble a full report: the confusability criterion alone must fail it.
    let mut probes = etsc::datasets::words::word_dataset(&["gun", "point"], 3, 100, &cfg, 302);
    probes.znormalize();
    let bg = etsc::datasets::random_walk::smoothed_random_walk(1 << 16, 15, 303);
    let homophone_findings = homophone_audit(&probes, &[0], &[("rw", &bg)]);

    let mut train = etsc::datasets::words::word_dataset(&["gun", "point"], 10, 100, &cfg, 304);
    train.znormalize();
    let clf = etsc::early::ects::Ects::fit(&train, &etsc::early::ects::EctsConfig::default());
    let mut test = etsc::datasets::words::word_dataset(&["gun", "point"], 5, 100, &cfg, 305);
    test.znormalize();
    let sensitivity = sensitivity_sweep(&clf, &test, &[0.0, 1.0], PrefixPolicy::Oracle, 306);

    let report = MeaningfulnessReport {
        assumptions: DeploymentAssumptions {
            cost_model: CostModel::appendix_b(),
            events_per_million: 5.0,
            expected_fp_per_million: 100.0,
        },
        prefix_findings,
        inclusion_findings,
        homophone_findings,
        sensitivity,
    };
    assert_eq!(report.confusability_assessment(), Assessment::Fail);
    assert_eq!(report.overall(), Assessment::Fail);
    assert!(report.render().contains("FAIL"));
}

#[test]
fn fig9_prefix_curve_has_an_interior_optimum() {
    // The Fig 9 property: some proper prefix classifies at least as well as
    // the full series, because the GunPoint tail is non-informative padding.
    let cfg = etsc::datasets::gunpoint::GunPointConfig::default();
    let train_raw = etsc::datasets::gunpoint::generate(12, &cfg, 401);
    let test_raw = etsc::datasets::gunpoint::generate(20, &cfg, 402);
    let full_len = train_raw.series_len();

    let acc_at = |len: usize| {
        let mut train = train_raw.prefix(len).unwrap();
        let mut test = test_raw.prefix(len).unwrap();
        train.znormalize();
        test.znormalize();
        accuracy(&NearestNeighbors::one_nn_euclidean(&train), &test)
    };

    let full_acc = acc_at(full_len);
    let best_prefix_acc = (30..full_len).step_by(8).map(acc_at).fold(0.0f64, f64::max);
    assert!(
        best_prefix_acc >= full_acc,
        "a prefix should match or beat full length: best {best_prefix_acc} vs full {full_acc}"
    );
    assert!(full_acc > 0.8, "the task itself is learnable: {full_acc}");
}

#[test]
fn homophone_audit_on_gunpoint_pair_protocol() {
    // Fig 5's protocol end-to-end: two same-class exemplars vs a long
    // gesture-free background.
    let gp_cfg = etsc::datasets::gunpoint::GunPointConfig {
        noise: 0.04,
        amplitude_jitter: 0.15,
        onset_jitter: 6.0,
        ..etsc::datasets::gunpoint::GunPointConfig::default()
    };
    let mut pool = etsc::datasets::gunpoint::generate(40, &gp_cfg, 501);
    pool.znormalize();
    let pair = pool.subset(&[3, 20]).unwrap(); // both class Gun
    assert_eq!(pair.label(0), pair.label(1));

    let bg =
        etsc::datasets::eog::eog_stream(1 << 17, &etsc::datasets::eog::EogConfig::default(), 502);
    let findings = homophone_audit(&pair, &[0, 1], &[("eog", &bg)]);
    assert_eq!(findings.len(), 2);
    let n_homophones = findings.iter().filter(|f| f.has_homophone()).count();
    assert!(
        n_homophones >= 1,
        "an hour of eye movement should contain a gesture homophone"
    );
}
