//! Thread-count invariance of every parallelized call site.
//!
//! The parallel layer (`etsc_core::parallel`) promises that worker count is
//! a pure performance knob: chunks are contiguous, per-item work is
//! identical to the serial loop, and results are stitched in input order.
//! These tests drive each parallelized call site — the subsequence-search
//! engine, the ECTS fit, the TEASER fit, batch evaluation, the multi-stream
//! driver, and the stream monitor — at 1, 2, and 7 workers (serial, even
//! split, ragged split) via the scoped `with_threads` override and assert
//! identical outputs. Fixtures are sized past each site's work gate so the
//! parallel path genuinely executes at t > 1.

use etsc::classifiers::eval::{accuracy, ConfusionMatrix};
use etsc::classifiers::knn::NearestNeighbors;
use etsc::core::nn::BatchProfile;
use etsc::core::parallel::with_threads;
use etsc::core::UcrDataset;
use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::datasets::random_walk::smoothed_random_walk;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::teaser::{Teaser, TeaserConfig};
use etsc::early::{Decision, DecisionSession, EarlyClassifier, MultiSession, SessionNorm};
use etsc::stream::{StreamMonitor, StreamMonitorConfig, StreamNorm};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// 34 exemplars → 561 pairs, past the ECTS fit's 512-pair parallel gate.
fn train_set() -> UcrDataset {
    let mut d = gunpoint::generate(17, &GunPointConfig::default(), 9);
    d.znormalize();
    d
}

#[test]
fn profile_engine_is_thread_count_invariant() {
    let hay = smoothed_random_walk(20_000, 5, 3); // past the window-work gate
    let q: Vec<f64> = smoothed_random_walk(64, 3, 4);
    let engine = BatchProfile::new(&hay);
    let serial = with_threads(1, || engine.profile(&q));
    let nearest_serial = with_threads(1, || engine.nearest(&q)).unwrap();
    for t in THREAD_COUNTS {
        let p = with_threads(t, || engine.profile(&q));
        assert_eq!(p, serial, "profile at {t} threads");
        let n = with_threads(t, || engine.nearest(&q)).unwrap();
        assert_eq!(n, nearest_serial, "nearest at {t} threads");
        let batch = with_threads(t, || engine.profiles(&[&q, &q[..32]]));
        assert_eq!(batch[0], serial, "batch profile at {t} threads");
    }
}

#[test]
fn ects_fit_is_thread_count_invariant() {
    // 84 exemplars × 150 samples → n²·L ≈ 1.06M, past the fit's total-work
    // gate, so t > 1 genuinely takes the row-sliced parallel sweep.
    let mut train = gunpoint::generate(42, &GunPointConfig::default(), 9);
    train.znormalize();
    let cfg = EctsConfig {
        min_support: 0.2, // exercise the support filter's distance accessor
        ..EctsConfig::default()
    };
    let serial = with_threads(1, || Ects::fit(&train, &cfg));
    for t in THREAD_COUNTS {
        let fitted = with_threads(t, || Ects::fit(&train, &cfg));
        assert_eq!(fitted.mpls(), serial.mpls(), "MPLs at {t} threads");
        // Decisions downstream of the fit agree too.
        let probe = train.series(0);
        assert_eq!(fitted.decide(&probe[..40]), serial.decide(&probe[..40]));
    }
}

#[test]
fn teaser_fit_is_thread_count_invariant() {
    let train = train_set();
    let cfg = TeaserConfig {
        n_snapshots: 8,
        ..TeaserConfig::fast()
    };
    let serial = with_threads(1, || Teaser::fit(&train, &cfg));
    for t in THREAD_COUNTS {
        let fitted = with_threads(t, || Teaser::fit(&train, &cfg));
        assert_eq!(fitted.snapshot_lengths(), serial.snapshot_lengths());
        assert_eq!(fitted.consistency(), serial.consistency(), "{t} threads");
        for i in 0..train.len() {
            assert_eq!(
                fitted.decide(train.series(i)),
                serial.decide(train.series(i)),
                "decision for exemplar {i} at {t} threads"
            );
        }
    }
}

#[test]
fn batch_evaluation_is_thread_count_invariant() {
    let train = train_set();
    // 150 test exemplars: past the 128-prediction eval gate.
    let test = {
        let mut d = gunpoint::generate(75, &GunPointConfig::default(), 77);
        d.znormalize();
        d
    };
    let clf = NearestNeighbors::one_nn_euclidean(&train);
    let acc_serial = with_threads(1, || accuracy(&clf, &test));
    let cm_serial = with_threads(1, || ConfusionMatrix::evaluate(&clf, &test));
    for t in THREAD_COUNTS {
        assert_eq!(with_threads(t, || accuracy(&clf, &test)), acc_serial);
        assert_eq!(
            with_threads(t, || ConfusionMatrix::evaluate(&clf, &test)),
            cm_serial,
            "{t} threads"
        );
    }
}

#[test]
fn multi_session_push_all_is_thread_count_invariant() {
    let train = train_set();
    let ects = Ects::fit(&train, &EctsConfig::default());
    let stream = smoothed_random_walk(200, 5, 11);
    // 600 concurrent streams: past the 512-session fan-out gate.
    let run = |threads: usize| -> Vec<(u64, bool, usize)> {
        with_threads(threads, || {
            let mut multi = MultiSession::new(&ects, SessionNorm::PerPrefix);
            for key in 0..600u64 {
                multi.open(key);
            }
            let mut events = Vec::new();
            for (i, &x) in stream.iter().enumerate() {
                multi.push_all(x, |key, _decision, committed_now| {
                    if committed_now {
                        events.push((key, true, i));
                    }
                });
            }
            events
        })
    };
    let serial = run(1);
    for t in THREAD_COUNTS {
        assert_eq!(run(t), serial, "{t} threads");
    }
}

/// The four algorithm/norm combinations that previously fell back to the
/// whole-prefix `ReplaySession` — EDSC under per-prefix z-normalization,
/// RelClass with a full covariance (raw), and RelClass / ProbThreshold
/// under per-prefix z-normalization — each driven as a 600-stream
/// `MultiSession` fleet (past the 512-session fan-out gate) at 1, 2, and 7
/// workers. Their incremental sessions hold only per-stream state, so
/// worker count must be a pure performance knob.
#[test]
fn converted_session_combinations_are_thread_count_invariant() {
    use etsc::classifiers::centroid::NearestCentroid;
    use etsc::classifiers::gaussian::CovarianceKind;
    use etsc::early::edsc::{Edsc, EdscConfig, ThresholdMethod};
    use etsc::early::relclass::{RelClass, RelClassConfig};
    use etsc::early::threshold::ProbThreshold;

    // A small two-class set: flat head, class-separated tail.
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..6 {
            data.push(
                (0..48)
                    .map(|j| {
                        let noise = 0.05 * (((i * 13 + j * 7 + c * 29) % 11) as f64 - 5.0);
                        if j < 16 {
                            noise
                        } else {
                            c as f64 * 2.0 + noise
                        }
                    })
                    .collect::<Vec<f64>>(),
            );
            labels.push(c);
        }
    }
    let train = UcrDataset::new(data, labels).unwrap();

    let edsc = Edsc::fit(
        &train,
        &EdscConfig {
            lengths: vec![8, 12],
            stride: 4,
            method: ThresholdMethod::Chebyshev { k: 2.0 },
            min_precision: 0.7,
            max_features_per_class: 6,
        },
    );
    let rc_full = RelClass::fit(
        &train,
        &RelClassConfig {
            covariance: CovarianceKind::Full,
            ..Default::default()
        },
    );
    let rc_diag = RelClass::fit(&train, &RelClassConfig::default());
    let prob = ProbThreshold::new(NearestCentroid::fit(&train), 0.8, 48, 2);
    let combos: [(&str, &dyn EarlyClassifier, SessionNorm); 4] = [
        ("edsc/per-prefix", &edsc, SessionNorm::PerPrefix),
        ("relclass-full/raw", &rc_full, SessionNorm::Raw),
        ("relclass/per-prefix", &rc_diag, SessionNorm::PerPrefix),
        ("prob-threshold/per-prefix", &prob, SessionNorm::PerPrefix),
    ];

    let stream = smoothed_random_walk(150, 5, 13);
    for (name, clf, norm) in combos {
        let run = |threads: usize| -> Vec<(u64, usize, bool)> {
            with_threads(threads, || {
                let mut multi = MultiSession::new(clf, norm);
                // Stagger the streams so fleets sit at many prefix lengths.
                for key in 0..600u64 {
                    multi.open(key);
                    for (i, &x) in stream.iter().take(key as usize % 7).enumerate() {
                        let _ = (i, multi.push(key, x));
                    }
                }
                let mut events = Vec::new();
                for (i, &x) in stream.iter().enumerate() {
                    multi.push_all(x, |key, _decision, committed_now| {
                        if committed_now {
                            events.push((key, i, true));
                        }
                    });
                }
                events
            })
        };
        let serial = run(1);
        for t in THREAD_COUNTS {
            assert_eq!(run(t), serial, "{name} at {t} threads");
        }
    }
}

/// Long-pattern detector with a cheap O(1) incremental session: commits at
/// prefix length 300 iff the anchor's first sample was positive. With
/// stride 1, non-committing anchors stay live for the full 2500-sample
/// pattern window, driving the monitor's live-anchor population well past
/// the 512-anchor fan-out gate.
struct OnsetDetector;

struct OnsetSession {
    first: Option<f64>,
    len: usize,
    decision: Decision,
}

impl DecisionSession for OnsetSession {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        let first = *self.first.get_or_insert(x);
        if !self.decision.is_predict() && self.len >= 300 && first > 0.0 {
            self.decision = Decision::Predict {
                label: 0,
                confidence: 1.0 / (1.0 + first),
            };
        }
        self.decision
    }
    fn decision(&self) -> Decision {
        self.decision
    }
    fn len(&self) -> usize {
        self.len
    }
    fn reset(&mut self) {
        self.first = None;
        self.len = 0;
        self.decision = Decision::Wait;
    }
}

impl EarlyClassifier for OnsetDetector {
    fn n_classes(&self) -> usize {
        1
    }
    fn series_len(&self) -> usize {
        2500
    }
    fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(OnsetSession {
            first: None,
            len: 0,
            decision: Decision::Wait,
        })
    }
    fn predict_full(&self, _series: &[f64]) -> usize {
        0
    }
}

#[test]
fn stream_monitor_is_thread_count_invariant() {
    let clf = OnsetDetector;
    let stream = smoothed_random_walk(5_000, 5, 21);
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut mon = StreamMonitor::new(
                &clf,
                StreamMonitorConfig {
                    anchor_stride: 1,
                    norm: StreamNorm::Raw,
                    refractory: 10,
                },
            );
            mon.run(&stream)
        })
    };
    let serial = run(1);
    assert!(!serial.is_empty(), "fixture should alarm");
    for t in THREAD_COUNTS {
        assert_eq!(run(t), serial, "{t} threads");
    }
}
