//! End-to-end integration test of the Table 1 pipeline: generate data,
//! normalize, fit every algorithm, evaluate normalized vs denormalized, and
//! assert the paper's qualitative result — accuracy collapses under a
//! physically trivial offset.

use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::datasets::transforms::{denormalize, DenormalizeConfig};
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc::early::metrics::{evaluate, PrefixPolicy};
use etsc::early::relclass::{RelClass, RelClassConfig};
use etsc::early::teaser::{Teaser, TeaserConfig};
use etsc::early::EarlyClassifier;

fn splits() -> (etsc::core::UcrDataset, etsc::core::UcrDataset) {
    let cfg = GunPointConfig::default();
    let mut train = gunpoint::generate(12, &cfg, 111);
    let mut test = gunpoint::generate(25, &cfg, 112);
    train.znormalize();
    test.znormalize();
    (train, test)
}

/// Fit the algorithm, check it is accurate on normalized data, and that the
/// denormalized offset costs it a meaningful number of points.
fn assert_denormalization_hurts(clf: &dyn EarlyClassifier, test: &etsc::core::UcrDataset) {
    let denorm = denormalize(test, DenormalizeConfig::default(), 103);
    let normalized = evaluate(clf, test, PrefixPolicy::Oracle);
    let denormalized = evaluate(clf, &denorm, PrefixPolicy::Oracle);
    assert!(
        normalized.accuracy() >= 0.8,
        "normalized accuracy too low: {}",
        normalized.accuracy()
    );
    assert!(
        denormalized.accuracy() <= normalized.accuracy() - 0.05,
        "denormalization should cost at least 5 points: {} -> {}",
        normalized.accuracy(),
        denormalized.accuracy()
    );
}

#[test]
fn ects_collapses_under_denormalization() {
    let (train, test) = splits();
    let clf = Ects::fit(&train, &EctsConfig::default());
    assert_denormalization_hurts(&clf, &test);
}

#[test]
fn relaxed_ects_collapses_under_denormalization() {
    let (train, test) = splits();
    let clf = Ects::fit(
        &train,
        &EctsConfig {
            relaxed: true,
            ..EctsConfig::default()
        },
    );
    assert_denormalization_hurts(&clf, &test);
}

#[test]
fn edsc_che_collapses_under_denormalization() {
    let (train, test) = splits();
    let clf = Edsc::fit(
        &train,
        &EdscConfig {
            lengths: vec![15, 25],
            stride: 6,
            method: ThresholdMethod::Chebyshev { k: 3.0 },
            min_precision: 0.8,
            max_features_per_class: 10,
        },
    );
    assert_denormalization_hurts(&clf, &test);
}

#[test]
fn relclass_is_accurate_when_normalized() {
    let (train, test) = splits();
    let clf = RelClass::fit(&train, &RelClassConfig::default());
    let ev = evaluate(&clf, &test, PrefixPolicy::Oracle);
    assert!(ev.accuracy() >= 0.75, "accuracy {}", ev.accuracy());
    assert!(ev.earliness() < 1.0, "should commit before full length");
    // And loses accuracy when shifted.
    let denorm = denormalize(&test, DenormalizeConfig::default(), 104);
    let dn = evaluate(&clf, &denorm, PrefixPolicy::Oracle);
    assert!(dn.accuracy() < ev.accuracy() + 1e-9);
}

#[test]
fn teaser_with_honest_norm_is_shift_invariant() {
    let (train, test) = splits();
    let clf = Teaser::fit(&train, &TeaserConfig::fast());
    let denorm = denormalize(&test, DenormalizeConfig::default(), 105);
    let normalized = evaluate(&clf, &test, PrefixPolicy::Raw);
    let denormalized = evaluate(&clf, &denorm, PrefixPolicy::Raw);
    // Footnote 2 of the paper: TEASER normalizes prefixes honestly, so a
    // constant offset changes nothing.
    assert!(
        (normalized.accuracy() - denormalized.accuracy()).abs() < 1e-9,
        "TEASER must be exactly offset-invariant: {} vs {}",
        normalized.accuracy(),
        denormalized.accuracy()
    );
    assert!(normalized.accuracy() >= 0.7);
}
