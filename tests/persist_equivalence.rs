//! Checkpoint/restore equivalence properties: for every built-in algorithm
//! × [`SessionNorm`], a session snapshotted at an arbitrary prefix and
//! resumed — against the same model or against a snapshot-restored copy in
//! a simulated fresh process — continues exactly like an uninterrupted
//! session (**bit-identical** decisions under `Raw`; under `PerPrefix`,
//! same commits/labels with confidences within the documented ~1e-9
//! tolerance). Plus the streaming case: a `StreamMonitor` snapshotted
//! mid-refractory and resumed in a fresh monitor reproduces the exact alarm
//! sequence of one that was never interrupted.

use etsc::classifiers::centroid::NearestCentroid;
use etsc::classifiers::gaussian::{CovarianceKind, GaussianModel};
use etsc::core::UcrDataset;
use etsc::early::costaware::{CostAware, CostAwareConfig};
use etsc::early::ecdire::{Ecdire, EcdireConfig};
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc::early::relclass::{RelClass, RelClassConfig};
use etsc::early::teaser::{Teaser, TeaserConfig};
use etsc::early::template::TemplateMatcher;
use etsc::early::threshold::ProbThreshold;
use etsc::early::{
    checkpoint_session, resume_session, Decision, EarlyClassifier, PersistError, SessionNorm,
};
use etsc::persist::Persist;
use etsc::stream::{StreamMonitor, StreamMonitorConfig, StreamNorm};

/// Two classes that separate mid-series, with class-dependent noise so no
/// algorithm can commit degenerately early — sessions stay live across the
/// checkpoint splits.
fn train_set(n: usize, len: usize) -> UcrDataset {
    let mut data = Vec::new();
    let mut labels = Vec::new();
    let split = len / 3;
    for c in 0..2usize {
        for i in 0..n {
            data.push(
                (0..len)
                    .map(|j| {
                        let noise = 0.06 * (((i * 7 + j * 3 + c * 11) % 9) as f64 - 4.0);
                        if j < split {
                            noise
                        } else {
                            c as f64 * 2.0 + noise
                        }
                    })
                    .collect(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

/// Probes with varied scale/offset so per-prefix normalization genuinely
/// moves every step.
fn probes(len: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for (k, (scale, shift)) in [(1.0, 0.0), (3.0, 7.0), (0.5, -2.0)].iter().enumerate() {
        out.push(
            (0..len)
                .map(|j| {
                    let base = if j < len / 3 { 0.0 } else { 2.0 };
                    shift + scale * (base + 0.08 * (((j * 13 + k * 5) % 11) as f64 - 5.0))
                })
                .collect(),
        );
    }
    out
}

/// The full built-in roster, fitted on `train`.
fn roster(train: &UcrDataset) -> Vec<(&'static str, Box<dyn EarlyClassifier>)> {
    let edsc_cfg = |method| EdscConfig {
        lengths: vec![8, 12],
        stride: 4,
        method,
        min_precision: 0.7,
        max_features_per_class: 6,
    };
    vec![
        (
            "ects",
            Box::new(Ects::fit(train, &EctsConfig::default())) as Box<dyn EarlyClassifier>,
        ),
        (
            "relaxed-ects",
            Box::new(Ects::fit(
                train,
                &EctsConfig {
                    relaxed: true,
                    ..EctsConfig::default()
                },
            )),
        ),
        (
            "edsc-che",
            Box::new(Edsc::fit(
                train,
                &edsc_cfg(ThresholdMethod::Chebyshev { k: 2.0 }),
            )),
        ),
        (
            "edsc-kde",
            Box::new(Edsc::fit(
                train,
                &edsc_cfg(ThresholdMethod::Kde { precision: 0.9 }),
            )),
        ),
        (
            "relclass-diag",
            Box::new(RelClass::fit(
                train,
                &RelClassConfig {
                    tau: 0.4,
                    ..Default::default()
                },
            )),
        ),
        (
            "relclass-ldg",
            Box::new(RelClass::fit(train, &RelClassConfig::ldg(0.4))),
        ),
        (
            "relclass-full",
            Box::new(RelClass::fit(
                train,
                &RelClassConfig {
                    tau: 0.4,
                    covariance: CovarianceKind::Full,
                    ..Default::default()
                },
            )),
        ),
        (
            "teaser",
            Box::new(Teaser::fit(
                train,
                &TeaserConfig {
                    n_snapshots: 6,
                    ..TeaserConfig::fast()
                },
            )),
        ),
        (
            "template",
            Box::new(TemplateMatcher::from_centroids(train, 0.35, 6)),
        ),
        (
            "prob-threshold-centroid",
            Box::new(ProbThreshold::new(
                NearestCentroid::fit(train),
                0.9,
                train.series_len(),
                3,
            )),
        ),
        (
            "prob-threshold-gaussian",
            Box::new(ProbThreshold::new(
                GaussianModel::fit(train, CovarianceKind::Diagonal),
                0.9,
                train.series_len(),
                3,
            )),
        ),
        (
            "ecdire",
            Box::new(Ecdire::fit(
                train,
                &EcdireConfig {
                    n_checkpoints: 8,
                    ..EcdireConfig::default()
                },
            )),
        ),
        (
            "stopping-rule",
            Box::new(etsc::early::stopping_rule::StoppingRule::fit(
                train,
                &etsc::early::stopping_rule::StoppingRuleConfig {
                    n_checkpoints: 8,
                    ..Default::default()
                },
            )),
        ),
        (
            "cost-aware",
            Box::new(CostAware::fit(
                train,
                &CostAwareConfig {
                    n_checkpoints: 8,
                    ..Default::default()
                },
            )),
        ),
    ]
}

/// Drive the uninterrupted session over `probe`, returning the per-step
/// decisions.
fn uninterrupted(clf: &dyn EarlyClassifier, norm: SessionNorm, probe: &[f64]) -> Vec<Decision> {
    let mut s = clf.session(norm);
    probe.iter().map(|&x| s.push(x)).collect()
}

/// Drive a session to `split`, checkpoint it, resume against `resume_clf`
/// (the same model, or a snapshot-restored copy), and continue; returns the
/// decisions of the continued half.
fn interrupted(
    clf: &dyn EarlyClassifier,
    resume_clf: &dyn EarlyClassifier,
    norm: SessionNorm,
    probe: &[f64],
    split: usize,
) -> Vec<Decision> {
    let mut s = clf.session(norm);
    for &x in &probe[..split] {
        s.push(x);
    }
    let bytes = checkpoint_session(s.as_ref()).expect("built-in sessions checkpoint");
    drop(s);
    let mut resumed = resume_session(resume_clf, norm, &bytes).expect("state resumes");
    probe[split..].iter().map(|&x| resumed.push(x)).collect()
}

fn assert_equivalent(
    name: &str,
    norm: SessionNorm,
    split: usize,
    reference: &[Decision],
    continued: &[Decision],
) {
    assert_eq!(reference.len(), continued.len());
    for (t, (a, b)) in reference.iter().zip(continued).enumerate() {
        match norm {
            // Raw: bit-identical decisions, confidence included.
            SessionNorm::Raw => assert_eq!(
                a, b,
                "{name}/{norm:?} split {split}: step {t} diverged after restore"
            ),
            // PerPrefix: the acceptance contract — same commits and labels,
            // confidences within the documented ~1e-9. (In practice the
            // restored accumulators round-trip bit-exactly here too.)
            SessionNorm::PerPrefix => {
                assert_eq!(
                    a.is_predict(),
                    b.is_predict(),
                    "{name}/{norm:?} split {split}: commit state diverged at step {t}"
                );
                if let (Some((la, ca)), Some((lb, cb))) =
                    (a.label_confidence(), b.label_confidence())
                {
                    assert_eq!(la, lb, "{name}/{norm:?} split {split}: label at step {t}");
                    assert!(
                        (ca - cb).abs() <= 1e-9,
                        "{name}/{norm:?} split {split}: confidence {ca} vs {cb} at step {t}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_algorithm_resumes_equivalently_at_arbitrary_prefixes() {
    let train = train_set(8, 36);
    let all = roster(&train);
    let probes = probes(36);
    for (name, clf) in &all {
        for norm in [SessionNorm::Raw, SessionNorm::PerPrefix] {
            for probe in &probes {
                let reference = uninterrupted(clf.as_ref(), norm, probe);
                for split in [1, probe.len() / 4, probe.len() / 2, 3 * probe.len() / 4] {
                    let continued = interrupted(clf.as_ref(), clf.as_ref(), norm, probe, split);
                    assert_equivalent(name, norm, split, &reference[split..], &continued);
                }
            }
        }
    }
}

/// Simulated process restart: the model itself is snapshotted, restored
/// from bytes (as a new process would), and the session resumed against the
/// restored copy. Exercised on one representative of each model family.
#[test]
fn sessions_resume_against_snapshot_restored_models() {
    let train = train_set(8, 36);
    let probes = probes(36);

    fn check<M: EarlyClassifier + Persist>(name: &str, model: &M, probes: &[Vec<f64>]) {
        let restored = M::restore(&model.snapshot()).expect("model restores");
        for norm in [SessionNorm::Raw, SessionNorm::PerPrefix] {
            for probe in probes {
                let reference = uninterrupted(model, norm, probe);
                let split = probe.len() / 2;
                let continued = interrupted(model, &restored, norm, probe, split);
                assert_equivalent(name, norm, split, &reference[split..], &continued);
            }
        }
    }

    check("ects", &Ects::fit(&train, &EctsConfig::default()), &probes);
    check(
        "relclass-full",
        &RelClass::fit(
            &train,
            &RelClassConfig {
                tau: 0.4,
                covariance: CovarianceKind::Full,
                ..Default::default()
            },
        ),
        &probes,
    );
    check(
        "edsc-che",
        &Edsc::fit(
            &train,
            &EdscConfig {
                lengths: vec![8, 12],
                stride: 4,
                method: ThresholdMethod::Chebyshev { k: 2.0 },
                min_precision: 0.7,
                max_features_per_class: 6,
            },
        ),
        &probes,
    );
    check(
        "teaser",
        &Teaser::fit(
            &train,
            &TeaserConfig {
                n_snapshots: 6,
                ..TeaserConfig::fast()
            },
        ),
        &probes,
    );
    check(
        "ecdire",
        &Ecdire::fit(
            &train,
            &EcdireConfig {
                n_checkpoints: 8,
                ..EcdireConfig::default()
            },
        ),
        &probes,
    );
    check(
        "prob-threshold",
        &ProbThreshold::new(NearestCentroid::fit(&train), 0.9, train.series_len(), 3),
        &probes,
    );
}

#[test]
fn monitor_snapshot_mid_refractory_resumes_to_identical_alarms() {
    let train = train_set(8, 36);
    let template = TemplateMatcher::from_centroids(&train, 0.6, 8);
    let cfg = StreamMonitorConfig {
        anchor_stride: 3,
        norm: StreamNorm::PerPrefix,
        refractory: 40,
    };
    // Background with two planted class-1 patterns, onsets aligned to the
    // anchor stride so a session sees each pattern from its first sample.
    let pattern: Vec<f64> = train.series(train.len() - 1).to_vec();
    let mut stream: Vec<f64> = vec![0.02; 51];
    stream.extend(&pattern);
    stream.extend(vec![-0.01; 60 - ((51 + pattern.len()) % 3)]);
    stream.extend(&pattern);
    stream.extend(vec![0.0; 40]);

    let mut whole = StreamMonitor::new(&template, cfg);
    let reference = whole.run(&stream);
    assert!(
        !reference.is_empty(),
        "planted patterns must alarm for the test to mean anything"
    );

    // Interrupt right after the first alarm — inside the refractory window.
    let mut head = StreamMonitor::new(&template, cfg);
    let mut alarms = Vec::new();
    let mut split = 0;
    for (i, &x) in stream.iter().enumerate() {
        if let Some(a) = head.push(x) {
            alarms.push(a);
            split = i + 1;
            break;
        }
    }
    let bytes = head.snapshot_anchors().expect("anchors snapshot");
    // Fresh process: the model restores from bytes too.
    let restored_model = TemplateMatcher::restore(&template.snapshot()).expect("model restores");
    let mut resumed = StreamMonitor::new(&restored_model, cfg);
    resumed.resume_anchors(&bytes).expect("anchors resume");
    for &x in &stream[split..] {
        alarms.extend(resumed.push(x));
    }
    assert_eq!(
        alarms, reference,
        "mid-refractory restart must reproduce the alarm sequence exactly"
    );
}

#[test]
fn session_state_refuses_wrong_algorithm_or_norm() {
    let train = train_set(6, 30);
    let ects = Ects::fit(&train, &EctsConfig::default());
    let template = TemplateMatcher::from_centroids(&train, 0.35, 6);

    let mut s = ects.session(SessionNorm::Raw);
    for &x in &train.series(0)[..8] {
        s.push(x);
    }
    let bytes = checkpoint_session(s.as_ref()).unwrap();

    // Wrong algorithm.
    assert!(matches!(
        resume_session(&template, SessionNorm::Raw, &bytes),
        Err(PersistError::Corrupt(_))
    ));
    // Wrong norm.
    assert!(matches!(
        resume_session(&ects, SessionNorm::PerPrefix, &bytes),
        Err(PersistError::Corrupt(_))
    ));
    // Right algorithm and norm.
    assert!(resume_session(&ects, SessionNorm::Raw, &bytes).is_ok());
    // Truncated state.
    assert!(resume_session(&ects, SessionNorm::Raw, &bytes[..bytes.len() - 4]).is_err());
}
