//! End-to-end tests of the telemetry plane: instrumentation must be
//! **invisible in the alarms** and **visible in the scrape**.
//!
//! The acceptance bar for `etsc_core::metrics` wiring: the same synthetic
//! multi-stream traffic produces bit-identical per-stream alarm sequences
//! whether the runtime clock is monotonic, manual, or disabled — timing
//! reads never touch alarm bytes — while a live node scraped over the wire
//! exposes well-formed Prometheus histogram families for every latency
//! surface (drain cycles, sampled pushes, checkpoint pauses and sizes,
//! request service times, client RTTs).

use etsc::core::metrics::Clock;
use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::net::{ClientConfig, Endpoint, Listener, NetClient, Node, NodeConfig};
use etsc::persist::ModelRegistry;
use etsc::serve::{Record, Runtime, RuntimeConfig, StreamAlarm};
use etsc::stream::{StreamMonitorConfig, StreamNorm};
use std::path::PathBuf;

/// Same two-class problem as the serve/net end-to-end tests.
fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let level = if i % 2 == 0 { 0.0 } else { 3.0 };
            (0..24)
                .map(|j| level + 0.06 * ((i * 5 + j * 3) % 11) as f64)
                .collect()
        })
        .collect();
    let labels = (0..10).map(|i| i % 2).collect();
    UcrDataset::new(data, labels).unwrap()
}

fn serve_cfg() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 3,
            norm: StreamNorm::Raw,
            refractory: 40,
        },
        model_name: "ects".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

const STREAM_IDS: [u64; 5] = [3, 17, 256, 99_991, u64::MAX / 3];
const ROUNDS: usize = 160;

fn traffic() -> Vec<Vec<Record>> {
    let train = train_set();
    let event: Vec<f64> = train.series(1).to_vec();
    (0..ROUNDS)
        .map(|t| {
            STREAM_IDS
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let start = 20 + 13 * k;
                    let value = if t >= start && t < start + event.len() {
                        event[t - start]
                    } else {
                        0.02 * ((t * 7 + k) % 5) as f64
                    };
                    Record::new(id, value)
                })
                .collect()
        })
        .collect()
}

/// Drive all traffic through an in-process runtime under the given clock,
/// checkpointing once mid-run and rebalancing once so every latency
/// histogram has a chance to observe something.
fn run_with_clock<'a>(
    clf: &'a Ects,
    clock: Clock,
    registry: &ModelRegistry,
) -> (Vec<StreamAlarm>, Runtime<'a, Ects>) {
    let mut rt = Runtime::new(clf, serve_cfg()).unwrap();
    rt.set_clock(clock);
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        rt.ingest(batch).unwrap();
        if (t + 1) % 8 == 0 {
            alarms.extend(rt.drain());
        }
        if t == 79 {
            rt.checkpoint(registry).unwrap();
            rt.rebalance(3).unwrap();
        }
    }
    alarms.extend(rt.drain());
    (alarms, rt)
}

fn tmp_root(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("etsc-metrics-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The tentpole invariant, end to end: monotonic, manual, and disabled
/// clocks produce bit-identical alarm sequences over the same traffic —
/// recording latencies never influences routing, draining, or monitor
/// decisions — while only the enabled clocks populate the histograms.
#[test]
fn alarm_sequences_are_clock_mode_invariant() {
    let root = tmp_root("clock-modes");
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let registry = ModelRegistry::open(&root).unwrap();

    let (reference, rt_mono) = run_with_clock(&clf, Clock::monotonic(), &registry);
    assert!(!reference.is_empty(), "the planted events must alarm");

    let manual = Clock::manual();
    manual.advance_ns(1); // a nonzero origin, stepped never again
    let (under_manual, _) = run_with_clock(&clf, manual, &registry);
    assert_eq!(
        under_manual, reference,
        "manual clock must not change alarms"
    );

    let (silent, rt_off) = run_with_clock(&clf, Clock::disabled(), &registry);
    assert_eq!(silent, reference, "disabled clock must not change alarms");

    // The monotonic run measured real work; the disabled run measured none.
    let on = rt_mono.stats();
    assert!(on.drain_cycle_ns.count() >= 1);
    assert!(on.push_ns.count() >= 1, "1-in-8 sampling must still fire");
    assert_eq!(on.checkpoint_pause_ns.count(), 1);
    assert!(on.migration_ns.count() >= 1);
    let off = rt_off.stats();
    assert_eq!(off.drain_cycle_ns.count(), 0);
    assert_eq!(off.push_ns.count(), 0);
    assert_eq!(off.checkpoint_pause_ns.count(), 0);
    assert_eq!(off.migration_ns.count(), 0);
    // Size telemetry is clock-independent: both runs logged the envelope.
    assert_eq!(off.checkpoint_bytes.count(), 1);

    let _ = std::fs::remove_dir_all(&root);
}

/// Stops the node when dropped, so a panicking test body cannot leave the
/// accept loop spinning and hang the scope's implicit join.
struct StopGuard<'n, 'a>(&'n Node<'a, Ects>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// Assert `text` carries a well-formed Prometheus histogram family `name`:
/// at least one `_bucket` line with an `le` label, a final cumulative
/// `le="+Inf"` bucket, and `_sum`/`_count` lines whose count equals the
/// +Inf bucket's value.
fn assert_histogram_family(text: &str, name: &str) {
    assert!(
        text.contains(&format!("# TYPE {name} histogram")),
        "{name}: missing TYPE line"
    );
    assert!(
        text.contains(&format!("{name}_bucket{{")),
        "{name}: missing bucket lines"
    );
    let inf_values: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with(&format!("{name}_bucket{{")) && l.contains("le=\"+Inf\""))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .collect();
    assert!(!inf_values.is_empty(), "{name}: missing le=\"+Inf\" bucket");
    let counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with(&format!("{name}_count")))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .collect();
    assert_eq!(
        inf_values, counts,
        "{name}: every +Inf bucket must equal its series' _count"
    );
    assert!(
        counts.iter().any(|&c| c > 0),
        "{name}: the family must have observed something"
    );
    assert!(
        text.lines().any(|l| l.starts_with(&format!("{name}_sum"))),
        "{name}: missing _sum line"
    );
}

/// A live node scraped over the wire exposes the full histogram plane —
/// serve latencies, checkpoint pause and envelope size, and node-side
/// request service times — while the driving client accumulates RTTs
/// per message kind; and the over-the-wire alarms still match the
/// in-process reference exactly.
#[test]
fn a_live_node_exposes_the_full_histogram_plane() {
    let root = tmp_root("scrape");
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let registry = ModelRegistry::open(&root).unwrap();
    let (reference, _) = run_with_clock(&clf, Clock::disabled(), &registry);

    let node = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    )
    .with_registry(ModelRegistry::open(&root).unwrap());
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();

    let (scrape, alarms, rtt, backoff) = std::thread::scope(|s| {
        let guard = StopGuard(&node);
        let server = s.spawn(|| node.serve(listener));
        let mut client = NetClient::connect_with(&endpoint, ClientConfig::default()).unwrap();
        let mut alarms = Vec::new();
        for (t, batch) in traffic().iter().enumerate() {
            client.ingest(batch).unwrap();
            if (t + 1) % 8 == 0 {
                alarms.extend(client.drain().unwrap());
            }
            if t == 79 {
                assert!(client.checkpoint().unwrap() > 0);
            }
        }
        alarms.extend(client.drain().unwrap());
        let scrape = client.stats_prometheus().unwrap();
        let rtt = client.rtt_timings().snapshots();
        let backoff = client.backoff_snapshot();
        drop(guard);
        server.join().unwrap().unwrap();
        (scrape, alarms, rtt, backoff)
    });

    assert_eq!(
        alarms, reference,
        "instrumented wire path must reproduce the reference alarms"
    );

    // The scrape must expose at least four well-formed histogram families.
    for family in [
        "etsc_serve_drain_cycle_ns",
        "etsc_serve_push_ns",
        "etsc_serve_checkpoint_pause_ns",
        "etsc_serve_checkpoint_bytes",
        "etsc_net_request_ns",
    ] {
        assert_histogram_family(&scrape, family);
    }
    // Request timings are labelled per message kind; the drive above used
    // at least ingest, drain, checkpoint, and stats.
    for kind in ["IngestBatch", "Drain", "Checkpoint"] {
        assert!(
            scrape.contains(&format!("msg=\"{kind}\"")),
            "etsc_net_request_ns must carry a series for {kind}"
        );
    }

    // Client-side telemetry observed the same conversation: RTTs for the
    // kinds above, and no retries (healthy loopback) means no backoff.
    let rtt_kinds: Vec<&str> = rtt
        .iter()
        .filter(|(_, s)| s.count() > 0)
        .map(|(k, _)| *k)
        .collect();
    for kind in ["IngestBatch", "Drain", "Checkpoint", "Stats"] {
        assert!(rtt_kinds.contains(&kind), "client RTT must cover {kind}");
    }
    assert_eq!(backoff.count(), 0, "no retries expected on loopback");

    let _ = std::fs::remove_dir_all(&root);
}
