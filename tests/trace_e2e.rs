//! The distributed-tracing acceptance test: one record followed across a
//! three-node loopback cluster — client fan-out, node decode, shard
//! enqueue, drain, alarm emission — through a live cross-node migration
//! and a supervisor-driven failover, with every span chaining back to one
//! client-side root and zero orphans. The exported Chrome `trace_event`
//! documents must parse, and — the hard invariant — per-stream alarm
//! sequences must be **bit-identical** with tracing disabled, monotonic,
//! and manual.

use etsc::core::metrics::Clock;
use etsc::core::trace::{EventKind, Span, SpanKind, Tracer, TracerConfig};
use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::net::{
    ClientConfig, Cluster, Endpoint, Fault, FaultPlan, Listener, Node, NodeConfig, RetryPolicy,
    Supervisor, SupervisorConfig,
};
use etsc::persist::ModelRegistry;
use etsc::serve::{DedupCursor, Record, Runtime, RuntimeConfig, StreamAlarm};
use etsc::stream::{Alarm, StreamMonitorConfig, StreamNorm};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let level = if i % 2 == 0 { 0.0 } else { 3.0 };
            (0..24)
                .map(|j| level + 0.06 * ((i * 5 + j * 3) % 11) as f64)
                .collect()
        })
        .collect();
    let labels = (0..10).map(|i| i % 2).collect();
    UcrDataset::new(data, labels).unwrap()
}

fn serve_cfg() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 3,
            norm: StreamNorm::Raw,
            refractory: 40,
        },
        model_name: "ects".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

const STREAM_IDS: [u64; 5] = [3, 17, 256, 99_991, u64::MAX / 3];
const ROUNDS: usize = 96;

fn traffic() -> Vec<Vec<Record>> {
    let train = train_set();
    let event: Vec<f64> = train.series(1).to_vec();
    (0..ROUNDS)
        .map(|t| {
            STREAM_IDS
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let start = 20 + 13 * k;
                    let value = if t >= start && t < start + event.len() {
                        event[t - start]
                    } else {
                        0.02 * ((t * 7 + k) % 5) as f64
                    };
                    Record::new(id, value)
                })
                .collect()
        })
        .collect()
}

fn per_stream(alarms: &[StreamAlarm], id: u64) -> Vec<Alarm> {
    alarms
        .iter()
        .filter(|a| a.stream == id)
        .map(|a| a.alarm)
        .collect()
}

fn bind_loopback() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    (listener, endpoint)
}

fn tmp_root(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("etsc-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A tracer with a disjoint span-id range per process-in-the-test, so
/// client and node spans merge without id collisions (exactly what a real
/// deployment does with per-process id seeds).
fn tracer_with_seed(seed: u64, clock: Clock) -> Tracer {
    Tracer::new(TracerConfig {
        id_seed: seed,
        clock,
        ..TracerConfig::default()
    })
}

/// The in-process reference run every traced/untraced variant must match.
fn reference_alarms(clf: &Ects) -> Vec<StreamAlarm> {
    let mut rt = Runtime::new(clf, serve_cfg()).unwrap();
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        rt.ingest(batch).unwrap();
        if (t + 1) % 8 == 0 {
            alarms.extend(rt.drain());
        }
    }
    alarms.extend(rt.drain());
    assert!(!alarms.is_empty(), "the planted events must produce alarms");
    alarms
}

struct StopGuard<'n, 'a>(&'n Node<'a, Ects>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// Drive the full kill-and-heal scenario with tracing on everywhere and
/// return (delivered alarms, all spans from every tracer, client tracer,
/// node trace JSON documents).
#[allow(clippy::type_complexity)]
fn run_traced(clf: &Ects) -> (Vec<StreamAlarm>, Vec<Span>, Tracer, Vec<String>) {
    let root = tmp_root("traced");
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Disjoint id ranges: client 1.., node i at (i+1) << 32.
    let client_tracer = tracer_with_seed(1, Clock::monotonic());
    let node_tracers: Vec<Tracer> = (0..3u64)
        .map(|i| tracer_with_seed((i + 1) << 32, Clock::monotonic()))
        .collect();

    // Node 0 is doomed; it checkpoints every batch so failover recovery
    // covers everything it ever acked.
    let mut rt0 = Runtime::new(clf, serve_cfg()).unwrap();
    rt0.enable_checkpoints(ModelRegistry::open(&dirs[0]).unwrap(), 1)
        .unwrap();
    rt0.set_tracer(node_tracers[0].clone());
    let node0 = Node::new(rt0, NodeConfig::default());
    let mut rt1 = Runtime::new(clf, serve_cfg()).unwrap();
    rt1.set_tracer(node_tracers[1].clone());
    let node1 = Node::new(rt1, NodeConfig::default());
    let mut rt2 = Runtime::new(clf, serve_cfg()).unwrap();
    rt2.set_tracer(node_tracers[2].clone());
    let node2 = Node::new(rt2, NodeConfig::default());
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();
    let (l2, e2) = bind_loopback();

    let batches = traffic();
    let kill_round = 48usize;
    let migrate_round = 30usize;
    let (delivered, node_docs) = std::thread::scope(|s| {
        let mut guard0 = Some(StopGuard(&node0));
        let guard1 = StopGuard(&node1);
        let guard2 = StopGuard(&node2);
        let mut server0 = Some(s.spawn(|| node0.serve(l0)));
        let server1 = s.spawn(|| node1.serve(l1));
        let server2 = s.spawn(|| node2.serve(l2));

        let inj = FaultPlan::new().build();
        let cfg = ClientConfig {
            request_timeout: Duration::from_millis(150),
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                jitter_seed: 7,
            },
            client_id: 1,
            faults: Some(inj.clone()),
            tracer: Some(client_tracer.clone()),
            ..ClientConfig::default()
        };
        let mut cluster = Cluster::connect_with(&[e0, e1, e2], cfg).unwrap();
        for &id in &STREAM_IDS {
            cluster.open_stream(id).unwrap();
        }
        // Deterministic placement: two streams on the doomed node.
        cluster.migrate(&[STREAM_IDS[1], STREAM_IDS[3]], 0).unwrap();
        cluster.migrate(&[STREAM_IDS[0], STREAM_IDS[4]], 1).unwrap();
        cluster.migrate(&[STREAM_IDS[2]], 2).unwrap();

        let sup_cfg = SupervisorConfig::new(dirs.clone(), "ects");
        let mut sup: Supervisor<Ects> = Supervisor::new(sup_cfg);
        let mut sink = DedupCursor::default();
        let mut delivered: Vec<StreamAlarm> = Vec::new();

        for (t, batch) in batches.iter().enumerate() {
            if t == migrate_round {
                // A traced ingest stream crosses a live cross-node
                // migration mid-run; the trace must survive the move.
                cluster.migrate(&[STREAM_IDS[2]], 1).unwrap();
            }
            if t == kill_round {
                // Outbound partition: requests are silently swallowed, so
                // this round's traced sub-batches are stashed **unapplied**
                // — the failover cursor cannot cover them, which forces the
                // Redelivery path through the original trace.
                inj.inject(Fault::PartitionOutbound);
                assert!(cluster.ingest(batch).is_err());
                assert!(cluster.pending_batches() >= 1);
                node0.stop();
                drop(guard0.take());
                server0.take().unwrap().join().unwrap().unwrap();
                inj.heal();
                let mut reports = Vec::new();
                for _ in 0..3 {
                    reports.extend(sup.tick(&mut cluster).unwrap());
                }
                assert_eq!(reports.len(), 1, "exactly one failover");
                cluster.apply_failover(&reports[0]).unwrap();
                delivered.extend(sink.filter(reports[0].redelivered.clone()));
                continue;
            }
            cluster.ingest(batch).unwrap();
            if (t + 1) % 8 == 0 {
                delivered.extend(sink.filter(cluster.drain().unwrap()));
            }
        }
        delivered.extend(sink.filter(cluster.drain().unwrap()));
        assert_eq!(cluster.pending_batches(), 0);

        // The wire Trace request: every live node answers with a Chrome
        // trace_event document.
        let node_docs = cluster.fetch_traces().unwrap();
        assert_eq!(node_docs.len(), 2, "two survivors answer Trace");

        drop(guard1);
        drop(guard2);
        server1.join().unwrap().unwrap();
        server2.join().unwrap().unwrap();
        (delivered, node_docs)
    });
    let _ = std::fs::remove_dir_all(&root);

    let mut spans = client_tracer.spans();
    for t in &node_tracers {
        spans.extend(t.spans());
    }
    (delivered, spans, client_tracer, node_docs)
}

/// Walk a span's parent chain to its root, panicking on a missing parent
/// (an orphan) or a cycle.
fn root_of<'s>(span: &'s Span, by_id: &BTreeMap<u64, &'s Span>) -> &'s Span {
    let mut cur = span;
    let mut hops = 0;
    while cur.parent_id != 0 {
        cur = by_id.get(&cur.parent_id).unwrap_or_else(|| {
            panic!(
                "span {} ({:?}) has orphan parent {}",
                span.span_id, span.kind, cur.parent_id
            )
        });
        hops += 1;
        assert!(hops < 64, "parent chain of span {} cycles", span.span_id);
    }
    cur
}

#[test]
fn one_connected_trace_crosses_cluster_node_shard_alarm_and_failover() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);
    let (delivered, spans, client_tracer, node_docs) = run_traced(&clf);

    // The traced, migrated, killed, failed-over run still delivers the
    // reference alarm sequences bit-identically.
    for &id in &STREAM_IDS {
        assert_eq!(
            per_stream(&delivered, id),
            per_stream(&reference, id),
            "stream {id}: traced run diverged from the reference"
        );
    }

    // Dropped-span accounting must be clean at this traffic volume; a
    // nonzero drop count would make orphan checks vacuous.
    assert_eq!(client_tracer.dropped_spans(), 0);

    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.span_id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids are globally unique");

    // No orphans: every non-root span's parent chain terminates at a
    // ClientIngest root recorded by the cluster client.
    let mut kinds_seen: BTreeMap<SpanKind, usize> = BTreeMap::new();
    for s in &spans {
        *kinds_seen.entry(s.kind).or_default() += 1;
        let root = root_of(s, &by_id);
        assert_eq!(
            root.kind,
            SpanKind::ClientIngest,
            "span {} ({:?}) roots at {:?}, not a client ingest",
            s.span_id,
            s.kind,
            root.kind
        );
        assert_eq!(root.trace_id, s.trace_id, "trace id is stable up the chain");
    }

    // The whole pipeline is represented, failover redelivery included.
    for kind in [
        SpanKind::ClientIngest,
        SpanKind::ClientSend,
        SpanKind::NodeIngest,
        SpanKind::ShardEnqueue,
        SpanKind::ShardDrain,
        SpanKind::AlarmEmit,
        SpanKind::Checkpoint,
        SpanKind::Migration,
        SpanKind::Redelivery,
    ] {
        assert!(
            kinds_seen.get(&kind).copied().unwrap_or(0) > 0,
            "no {kind:?} span was recorded (saw {kinds_seen:?})"
        );
    }

    // At least one alarm emission chains through the full path:
    // AlarmEmit → ShardDrain → ShardEnqueue → NodeIngest → … → root.
    let full_chain = spans
        .iter()
        .filter(|s| s.kind == SpanKind::AlarmEmit)
        .any(|a| {
            let drain = by_id[&a.parent_id];
            if drain.kind != SpanKind::ShardDrain {
                return false;
            }
            let enq = by_id[&drain.parent_id];
            if enq.kind != SpanKind::ShardEnqueue {
                return false;
            }
            by_id[&enq.parent_id].kind == SpanKind::NodeIngest
        });
    assert!(full_chain, "no alarm chained drain → enqueue → node ingest");

    // Redelivered batches stay inside the trace they started in: every
    // Redelivery span has ClientSend children whose NodeIngest children
    // landed on a survivor.
    let redelivery = spans
        .iter()
        .find(|s| s.kind == SpanKind::Redelivery)
        .unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.kind == SpanKind::ClientSend && s.parent_id == redelivery.span_id),
        "redelivery span has no client send children"
    );

    // The structured event log saw the failover lifecycle.
    let events = client_tracer.events();
    for kind in [EventKind::FailoverDeclared, EventKind::FailoverCompleted] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "missing {kind:?} event"
        );
    }
    // Text and JSON-lines renderings cover every retained event.
    let text = client_tracer.events_text();
    assert!(text.contains("failover_declared"));
    let jsonl = client_tracer.events_json_lines();
    for line in jsonl.lines() {
        etsc_bench::json::parse(line).unwrap_or_else(|e| panic!("event line {line:?}: {e}"));
    }

    // Every exported Chrome document — the two survivors' wire replies
    // plus the client tracer's own export — parses as JSON with a
    // traceEvents array.
    let client_doc = client_tracer.export_chrome("etsc-cluster-client");
    for doc in node_docs.iter().chain([&client_doc]) {
        let parsed = etsc_bench::json::parse(doc).unwrap_or_else(|e| panic!("chrome doc: {e}"));
        let etsc_bench::json::Json::Obj(members) = &parsed else {
            panic!("chrome doc is not an object");
        };
        let trace_events = members
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no traceEvents key in {doc:.120}"));
        assert!(
            matches!(trace_events, etsc_bench::json::Json::Arr(_)),
            "traceEvents is not an array"
        );
    }
}

/// Run the undisturbed three-node cluster under one tracing mode and
/// return the delivered alarms.
fn run_clocked(clf: &Ects, tracer: Option<Tracer>) -> Vec<StreamAlarm> {
    let client_tracer = tracer.clone();
    let mk_rt = |t: &Option<Tracer>| {
        let mut rt = Runtime::new(clf, serve_cfg()).unwrap();
        if let Some(t) = t {
            rt.set_tracer(t.clone());
        }
        rt
    };
    let node0 = Node::new(mk_rt(&tracer), NodeConfig::default());
    let node1 = Node::new(mk_rt(&tracer), NodeConfig::default());
    let node2 = Node::new(mk_rt(&tracer), NodeConfig::default());
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();
    let (l2, e2) = bind_loopback();
    std::thread::scope(|s| {
        let guard0 = StopGuard(&node0);
        let guard1 = StopGuard(&node1);
        let guard2 = StopGuard(&node2);
        let server0 = s.spawn(|| node0.serve(l0));
        let server1 = s.spawn(|| node1.serve(l1));
        let server2 = s.spawn(|| node2.serve(l2));

        let cfg = ClientConfig {
            client_id: 9,
            tracer: client_tracer,
            ..ClientConfig::default()
        };
        let mut cluster = Cluster::connect_with(&[e0, e1, e2], cfg).unwrap();
        for &id in &STREAM_IDS {
            cluster.open_stream(id).unwrap();
        }
        cluster.migrate(&[STREAM_IDS[1], STREAM_IDS[3]], 0).unwrap();
        cluster.migrate(&[STREAM_IDS[0], STREAM_IDS[4]], 1).unwrap();
        cluster.migrate(&[STREAM_IDS[2]], 2).unwrap();

        let mut delivered = Vec::new();
        for (t, batch) in traffic().iter().enumerate() {
            cluster.ingest(batch).unwrap();
            if (t + 1) % 8 == 0 {
                delivered.extend(cluster.drain().unwrap());
            }
        }
        delivered.extend(cluster.drain().unwrap());

        drop(guard0);
        drop(guard1);
        drop(guard2);
        server0.join().unwrap().unwrap();
        server1.join().unwrap().unwrap();
        server2.join().unwrap().unwrap();
        delivered
    })
}

#[test]
fn alarm_sequences_are_bit_identical_across_tracing_modes() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);

    let manual = Clock::manual();
    manual.advance_ns(1);
    let modes: Vec<(&str, Option<Tracer>)> = vec![
        ("untraced", None),
        ("monotonic", Some(tracer_with_seed(1, Clock::monotonic()))),
        ("manual", Some(tracer_with_seed(1, manual))),
        ("disabled", Some(tracer_with_seed(1, Clock::disabled()))),
    ];
    for (name, tracer) in modes {
        let delivered = run_clocked(&clf, tracer.clone());
        for &id in &STREAM_IDS {
            assert_eq!(
                per_stream(&delivered, id),
                per_stream(&reference, id),
                "stream {id}: {name} tracing mode changed the alarm bytes"
            );
        }
        // A disabled tracer records nothing at all; enabled ones record
        // without touching the bytes above.
        if let Some(t) = &tracer {
            if t.enabled() {
                assert!(!t.spans().is_empty(), "{name}: expected recorded spans");
            } else {
                assert!(t.spans().is_empty(), "{name}: disabled tracer recorded");
                assert!(t.events().is_empty());
            }
        }
    }
}
