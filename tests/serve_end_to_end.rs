//! End-to-end tests of the sharded serving runtime over a real fitted
//! classifier.
//!
//! The acceptance bar for `etsc-serve`: the same synthetic multi-stream
//! traffic produces **identical per-stream alarm sequences** through 1, 2,
//! and 7 shards, through a mid-run rebalance, and across a simulated crash
//! (`checkpoint` → drop → `recover`) — bit-exact under the raw norm. Shard
//! topology, worker count, drain cadence, and process boundaries are pure
//! deployment knobs; they must never change what any stream's monitor sees
//! or decides. (Under `PerPrefix` the runtime is equally deterministic —
//! the same float ops run in the same order per stream — so equality is
//! asserted exactly there too; the documented ~1e-9 tolerance only concerns
//! comparisons against offline batch renormalization, which no test here
//! makes.)

use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::persist::ModelRegistry;
use etsc::serve::{Record, Runtime, RuntimeConfig, ServeError, StreamAlarm};
use etsc::stream::{StreamMonitorConfig, StreamNorm};
use std::path::PathBuf;

/// A small two-class problem: low-level vs high-level series with
/// deterministic per-exemplar jitter.
fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let level = if i % 2 == 0 { 0.0 } else { 3.0 };
            (0..24)
                .map(|j| level + 0.06 * ((i * 5 + j * 3) % 11) as f64)
                .collect()
        })
        .collect();
    let labels = (0..10).map(|i| i % 2).collect();
    UcrDataset::new(data, labels).unwrap()
}

fn serve_cfg(shards: usize, norm: StreamNorm) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        monitor: StreamMonitorConfig {
            anchor_stride: 3,
            norm,
            refractory: 40,
        },
        model_name: "ects".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

const STREAM_IDS: [u64; 5] = [3, 17, 256, 99_991, u64::MAX / 3];
const ROUNDS: usize = 160;

/// Interleaved traffic: every stream alternates quiet background with an
/// event resembling a class-1 training exemplar, offset per stream so the
/// alarm times differ.
fn traffic() -> Vec<Vec<Record>> {
    let train = train_set();
    let event: Vec<f64> = train.series(1).to_vec();
    (0..ROUNDS)
        .map(|t| {
            STREAM_IDS
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let start = 20 + 13 * k;
                    let value = if t >= start && t < start + event.len() {
                        event[t - start]
                    } else {
                        0.02 * ((t * 7 + k) % 5) as f64
                    };
                    Record::new(id, value)
                })
                .collect()
        })
        .collect()
}

/// Run all batches through a fresh runtime, draining every `cadence`
/// batches (drain cadence must not affect outcomes either).
fn run(clf: &Ects, cfg: RuntimeConfig, cadence: usize) -> Vec<StreamAlarm> {
    let mut rt = Runtime::new(clf, cfg).unwrap();
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        rt.ingest(batch).unwrap();
        if (t + 1) % cadence == 0 {
            alarms.extend(rt.drain());
        }
    }
    alarms.extend(rt.drain());
    alarms
}

fn per_stream(alarms: &[StreamAlarm], id: u64) -> Vec<StreamAlarm> {
    alarms.iter().copied().filter(|a| a.stream == id).collect()
}

fn tmp_root(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("etsc-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn alarm_sequences_are_shard_count_invariant_raw() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = run(&clf, serve_cfg(1, StreamNorm::Raw), 8);
    assert!(
        !reference.is_empty(),
        "the planted events must produce alarms"
    );
    for &id in &STREAM_IDS {
        assert!(
            !per_stream(&reference, id).is_empty(),
            "stream {id} must alarm"
        );
    }
    for shards in [2, 7] {
        let alarms = run(&clf, serve_cfg(shards, StreamNorm::Raw), 8);
        assert_eq!(alarms, reference, "{shards} shards, bit-exact");
    }
    // Drain cadence is a deployment knob too.
    let coarse = run(&clf, serve_cfg(2, StreamNorm::Raw), 64);
    assert_eq!(coarse, reference, "drain cadence must not change alarms");
}

#[test]
fn alarm_sequences_are_shard_count_invariant_per_prefix() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = run(&clf, serve_cfg(1, StreamNorm::PerPrefix), 8);
    for shards in [2, 7] {
        let alarms = run(&clf, serve_cfg(shards, StreamNorm::PerPrefix), 8);
        assert_eq!(alarms, reference, "{shards} shards");
    }
}

#[test]
fn alarm_sequences_are_worker_count_invariant() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = run(&clf, serve_cfg(7, StreamNorm::Raw), 8);
    for threads in [1usize, 7] {
        let mut cfg = serve_cfg(7, StreamNorm::Raw);
        cfg.threads = Some(threads);
        assert_eq!(run(&clf, cfg, 8), reference, "{threads} workers");
    }
}

#[test]
fn mid_run_rebalance_preserves_alarm_sequences() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = run(&clf, serve_cfg(2, StreamNorm::Raw), 8);

    // Same traffic, rebalancing 2 → 7 → 3 mid-pulse: every re-routed
    // stream travels as (model name, anchor snapshot) bytes, refractory
    // clock included, so nothing about the alarms may change.
    let mut rt = Runtime::new(&clf, serve_cfg(2, StreamNorm::Raw)).unwrap();
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        rt.ingest(batch).unwrap();
        if t == 31 {
            rt.rebalance(7).unwrap();
        }
        if t == 90 {
            rt.rebalance(3).unwrap();
        }
        if (t + 1) % 8 == 0 {
            alarms.extend(rt.drain());
        }
    }
    alarms.extend(rt.drain());
    assert_eq!(alarms, reference, "rebalance must be invisible in alarms");
    let stats = rt.stats();
    assert_eq!(stats.rebalances, 2);
    assert!(stats.migrated_streams > 0);
    assert_eq!(stats.shards.len(), 3);
}

#[test]
fn kill_and_recover_continues_every_alarm_sequence() {
    let root = tmp_root("kill-recover");
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = run(&clf, serve_cfg(3, StreamNorm::Raw), 8);

    // Drive half the traffic, checkpoint mid-refractory / mid-event (round
    // 70 is inside stream 99_991's event window), then "kill" the process
    // by dropping the runtime and the model.
    let registry = ModelRegistry::open(&root).unwrap();
    let batches = traffic();
    let mut alarms = Vec::new();
    {
        let mut rt = Runtime::new(&clf, serve_cfg(3, StreamNorm::Raw)).unwrap();
        for batch in &batches[..70] {
            rt.ingest(batch).unwrap();
        }
        alarms.extend(rt.drain());
        rt.checkpoint(&registry).unwrap();
    }
    drop(clf);

    // New process: reload the model from the registry and recover.
    let restored: Ects = registry.load("ects").unwrap();
    let mut rt = Runtime::recover(&restored, &root, "ects").unwrap();
    assert_eq!(rt.stream_count(), STREAM_IDS.len());
    for batch in &batches[70..] {
        rt.ingest(batch).unwrap();
    }
    alarms.extend(rt.drain());
    assert_eq!(
        alarms, reference,
        "recovered runtime must continue exactly where the crash left off"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recover_without_the_model_names_the_stranded_stream() {
    let root = tmp_root("stranded");
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let registry = ModelRegistry::open(&root).unwrap();
    let mut rt = Runtime::new(&clf, serve_cfg(2, StreamNorm::Raw)).unwrap();
    for batch in &traffic()[..30] {
        rt.ingest(batch).unwrap();
    }
    rt.checkpoint(&registry).unwrap();
    drop(rt);

    assert!(registry.remove("ects").unwrap());
    match Runtime::recover(&clf, &root, "ects").err() {
        Some(ServeError::ModelMissing { stream, model }) => {
            assert!(STREAM_IDS.contains(&stream));
            assert_eq!(model, "ects");
        }
        other => panic!("expected ModelMissing, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
