//! Wire-format stability gate: golden snapshot fixtures checked into
//! `tests/fixtures/persist/` must keep decoding under the current
//! [`FORMAT_VERSION`]. A PR that changes the byte layout will fail here —
//! the correct response is to **bump the format version** (readers then
//! reject old snapshots explicitly) and regenerate the fixtures with
//!
//! ```text
//! cargo test --test persist_format regenerate_golden_fixtures -- --ignored
//! ```
//!
//! never to silently reshape the existing version.
//!
//! The fixture models are fitted on a fully deterministic, hand-rolled
//! dataset (no RNG), so regeneration is reproducible across machines.

use std::path::PathBuf;

use etsc::classifiers::centroid::NearestCentroid;
use etsc::classifiers::gaussian::{CovarianceKind, GaussianModel};
use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc::early::relclass::{RelClass, RelClassConfig};
use etsc::early::template::TemplateMatcher;
use etsc::early::{checkpoint_session, resume_session, EarlyClassifier, SessionNorm};
use etsc::persist::{inspect, Persist, FORMAT_VERSION};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/persist")
}

/// Deterministic two-class training set: class level ±1.5 with a fixed
/// arithmetic wiggle. No RNG anywhere, so fixtures regenerate bit-for-bit.
fn fixture_train() -> UcrDataset {
    let (n, len) = (8usize, 24usize);
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..n {
            data.push(
                (0..len)
                    .map(|j| {
                        let level = if c == 0 { -1.5 } else { 1.5 };
                        level + 0.05 * (((i * 7 + j * 5 + c * 3) % 11) as f64 - 5.0)
                    })
                    .collect(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

/// Deterministic probe, long enough to drive decisions.
fn fixture_probe() -> Vec<f64> {
    (0..24)
        .map(|j| 1.5 + 0.05 * (((j * 5 + 3) % 11) as f64 - 5.0))
        .collect()
}

fn fixture_models() -> (
    NearestCentroid,
    GaussianModel,
    Ects,
    Edsc,
    RelClass,
    TemplateMatcher,
) {
    let train = fixture_train();
    (
        NearestCentroid::fit(&train),
        GaussianModel::fit(&train, CovarianceKind::Full),
        Ects::fit(&train, &EctsConfig::default()),
        Edsc::fit(
            &train,
            &EdscConfig {
                lengths: vec![6, 10],
                stride: 3,
                method: ThresholdMethod::Chebyshev { k: 2.0 },
                min_precision: 0.7,
                max_features_per_class: 6,
            },
        ),
        RelClass::fit(&train, &RelClassConfig::default()),
        TemplateMatcher::from_centroids(&train, 0.5, 4),
    )
}

/// Session checkpoint fixture: an ECTS raw session interrupted at sample 9.
fn fixture_session_bytes(ects: &Ects) -> Vec<u8> {
    let probe = fixture_probe();
    let mut s = ects.session(SessionNorm::Raw);
    for &x in &probe[..9] {
        s.push(x);
    }
    checkpoint_session(s.as_ref()).expect("ects session checkpoints")
}

/// One-time generator (run with `-- --ignored` after a deliberate format
/// bump). Writes every fixture the stability tests below read.
#[test]
#[ignore = "fixture generator; run manually after a format-version bump"]
fn regenerate_golden_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let (centroid, gaussian, ects, edsc, relclass, template) = fixture_models();
    std::fs::write(dir.join("nearest_centroid.etsc"), centroid.snapshot()).unwrap();
    std::fs::write(dir.join("gaussian_full.etsc"), gaussian.snapshot()).unwrap();
    std::fs::write(dir.join("ects.etsc"), ects.snapshot()).unwrap();
    std::fs::write(dir.join("edsc_che.etsc"), edsc.snapshot()).unwrap();
    std::fs::write(dir.join("relclass_diag.etsc"), relclass.snapshot()).unwrap();
    std::fs::write(dir.join("template.etsc"), template.snapshot()).unwrap();
    std::fs::write(
        dir.join("ects_session_raw.etsc"),
        fixture_session_bytes(&ects),
    )
    .unwrap();
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} missing ({e}); regenerate with \
             `cargo test --test persist_format regenerate_golden_fixtures -- --ignored`",
            path.display()
        )
    })
}

#[test]
fn golden_fixtures_carry_the_current_format_version() {
    for name in [
        "nearest_centroid.etsc",
        "gaussian_full.etsc",
        "ects.etsc",
        "edsc_che.etsc",
        "relclass_diag.etsc",
        "template.etsc",
        "ects_session_raw.etsc",
    ] {
        let info = inspect(&read_fixture(name))
            .unwrap_or_else(|e| panic!("fixture {name}: envelope no longer validates: {e}"));
        assert_eq!(
            info.version, FORMAT_VERSION,
            "fixture {name} was written under format {}, reader is at {FORMAT_VERSION} — \
             a layout change must bump the version and regenerate fixtures",
            info.version
        );
    }
}

#[test]
fn golden_model_fixtures_decode_and_match_refits() {
    let (centroid, gaussian, ects, edsc, relclass, template) = fixture_models();
    let probe = fixture_probe();

    let c = NearestCentroid::restore(&read_fixture("nearest_centroid.etsc")).unwrap();
    assert_eq!(
        etsc::classifiers::Classifier::predict_proba(&c, &probe),
        etsc::classifiers::Classifier::predict_proba(&centroid, &probe),
        "nearest_centroid fixture decodes to different behavior"
    );

    let g = GaussianModel::restore(&read_fixture("gaussian_full.etsc")).unwrap();
    for t in [4, 12, 24] {
        for cls in 0..2 {
            assert_eq!(
                g.log_likelihood_prefix(cls, &probe[..t]),
                gaussian.log_likelihood_prefix(cls, &probe[..t]),
                "gaussian_full fixture: class {cls} prefix {t}"
            );
        }
    }

    let e = Ects::restore(&read_fixture("ects.etsc")).unwrap();
    let d = Edsc::restore(&read_fixture("edsc_che.etsc")).unwrap();
    let r = RelClass::restore(&read_fixture("relclass_diag.etsc")).unwrap();
    let m = TemplateMatcher::restore(&read_fixture("template.etsc")).unwrap();
    for t in 1..=probe.len() {
        assert_eq!(
            e.decide(&probe[..t]),
            ects.decide(&probe[..t]),
            "ects @ {t}"
        );
        assert_eq!(
            d.decide(&probe[..t]),
            edsc.decide(&probe[..t]),
            "edsc @ {t}"
        );
        assert_eq!(
            r.decide(&probe[..t]),
            relclass.decide(&probe[..t]),
            "relclass @ {t}"
        );
        assert_eq!(
            m.decide(&probe[..t]),
            template.decide(&probe[..t]),
            "template @ {t}"
        );
    }
}

#[test]
fn golden_session_fixture_resumes_bit_identically() {
    let (_, _, ects, _, _, _) = fixture_models();
    let probe = fixture_probe();
    // Uninterrupted reference over the full probe.
    let mut whole = ects.session(SessionNorm::Raw);
    let reference: Vec<_> = probe.iter().map(|&x| whole.push(x)).collect();
    // The checked-in checkpoint was taken at sample 9.
    let bytes = read_fixture("ects_session_raw.etsc");
    let mut resumed = resume_session(&ects, SessionNorm::Raw, &bytes).unwrap();
    for (t, &x) in probe[9..].iter().enumerate() {
        assert_eq!(
            resumed.push(x),
            reference[9 + t],
            "fixture session diverged at step {}",
            9 + t
        );
    }
}
