//! End-to-end tests of the cross-node serving layer over a real fitted
//! classifier and real loopback sockets.
//!
//! The acceptance bar for `etsc-net` mirrors `etsc-serve`'s: the same
//! synthetic multi-stream traffic produces **identical per-stream alarm
//! sequences** whether the monitors live in this process, behind one node's
//! socket, or spread across a two-node cluster — through a mid-event
//! cross-node migration and across a node crash recovered from a registry
//! checkpoint. Process and network boundaries are deployment knobs; they
//! must never change what any stream's monitor sees or decides.

use etsc::core::UcrDataset;
use etsc::early::ects::{Ects, EctsConfig};
use etsc::net::{Cluster, Endpoint, Listener, NetClient, Node, NodeConfig};
use etsc::persist::ModelRegistry;
use etsc::serve::{Record, Runtime, RuntimeConfig, StreamAlarm, StreamService};
use etsc::stream::{Alarm, StreamMonitorConfig, StreamNorm};
use std::path::PathBuf;

/// Same two-class problem as the serve end-to-end tests: low-level vs
/// high-level series with deterministic per-exemplar jitter.
fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let level = if i % 2 == 0 { 0.0 } else { 3.0 };
            (0..24)
                .map(|j| level + 0.06 * ((i * 5 + j * 3) % 11) as f64)
                .collect()
        })
        .collect();
    let labels = (0..10).map(|i| i % 2).collect();
    UcrDataset::new(data, labels).unwrap()
}

fn serve_cfg() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 3,
            norm: StreamNorm::Raw,
            refractory: 40,
        },
        model_name: "ects".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

const STREAM_IDS: [u64; 5] = [3, 17, 256, 99_991, u64::MAX / 3];
const ROUNDS: usize = 160;

/// Interleaved traffic: every stream alternates quiet background with an
/// event resembling a class-1 training exemplar, offset per stream so the
/// alarm times differ.
fn traffic() -> Vec<Vec<Record>> {
    let train = train_set();
    let event: Vec<f64> = train.series(1).to_vec();
    (0..ROUNDS)
        .map(|t| {
            STREAM_IDS
                .iter()
                .enumerate()
                .map(|(k, &id)| {
                    let start = 20 + 13 * k;
                    let value = if t >= start && t < start + event.len() {
                        event[t - start]
                    } else {
                        0.02 * ((t * 7 + k) % 5) as f64
                    };
                    Record::new(id, value)
                })
                .collect()
        })
        .collect()
}

/// Drive all traffic through any [`StreamService`] — the same driver runs
/// against an in-process `Runtime`, a `NetClient`, or a `Cluster`.
fn drive<S: StreamService>(svc: &mut S, cadence: usize) -> Vec<StreamAlarm>
where
    S::Error: std::fmt::Debug,
{
    let mut alarms = Vec::new();
    for (t, batch) in traffic().iter().enumerate() {
        svc.ingest(batch).unwrap();
        if (t + 1) % cadence == 0 {
            alarms.extend(svc.drain().unwrap());
        }
    }
    alarms.extend(svc.drain().unwrap());
    alarms
}

/// The in-process reference run every distributed topology must match.
fn reference_alarms(clf: &Ects) -> Vec<StreamAlarm> {
    let mut rt = Runtime::new(clf, serve_cfg()).unwrap();
    let alarms = drive(&mut rt, 8);
    assert!(!alarms.is_empty(), "the planted events must produce alarms");
    for &id in &STREAM_IDS {
        assert!(
            alarms.iter().any(|a| a.stream == id),
            "stream {id} must alarm"
        );
    }
    alarms
}

/// One stream's alarm bodies in drain order. Global sequence numbers are
/// node-local, so cross-node comparisons strip `seq` and compare the
/// per-stream clock (`alarm.time`) and verdicts, which every topology must
/// agree on exactly.
fn per_stream(alarms: &[StreamAlarm], id: u64) -> Vec<Alarm> {
    alarms
        .iter()
        .filter(|a| a.stream == id)
        .map(|a| a.alarm)
        .collect()
}

fn bind_loopback() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    (listener, endpoint)
}

fn tmp_root(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("etsc-net-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Stops the node when dropped, so a panicking test body cannot leave the
/// accept loop spinning and hang the scope's implicit join.
struct StopGuard<'n, 'a>(&'n Node<'a, Ects>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// One node behind a socket is bit-identical to the in-process runtime —
/// including global sequence numbers, since a single node owns the whole
/// ingest order. The client and the runtime are driven by the *same*
/// generic code via [`StreamService`].
#[test]
fn a_net_client_matches_the_in_process_runtime_bit_exactly() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);

    let node = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let (listener, endpoint) = bind_loopback();
    let over_the_wire = std::thread::scope(|s| {
        let guard = StopGuard(&node);
        let server = s.spawn(|| node.serve(listener));
        let mut client = NetClient::connect(&endpoint).unwrap();
        let alarms = drive(&mut client, 8);
        assert_eq!(client.stream_count().unwrap(), STREAM_IDS.len());
        drop(guard);
        server.join().unwrap().unwrap();
        alarms
    });
    assert_eq!(
        over_the_wire, reference,
        "a socket between driver and runtime must be invisible in the alarms"
    );
}

/// Two nodes, with half the streams migrated from node to node mid-event
/// and mid-refractory: every stream's alarms stay exactly those of the
/// single-process run. The migration travels over the wire via the
/// cluster's two-phase export/import.
#[test]
fn cross_node_migration_preserves_alarm_sequences() {
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);

    let node_a = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let node_b = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let (la, ea) = bind_loopback();
    let (lb, eb) = bind_loopback();
    let batches = traffic();

    let cluster_alarms = std::thread::scope(|s| {
        let guard_a = StopGuard(&node_a);
        let guard_b = StopGuard(&node_b);
        let server_a = s.spawn(|| node_a.serve(la));
        let server_b = s.spawn(|| node_b.serve(lb));

        let mut cluster = Cluster::connect(&[ea.clone(), eb.clone()]).unwrap();
        let mut alarms = Vec::new();
        for (t, batch) in batches.iter().enumerate() {
            cluster.ingest(batch).unwrap();
            if t == 49 {
                // Round 49 is inside stream 256's event window and within
                // stream 3's refractory period: move those two (wherever
                // the ring put them) onto node B, carrying anchor state and
                // refractory clocks across the wire.
                alarms.extend(cluster.drain().unwrap());
                cluster.migrate(&[STREAM_IDS[0], STREAM_IDS[2]], 1).unwrap();
                assert!(
                    [STREAM_IDS[0], STREAM_IDS[2]]
                        .iter()
                        .all(|&id| cluster.router().route(id) == 1),
                    "migrated streams must route to node B afterwards"
                );
            }
            if (t + 1) % 8 == 0 {
                alarms.extend(cluster.drain().unwrap());
            }
        }
        alarms.extend(cluster.drain().unwrap());
        assert_eq!(cluster.stream_count().unwrap(), STREAM_IDS.len());
        assert!(
            cluster.client(1).stream_count().unwrap() >= 2,
            "node B must hold at least the two migrated streams"
        );

        drop(guard_a);
        drop(guard_b);
        server_a.join().unwrap().unwrap();
        server_b.join().unwrap().unwrap();
        alarms
    });

    for &id in &STREAM_IDS {
        assert_eq!(
            per_stream(&cluster_alarms, id),
            per_stream(&reference, id),
            "stream {id}: cluster alarms must match the single-process run"
        );
    }
}

/// The full federation story from the issue: streams live across two
/// nodes, node A checkpoints into a registry and is killed mid-run, a
/// replacement is recovered from the checkpoint, the cluster client is
/// rebuilt and re-seeded — and every per-stream alarm sequence is exactly
/// the single-process one.
#[test]
fn killing_node_a_and_recovering_from_its_checkpoint_continues_every_stream() {
    let root = tmp_root("kill-recover");
    let clf = Ects::fit(&train_set(), &EctsConfig::default());
    let reference = reference_alarms(&clf);
    let registry = ModelRegistry::open(&root).unwrap();
    let batches = traffic();
    let mut alarms = Vec::new();

    // Deterministic placement (ring order depends on ephemeral ports):
    // odd-index streams on node A, even-index streams on node B.
    let on_a = [STREAM_IDS[1], STREAM_IDS[3]];
    let on_b = [STREAM_IDS[0], STREAM_IDS[2], STREAM_IDS[4]];

    // Phase 1: two live nodes; node A owns the registry. Drive the first 70
    // rounds (round 70 is inside stream 99_991's event window, so the crash
    // lands mid-event), checkpoint A over the wire, then kill it.
    let node_a = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    )
    .with_registry(ModelRegistry::open(&root).unwrap());
    let node_b = Node::new(
        Runtime::new(&clf, serve_cfg()).unwrap(),
        NodeConfig::default(),
    );
    let (la, ea) = bind_loopback();
    let (lb, eb) = bind_loopback();
    std::thread::scope(|s| {
        let guard_a = StopGuard(&node_a);
        let guard_b = StopGuard(&node_b);
        let server_a = s.spawn(|| node_a.serve(la));
        let server_b = s.spawn(|| node_b.serve(lb));

        let mut cluster = Cluster::connect(&[ea.clone(), eb.clone()]).unwrap();
        for &id in &STREAM_IDS {
            cluster.open_stream(id).unwrap();
        }
        cluster.migrate(&on_a, 0).unwrap();
        cluster.migrate(&on_b, 1).unwrap();
        assert_eq!(cluster.client(0).stream_count().unwrap(), on_a.len());
        assert_eq!(cluster.client(1).stream_count().unwrap(), on_b.len());

        for (t, batch) in batches[..70].iter().enumerate() {
            cluster.ingest(batch).unwrap();
            if (t + 1) % 8 == 0 {
                alarms.extend(cluster.drain().unwrap());
            }
        }
        alarms.extend(cluster.drain().unwrap());
        let saved = cluster.client(0).checkpoint().unwrap();
        assert!(saved > 0, "A's checkpoint must write state bytes");

        // Kill node A. Node B's monitors live on in its runtime — stopping
        // its accept loop below just releases the scope; `into_runtime`
        // carries its state into phase 2 unchanged.
        node_a.stop();
        server_a.join().unwrap().unwrap();
        drop(guard_a);
        drop(guard_b);
        server_b.join().unwrap().unwrap();
    });

    // Phase 2: recover A's replacement purely from the registry — model
    // bytes and per-stream checkpoints both — while B continues with the
    // state it already held (it never crashed, so it never reloads).
    let restored: Ects = registry.load("ects").unwrap();
    let rt_a2 = Runtime::recover(&restored, &root, "ects").unwrap();
    assert_eq!(rt_a2.stream_count(), on_a.len());
    let node_a2 = Node::new(rt_a2, NodeConfig::default());
    let node_b2 = Node::new(node_b.into_runtime(), NodeConfig::default());
    let (la2, ea2) = bind_loopback();
    let (lb2, eb2) = bind_loopback();
    std::thread::scope(|s| {
        let guard_a = StopGuard(&node_a2);
        let guard_b = StopGuard(&node_b2);
        let server_a = s.spawn(|| node_a2.serve(la2));
        let server_b = s.spawn(|| node_b2.serve(lb2));

        // A rebuilt client has a fresh ring over new endpoints; re-seed it
        // with where the streams actually live before any ingest, or the
        // ring would auto-open fresh monitors on the wrong node.
        let mut cluster = Cluster::connect(&[ea2.clone(), eb2.clone()]).unwrap();
        for &id in &on_a {
            cluster.router_mut().pin(id, 0);
        }
        for &id in &on_b {
            cluster.router_mut().pin(id, 1);
        }

        for (t, batch) in batches[70..].iter().enumerate() {
            cluster.ingest(batch).unwrap();
            if (t + 1) % 8 == 0 {
                alarms.extend(cluster.drain().unwrap());
            }
        }
        alarms.extend(cluster.drain().unwrap());

        drop(guard_a);
        drop(guard_b);
        server_a.join().unwrap().unwrap();
        server_b.join().unwrap().unwrap();
    });

    for &id in &STREAM_IDS {
        assert_eq!(
            per_stream(&alarms, id),
            per_stream(&reference, id),
            "stream {id}: the crash, recovery, and re-seeded client must be \
             invisible in the alarms"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
