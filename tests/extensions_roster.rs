//! Integration tests for the extension algorithms (ECDIRE, stopping rule,
//! cost-aware) and the Appendix A monitors, run through the public facade.

use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::early::costaware::{CostAware, CostAwareConfig};
use etsc::early::ecdire::{Ecdire, EcdireConfig};
use etsc::early::metrics::{evaluate, PrefixPolicy};
use etsc::early::stopping_rule::{StoppingRule, StoppingRuleConfig};
use etsc::early::EarlyClassifier;
use etsc::stream::alternatives::{GoldenBatchMonitor, ValueThresholdMonitor};

fn splits() -> (etsc::core::UcrDataset, etsc::core::UcrDataset) {
    let cfg = GunPointConfig::default();
    let mut train = gunpoint::generate(12, &cfg, 601);
    let mut test = gunpoint::generate(20, &cfg, 602);
    train.znormalize();
    test.znormalize();
    (train, test)
}

#[test]
fn ecdire_on_gunpoint_is_accurate() {
    let (train, test) = splits();
    let m = Ecdire::fit(&train, &EcdireConfig::default());
    let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
    // Centroid-based ECDIRE blurs GunPoint's subtle fumble bump; ~0.72-0.78
    // is its honest level on this generator (cf. exp_roster_comparison).
    assert!(ev.accuracy() >= 0.65, "accuracy {}", ev.accuracy());
    // GunPoint's discriminating region is early but not instant: safe
    // timestamps must not be at the very first checkpoint.
    for safe in m.safe_lengths().into_iter().flatten() {
        assert!(safe >= train.series_len() / 20);
    }
}

#[test]
fn stopping_rule_on_gunpoint_beats_coin_flip_early() {
    let (train, test) = splits();
    let m = StoppingRule::fit(&train, &StoppingRuleConfig::default());
    let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
    assert!(ev.accuracy() >= 0.75, "accuracy {}", ev.accuracy());
    assert!(ev.earliness() < 1.0, "must commit before full length");
}

#[test]
fn cost_aware_trigger_respects_economics() {
    let (train, test) = splits();
    // Errors expensive, waiting cheap: the trigger sits past the
    // discriminating region and accuracy is high.
    let careful = CostAware::fit(
        &train,
        &CostAwareConfig {
            misclassification_cost: 10_000.0,
            time_cost: 1.0,
            ..Default::default()
        },
    );
    let ev = evaluate(&careful, &test, PrefixPolicy::Oracle);
    assert!(ev.accuracy() >= 0.85, "accuracy {}", ev.accuracy());
    // Waiting expensive: the trigger moves earlier.
    let hasty = CostAware::fit(
        &train,
        &CostAwareConfig {
            misclassification_cost: 10.0,
            time_cost: 50.0,
            ..Default::default()
        },
    );
    assert!(hasty.trigger_len() <= careful.trigger_len());
}

#[test]
fn all_early_classifiers_agree_on_trait_contract() {
    let (train, _) = splits();
    let models: Vec<Box<dyn EarlyClassifier>> = vec![
        Box::new(Ecdire::fit(&train, &EcdireConfig::default())),
        Box::new(StoppingRule::fit(&train, &StoppingRuleConfig::default())),
        Box::new(CostAware::fit(&train, &CostAwareConfig::default())),
    ];
    let probe = train.series(0);
    for m in &models {
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.series_len(), train.series_len());
        assert!(m.min_prefix() >= 1);
        // Full-length behavior is defined for every model.
        let label = m.predict_full(probe);
        assert!(label < 2);
        // decide never panics on any prefix length.
        for l in 1..=probe.len() {
            let _ = m.decide(&probe[..l]);
        }
    }
}

#[test]
fn boiler_monitor_warns_before_the_limit() {
    let mut m = ValueThresholdMonitor::new(200.0, 198.0, 10, 40.0);
    let mut warned_at_pressure = None;
    for i in 0..200 {
        let pressure = 150.0 + 0.3 * i as f64;
        if m.push(pressure).is_some() {
            warned_at_pressure = Some(pressure);
            break;
        }
    }
    let p = warned_at_pressure.expect("a rising signal must warn");
    assert!(p < 200.0, "warning must precede the limit, got {p}");
}

#[test]
fn golden_batch_monitor_passes_good_runs_and_fails_bad_ones() {
    let golden: Vec<f64> = (0..150).map(|i| (i as f64 * 0.07).sin() * 3.0).collect();
    // Good run: tiny measurement noise.
    let mut good = GoldenBatchMonitor::new(golden.clone(), 0.2, 2, 3);
    for (i, &v) in golden.iter().enumerate() {
        let observed = v + 0.05 * ((i % 3) as f64 - 1.0);
        assert!(!good.push(observed), "good run flagged at step {i}");
    }
    // Bad run: gain error of 50%.
    let mut bad = GoldenBatchMonitor::new(golden.clone(), 0.2, 2, 3);
    let tripped = golden.iter().any(|&v| bad.push(v * 1.5));
    assert!(tripped, "a 50% gain error must trip the envelope");
}
