//! End-to-end streaming tests: the prefix problem of Fig 2 and the
//! false-positive flood of Appendix B, asserted quantitatively.

use etsc::core::{AnnotatedStream, Event};
use etsc::datasets::random_walk::smoothed_random_walk;
use etsc::datasets::words::{sentence_stream, word_dataset, WordConfig, FIG2_SENTENCE};
use etsc::early::template::TemplateMatcher;
use etsc::stream::{
    score_alarms, CostModel, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm,
};

fn cat_dog_matcher() -> TemplateMatcher {
    let cfg = WordConfig::default();
    let mut train = word_dataset(&["cat", "dog"], 25, 72, &cfg, 11);
    train.znormalize();
    let thr = TemplateMatcher::calibrate_threshold(&train, 0.90);
    TemplateMatcher::from_centroids(&train, thr * 0.9, 42)
}

fn monitor_cfg() -> StreamMonitorConfig {
    StreamMonitorConfig {
        anchor_stride: 2,
        norm: StreamNorm::PerPrefix,
        refractory: 60,
    }
}

#[test]
fn fig2_sentence_produces_only_false_positives() {
    let clf = cat_dog_matcher();
    let stream = sentence_stream(FIG2_SENTENCE, &["cat", "dog"], &WordConfig::default(), 33);
    assert!(
        stream.events.is_empty(),
        "the sentence contains no standalone cat/dog"
    );
    let mut monitor = StreamMonitor::new(&clf, monitor_cfg());
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 40,
            match_labels: true,
        },
    );
    assert!(
        score.false_positives >= 4,
        "prefix words must trigger false positives, got {}",
        score.false_positives
    );
    assert_eq!(score.true_positives, 0);
}

#[test]
fn control_sentence_with_real_targets_is_detected() {
    let clf = cat_dog_matcher();
    let stream = sentence_stream(
        &["the", "cat", "sat", "near", "the", "dog", "quietly"],
        &["cat", "dog"],
        &WordConfig::default(),
        17,
    );
    assert_eq!(stream.events.len(), 2);
    let mut monitor = StreamMonitor::new(&clf, monitor_cfg());
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 40,
            match_labels: true,
        },
    );
    assert_eq!(score.true_positives, 2, "both real targets must be found");
    assert_eq!(score.false_negatives, 0);
}

#[test]
fn random_walk_background_floods_a_gesture_detector() {
    let cfg = etsc::datasets::gunpoint::GunPointConfig::default();
    let mut train = etsc::datasets::gunpoint::generate(10, &cfg, 201);
    let mut test = etsc::datasets::gunpoint::generate(5, &cfg, 202);
    train.znormalize();
    test.znormalize();
    let teaser =
        etsc::early::teaser::Teaser::fit(&train, &etsc::early::teaser::TeaserConfig::fast());

    // 10 events inside 120k samples of structureless background.
    let mut data = smoothed_random_walk(120_000, 15, 203);
    let mut events = Vec::new();
    let mut pos = 5_000;
    for (s, label) in test.iter().chain(test.iter()) {
        if pos + s.len() >= data.len() {
            break;
        }
        let level = data[pos];
        for (j, &v) in s.iter().enumerate() {
            data[pos + j] = level + 2.0 * v;
        }
        events.push(Event::new(pos, pos + s.len(), label));
        pos += 11_000;
    }
    let stream = AnnotatedStream::new(data, events);

    let mut monitor = StreamMonitor::new(
        &teaser,
        StreamMonitorConfig {
            anchor_stride: 8,
            norm: StreamNorm::PerPrefix,
            refractory: 75,
        },
    );
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 75,
            match_labels: false,
        },
    );
    assert!(
        score.false_positives > 10 * score.true_positives.max(1),
        "background must flood the detector: {} FP vs {} TP",
        score.false_positives,
        score.true_positives
    );
    let report = CostModel::appendix_b().evaluate(&score);
    assert!(
        !report.worth_deploying(),
        "the Appendix B economics must reject this deployment"
    );
}
