//! Criterion benchmarks of the streaming layer: monitor throughput
//! (samples/second a deployment can sustain) under different anchor strides
//! and normalization policies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsc_bench::gunpoint_splits_small;
use etsc_datasets::random_walk::smoothed_random_walk;
use etsc_early::template::TemplateMatcher;
use etsc_stream::{StreamMonitor, StreamMonitorConfig, StreamNorm};

fn bench_monitor_throughput(c: &mut Criterion) {
    let (mut train, _) = gunpoint_splits_small(23);
    train.znormalize();
    let clf = TemplateMatcher::from_centroids(&train, 0.35, 40);
    let stream = smoothed_random_walk(20_000, 15, 71);

    let mut group = c.benchmark_group("monitor_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for stride in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("stride", stride), &stride, |b, &stride| {
            b.iter(|| {
                let mut monitor = StreamMonitor::new(
                    &clf,
                    StreamMonitorConfig {
                        anchor_stride: stride,
                        norm: StreamNorm::PerPrefix,
                        refractory: 50,
                    },
                );
                monitor.run(black_box(&stream))
            });
        });
    }
    group.bench_function("raw_norm_stride16", |b| {
        b.iter(|| {
            let mut monitor = StreamMonitor::new(
                &clf,
                StreamMonitorConfig {
                    anchor_stride: 16,
                    norm: StreamNorm::Raw,
                    refractory: 50,
                },
            );
            monitor.run(black_box(&stream))
        });
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    use etsc_core::Event;
    use etsc_stream::{score_alarms, Alarm, ScoringConfig};
    let events: Vec<Event> = (0..100)
        .map(|i| Event::new(i * 1000 + 100, i * 1000 + 250, 0))
        .collect();
    let alarms: Vec<Alarm> = (0..5000)
        .map(|i| Alarm {
            time: i * 20,
            anchor: (i * 20).saturating_sub(50),
            label: 0,
            confidence: 0.9,
        })
        .collect();
    c.bench_function("score_5000_alarms_100_events", |b| {
        b.iter(|| {
            score_alarms(
                black_box(&alarms),
                black_box(&events),
                100_000,
                &ScoringConfig::default(),
            )
        });
    });
}

criterion_group!(benches, bench_monitor_throughput, bench_scoring);
criterion_main!(benches);
