//! Criterion benchmarks of the streaming layer: monitor throughput
//! (samples/second a deployment can sustain) under different anchor strides
//! and normalization policies, plus the head-to-head the session API exists
//! for — incremental `session().push(x)` versus re-deciding every grown
//! prefix.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etsc_bench::gunpoint_splits_small;
use etsc_datasets::random_walk::smoothed_random_walk;
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::{EarlyClassifier, SessionNorm};
use etsc_stream::{StreamMonitor, StreamMonitorConfig, StreamNorm};

fn bench_monitor_throughput(c: &mut Criterion) {
    let (mut train, _) = gunpoint_splits_small(23);
    train.znormalize();
    let clf = TemplateMatcher::from_centroids(&train, 0.35, 40);
    let stream = smoothed_random_walk(20_000, 15, 71);

    let mut group = c.benchmark_group("monitor_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for stride in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("stride", stride), &stride, |b, &stride| {
            b.iter(|| {
                let mut monitor = StreamMonitor::new(
                    &clf,
                    StreamMonitorConfig {
                        anchor_stride: stride,
                        norm: StreamNorm::PerPrefix,
                        refractory: 50,
                    },
                );
                monitor.run(black_box(&stream))
            });
        });
    }
    group.bench_function("raw_norm_stride16", |b| {
        b.iter(|| {
            let mut monitor = StreamMonitor::new(
                &clf,
                StreamMonitorConfig {
                    anchor_stride: 16,
                    norm: StreamNorm::Raw,
                    refractory: 50,
                },
            );
            monitor.run(black_box(&stream))
        });
    });
    group.finish();
}

/// The API-redesign headline: per-sample cost of one anchor's lifetime.
///
/// `prefix_decide` is what the pre-session monitor did per anchor — rebuild
/// the prefix and run the stateless `decide` at every arriving sample, so
/// sample `t` costs O(t) and a full anchor costs O(L²) classifier work.
/// `session_push` feeds the same samples through the incremental session:
/// amortized O(1) per sample for the ED-based models, O(L) per anchor.
/// Both process identical data and reach identical decisions (the
/// equivalence is property-tested); only the work to get there differs.
fn bench_session_vs_prefix(c: &mut Criterion) {
    let (mut train, _) = gunpoint_splits_small(23);
    train.znormalize();
    let series_len = train.series_len();
    // A background-like probe that never commits: every push does full work
    // for the anchor's entire lifetime (the monitor's common case).
    let probe = smoothed_random_walk(series_len, 15, 9);

    let template = TemplateMatcher::from_centroids(&train, 0.05, 40);
    let ects = Ects::fit(&train, &EctsConfig::default());
    let models: [(&str, &dyn EarlyClassifier); 2] = [("template", &template), ("ects_1nn", &ects)];

    let mut group = c.benchmark_group("session_vs_prefix");
    group.sample_size(10);
    group.throughput(Throughput::Elements(series_len as u64));
    for (name, clf) in models {
        group.bench_with_input(BenchmarkId::new("prefix_decide", name), &clf, |b, clf| {
            b.iter(|| {
                let mut last = etsc_early::Decision::Wait;
                for t in 1..=probe.len() {
                    last = clf.decide(black_box(&probe[..t]));
                }
                last
            });
        });
        group.bench_with_input(BenchmarkId::new("session_push", name), &clf, |b, clf| {
            b.iter(|| {
                let mut session = clf.session(SessionNorm::Raw);
                let mut last = etsc_early::Decision::Wait;
                for &x in black_box(&probe) {
                    last = session.push(x);
                }
                last
            });
        });
    }
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    use etsc_core::Event;
    use etsc_stream::{score_alarms, Alarm, ScoringConfig};
    let events: Vec<Event> = (0..100)
        .map(|i| Event::new(i * 1000 + 100, i * 1000 + 250, 0))
        .collect();
    let alarms: Vec<Alarm> = (0..5000)
        .map(|i| Alarm {
            time: i * 20,
            anchor: (i * 20).saturating_sub(50),
            label: 0,
            confidence: 0.9,
        })
        .collect();
    c.bench_function("score_5000_alarms_100_events", |b| {
        b.iter(|| {
            score_alarms(
                black_box(&alarms),
                black_box(&events),
                100_000,
                &ScoringConfig::default(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_monitor_throughput,
    bench_session_vs_prefix,
    bench_scoring
);
criterion_main!(benches);
