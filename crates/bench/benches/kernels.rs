//! Criterion microbenchmarks for the hot kernels every experiment rests on:
//! z-normalization, distances, lower bounds, subsequence search, SFA words.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsc_core::distance::{euclidean, squared_euclidean_early_abandon, znormalized_dist};
use etsc_core::dtw::{dtw_sq, envelope, lb_keogh_sq};
use etsc_core::nn::{distance_profile, distance_profile_naive, BatchProfile};
use etsc_core::znorm::znormalize;
use etsc_datasets::random_walk::smoothed_random_walk;

fn series(len: usize, seed: u64) -> Vec<f64> {
    smoothed_random_walk(len, 5, seed)
}

fn bench_znormalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("znormalize");
    for len in [128usize, 1024, 8192] {
        let xs = series(len, 1);
        group.bench_with_input(BenchmarkId::from_parameter(len), &xs, |b, xs| {
            b.iter(|| znormalize(black_box(xs)));
        });
    }
    group.finish();
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    let a = znormalize(&series(150, 2));
    let x = series(150, 3);
    group.bench_function("euclidean/150", |b| {
        let y = znormalize(&x);
        b.iter(|| euclidean(black_box(&a), black_box(&y)));
    });
    group.bench_function("euclidean_early_abandon/150", |b| {
        let y = znormalize(&x);
        b.iter(|| squared_euclidean_early_abandon(black_box(&a), black_box(&y), 10.0));
    });
    group.bench_function("znormalized_dist/150", |b| {
        b.iter(|| znormalized_dist(black_box(&a), black_box(&x)));
    });
    group.finish();
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    let a = series(150, 4);
    let b_ = series(150, 5);
    for band in [5usize, 15, 150] {
        group.bench_with_input(BenchmarkId::new("band", band), &band, |bch, &band| {
            bch.iter(|| dtw_sq(black_box(&a), black_box(&b_), Some(band)));
        });
    }
    let (u, l) = envelope(&b_, 15);
    group.bench_function("lb_keogh/150", |bch| {
        bch.iter(|| lb_keogh_sq(black_box(&a), black_box(&u), black_box(&l)));
    });
    group.finish();
}

fn bench_subsequence_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_profile");
    group.sample_size(20);
    let query = series(120, 6);
    for hay_len in [10_000usize, 100_000] {
        let hay = series(hay_len, 7);
        group.bench_with_input(BenchmarkId::from_parameter(hay_len), &hay, |b, hay| {
            b.iter(|| distance_profile(black_box(&query), black_box(hay)));
        });
    }
    group.finish();
}

/// The rolling-statistics engine against the pre-engine reference, plus the
/// amortization of a reused engine and the pruned nearest scan.
fn bench_profile_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_engine");
    group.sample_size(20);
    let query = series(128, 6);
    let hay = series(100_000, 7);
    group.bench_function("naive/100k", |b| {
        b.iter(|| distance_profile_naive(black_box(&query), black_box(&hay)));
    });
    group.bench_function("rolling_oneshot/100k", |b| {
        b.iter(|| BatchProfile::new(black_box(&hay)).profile(black_box(&query)));
    });
    let engine = BatchProfile::new(&hay);
    group.bench_function("rolling_reused/100k", |b| {
        b.iter(|| engine.profile(black_box(&query)));
    });
    group.bench_function("nearest_pruned/100k", |b| {
        b.iter(|| engine.nearest(black_box(&query)));
    });
    let queries: Vec<&[f64]> = vec![&query; 8];
    group.bench_function("batch_8_queries/100k", |b| {
        b.iter(|| engine.profiles(black_box(&queries)));
    });
    group.finish();
}

/// Thread scaling of the parallel haystack split (fix the worker count
/// explicitly so the numbers are comparable regardless of `ETSC_THREADS`).
fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(20);
    let query = series(128, 8);
    let hay = series(200_000, 9);
    let engine = BatchProfile::new(&hay);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("profile_threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| engine.profile_with(t, black_box(&query)));
            },
        );
    }
    group.finish();
}

fn bench_sfa(c: &mut Criterion) {
    use etsc_classifiers::sfa::{dft_features, Sfa};
    let mut group = c.benchmark_group("sfa");
    let windows: Vec<Vec<f64>> = (0..64).map(|i| series(32, 100 + i)).collect();
    let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
    group.bench_function("fit/64x32", |b| {
        b.iter(|| Sfa::fit(refs.iter().copied(), 4, 4));
    });
    let sfa = Sfa::fit(refs.iter().copied(), 4, 4);
    let probe = series(32, 999);
    group.bench_function("word/32", |b| {
        b.iter(|| sfa.word(black_box(&probe)));
    });
    group.bench_function("dft_features/32x2", |b| {
        b.iter(|| dft_features(black_box(&probe), 2));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_znormalize,
    bench_distances,
    bench_dtw,
    bench_subsequence_search,
    bench_profile_engine,
    bench_parallel_scaling,
    bench_sfa
);
criterion_main!(benches);
