//! Criterion benchmarks of the ETSC algorithms: fit cost and per-prefix
//! decision latency (the number that matters for a deployed monitor).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etsc_bench::gunpoint_splits_small;
use etsc_core::UcrDataset;
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::EarlyClassifier;

fn train_data() -> UcrDataset {
    let (mut train, _) = gunpoint_splits_small(17);
    train.znormalize();
    train
}

fn edsc_cfg() -> EdscConfig {
    EdscConfig {
        lengths: vec![15, 25],
        stride: 8,
        method: ThresholdMethod::Chebyshev { k: 3.0 },
        min_precision: 0.8,
        max_features_per_class: 10,
    }
}

fn bench_fit(c: &mut Criterion) {
    let train = train_data();
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.bench_function("ects", |b| {
        b.iter(|| Ects::fit(black_box(&train), &EctsConfig::default()));
    });
    group.bench_function("edsc_che", |b| {
        b.iter(|| Edsc::fit(black_box(&train), &edsc_cfg()));
    });
    group.bench_function("relclass", |b| {
        b.iter(|| RelClass::fit(black_box(&train), &RelClassConfig::default()));
    });
    group.bench_function("teaser_centroid", |b| {
        b.iter(|| Teaser::fit(black_box(&train), &TeaserConfig::fast()));
    });
    group.bench_function("template_matcher", |b| {
        b.iter(|| TemplateMatcher::from_centroids(black_box(&train), 0.5, 10));
    });
    group.finish();
}

fn bench_decide(c: &mut Criterion) {
    let train = train_data();
    let probe: Vec<f64> = train.series(0).to_vec();
    let half = &probe[..probe.len() / 2];

    let ects = Ects::fit(&train, &EctsConfig::default());
    let edsc = Edsc::fit(&train, &edsc_cfg());
    let relclass = RelClass::fit(&train, &RelClassConfig::default());
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    let template = TemplateMatcher::from_centroids(&train, 0.5, 10);

    let mut group = c.benchmark_group("decide_half_prefix");
    group.bench_function("ects", |b| b.iter(|| ects.decide(black_box(half))));
    group.bench_function("edsc_che", |b| b.iter(|| edsc.decide(black_box(half))));
    group.bench_function("relclass", |b| b.iter(|| relclass.decide(black_box(half))));
    group.bench_function("teaser_centroid", |b| {
        b.iter(|| teaser.decide(black_box(half)))
    });
    group.bench_function("template_matcher", |b| {
        b.iter(|| template.decide(black_box(half)))
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_decide);
criterion_main!(benches);
