//! **Fig 7** — "An ECG recorded from two locations in the chest. ECG1 shows
//! dramatic but medically meaningless variation in the mean of individual
//! beats. ECG2 shows equally dramatic but also medically meaningless
//! variation in the standard deviation of individual beats."
//!
//! We synthesize both channels, quantify the per-beat mean/σ dispersion, and
//! then demonstrate the practical upshot the paper states: "these algorithms
//! working on medical telemetry will be plagued with false negatives" — a
//! matcher trained on UCR-normalized beats misses raw-stream beats unless
//! each prefix is honestly re-normalized.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig7_ecg_drift`

use etsc_bench::render_table;
use etsc_core::stats::std_dev;
use etsc_datasets::ecg::{beat_dataset, ecg_stream, per_beat_stats, Channel, EcgConfig};

fn main() {
    let cfg = EcgConfig::default();
    let n_beats = 240;

    println!("Fig 7: per-beat mean and sigma drift in two-channel ECG telemetry\n");
    let mut rows = Vec::new();
    for (name, channel) in [
        ("ECG1 (mean drift)", Channel::MeanDrift),
        ("ECG2 (sigma drift)", Channel::StdDrift),
    ] {
        let s = ecg_stream(n_beats, channel, 0, &cfg, 71);
        let stats = per_beat_stats(&s.data, cfg.beat_len);
        let means: Vec<f64> = stats.iter().map(|&(m, _)| m).collect();
        let stds: Vec<f64> = stats.iter().map(|&(_, sd)| sd).collect();
        let span = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::MAX, f64::min);
            let hi = v.iter().cloned().fold(f64::MIN, f64::max);
            (lo, hi)
        };
        let (mlo, mhi) = span(&means);
        let (slo, shi) = span(&stds);
        rows.push(vec![
            name.to_string(),
            format!("[{mlo:+.2}, {mhi:+.2}]"),
            format!("{:.3}", std_dev(&means)),
            format!("[{slo:.2}, {shi:.2}]"),
            format!("{:.2}x", shi / slo.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "channel",
                "beat-mean range",
                "sd(means)",
                "beat-sigma range",
                "sigma spread"
            ],
            &rows
        )
    );
    println!("Both variations are physiological artifacts (respiration, electrode drift) —");
    println!("medically meaningless, yet each one breaks a fixed normalization assumption.\n");

    // The false-negative demonstration: a beat template learned from clean
    // UCR-format (z-normalized) beats, scanned over the drifting stream by
    // two deployments:
    //   (a) one that assumes the wire data is already normalized — the
    //       implicit assumption of the ETSC literature (Section 4), and
    //   (b) one that honestly re-normalizes every candidate window.
    let mut train = beat_dataset(30, &cfg, 72);
    train.znormalize();
    let centroid: Vec<f64> = {
        let mut acc = vec![0.0; cfg.beat_len];
        let normals: Vec<&[f64]> = train
            .iter()
            .filter(|&(_, l)| l == etsc_datasets::ecg::CLASS_NORMAL)
            .map(|(s, _)| s)
            .collect();
        for s in &normals {
            for (a, &v) in acc.iter_mut().zip(*s) {
                *a += v;
            }
        }
        acc.iter_mut().for_each(|v| *v /= normals.len() as f64);
        etsc_core::znorm::znormalize(&acc)
    };
    // Threshold: the 95th percentile of template distances to genuine
    // normalized training beats.
    let thr = {
        let mut ds: Vec<f64> = train
            .iter()
            .map(|(s, _)| etsc_core::distance::euclidean(&centroid, s))
            .collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ds[(0.95 * (ds.len() - 1) as f64) as usize]
    };

    let stream = ecg_stream(n_beats, Channel::MeanDrift, 0, &cfg, 73);
    // (a) Raw-assumption detector: plain ED against raw windows.
    let raw_matches = {
        let mut count = 0usize;
        let mut last = 0usize;
        let m = centroid.len();
        let mut first = true;
        for start in 0..stream.data.len().saturating_sub(m) {
            let d = etsc_core::distance::euclidean(&centroid, &stream.data[start..start + m]);
            if d <= thr && (first || start >= last + m / 2) {
                count += 1;
                last = start;
                first = false;
            }
        }
        count
    };
    // (b) Honest per-window re-normalization (requires the WHOLE window —
    // i.e. no longer early classification).
    let honest_matches = etsc_core::nn::matches_within(&centroid, &stream.data, thr).len();

    println!(
        "beat template (from z-normalized training beats, threshold {thr:.2}) scanned over\n\
         a {}-beat mean-drifting stream:",
        n_beats
    );
    println!(
        "  assuming pre-normalized input:  {raw_matches:>4} beats found  ({:.0}% false negatives)",
        100.0 * (n_beats.saturating_sub(raw_matches)) as f64 / n_beats as f64
    );
    println!(
        "  honest per-window re-norm:      {honest_matches:>4} beats found  ({:.0}% false negatives)",
        100.0 * (n_beats.saturating_sub(honest_matches)) as f64 / n_beats as f64
    );
    println!("\nThe pre-normalized assumption loses most beats to baseline wander — the");
    println!("false-negative flood the paper predicts. Honest re-normalization recovers them,");
    println!("but needs the whole beat before it can normalize: that is classification, not");
    println!("EARLY classification (Section 4).");
}
