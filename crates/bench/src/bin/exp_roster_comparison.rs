//! **Extension** — the full algorithm roster on one benchmark.
//!
//! Beyond Table 1's six, the paper's bibliography spans the whole ETSC
//! design space: TEASER \[2\], ECDIRE \[7\], stopping rules \[10\], cost-aware
//! triggering \[12, 19\], and plain template matching (Section 5). This
//! binary runs every early classifier in the workspace on the same
//! GunPoint-like split and reports accuracy / earliness / harmonic mean,
//! normalized and denormalized — the "who wins, and does anyone survive an
//! offset" overview.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_roster_comparison`

use etsc_bench::{fit_table1, gunpoint_splits, pct, render_table};
use etsc_datasets::transforms::{denormalize, DenormalizeConfig};
use etsc_early::costaware::{CostAware, CostAwareConfig};
use etsc_early::ecdire::{Ecdire, EcdireConfig};
use etsc_early::metrics::{evaluate, PrefixPolicy};
use etsc_early::stopping_rule::{StoppingRule, StoppingRuleConfig};
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::EarlyClassifier;

fn main() {
    let (mut train, mut test) = gunpoint_splits(77);
    train.znormalize();
    test.znormalize();
    let denorm = denormalize(&test, DenormalizeConfig::default(), 78);

    let mut rows = Vec::new();
    let mut add_row = |name: &str, clf: &dyn EarlyClassifier, policy: PrefixPolicy| {
        let n = evaluate(clf, &test, policy);
        let d = evaluate(clf, &denorm, policy);
        rows.push(vec![
            name.to_string(),
            pct(n.accuracy()),
            pct(n.earliness()),
            format!("{:.3}", n.harmonic_mean()),
            pct(d.accuracy()),
        ]);
    };

    for algo in fit_table1(&train) {
        add_row(algo.name(), algo.classifier(), PrefixPolicy::Oracle);
    }
    let ecdire = Ecdire::fit(&train, &EcdireConfig::default());
    add_row("ECDIRE", &ecdire, PrefixPolicy::Oracle);
    let sr = StoppingRule::fit(&train, &StoppingRuleConfig::default());
    add_row("StoppingRule (alpha=0.8)", &sr, PrefixPolicy::Oracle);
    let ca = CostAware::fit(&train, &CostAwareConfig::default());
    add_row(
        &format!("CostAware (trigger={})", ca.trigger_len()),
        &ca,
        PrefixPolicy::Oracle,
    );
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    add_row("TEASER (honest z-norm)", &teaser, PrefixPolicy::Raw);
    let thr = TemplateMatcher::calibrate_threshold(&train, 0.95);
    let tm = TemplateMatcher::from_centroids(&train, thr, 20);
    add_row("TemplateMatcher", &tm, PrefixPolicy::Oracle);

    println!("Full roster on GunPoint-like data (50 train / 150 test):\n");
    println!(
        "{}",
        render_table(
            &["Algorithm", "Acc", "Earliness", "HM", "Denorm Acc"],
            &rows
        )
    );
    println!("All UCR-convention rows assume oracle-normalized prefixes; TEASER's honest");
    println!("per-prefix normalization is why its 'Denorm Acc' column does not collapse.");
}
