//! Machine-readable benchmark of the sharded serving runtime
//! (`etsc-serve`).
//!
//! Over a grid of stream count × shard count, drives interleaved synthetic
//! traffic through a [`Runtime`] in the intended shape — ingest a window of
//! batches, then drain, with a periodic checkpoint every quarter of the
//! run — and reads its measurements off the runtime's **own telemetry**
//! (the `etsc_core::metrics` histograms the production stats path exposes)
//! rather than stopwatching from outside:
//!
//! * **throughput**: records pushed per second, end to end (routing +
//!   queueing + monitor servicing + the periodic checkpoint pauses);
//! * **ingest→drain latency**: p50/p99 of the runtime's drain-cycle
//!   histogram — an alarm is delivered by the drain that processes its
//!   triggering sample, so the drain-cycle distribution bounds
//!   push-to-alarm latency — plus the p99 of the sampled per-push
//!   histogram;
//! * **checkpoint pause**: p99 of the runtime's checkpoint-pause
//!   histogram over the run's periodic checkpoints, and the envelope
//!   size; and
//! * **instrumentation overhead**: median-of-5 interleaved A/B of
//!   pushes/s with the runtime clock disabled vs monotonic — the cost of
//!   leaving telemetry on, which the 1-in-8 push sampling is designed to
//!   keep under 5%; and
//! * **tracing overhead**: the same interleaved A/B with a *disabled*
//!   tracer against a *recording* one, every batch carrying a wire
//!   [`TraceContext`] so the full span chain (`ShardEnqueue` →
//!   `ShardDrain` → `AlarmEmit`) records in the hot path — held to the
//!   same 5% budget.
//!
//! Writes `BENCH_serve.json` into the current directory.
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_serve [--quick]`
//! `--quick` shrinks the grid and round count for CI smoke runs.
//!
//! **Caveat:** the numbers are only meaningful relative to each other on
//! the same machine; in particular, shard-count *scaling* requires
//! multiple cores (see the ROADMAP's single-CPU note).

use std::fmt::Write as _;
use std::time::Instant;

use etsc_classifiers::centroid::NearestCentroid;
use etsc_core::metrics::Clock;
use etsc_core::trace::{TraceContext, Tracer, TracerConfig};
use etsc_core::UcrDataset;
use etsc_early::threshold::ProbThreshold;
use etsc_persist::ModelRegistry;
use etsc_serve::{Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

/// Training exemplar length — also each monitor's anchor horizon.
const TRAIN_LEN: usize = 128;
/// Anchor stride: bounds live anchors per stream at TRAIN_LEN / stride.
const STRIDE: usize = 16;
/// Batches per ingest/drain cycle.
const CYCLE: usize = 32;
/// Checkpoints cut per run (evenly spaced over the cycles).
const CHECKPOINTS: usize = 4;

fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let level = if i % 2 == 0 { -2.0 } else { 2.0 };
            (0..TRAIN_LEN)
                .map(|j| level + 0.08 * (((i * 31 + j * 17) % 13) as f64 - 6.0))
                .collect()
        })
        .collect();
    UcrDataset::new(data, (0..8).map(|i| i % 2).collect()).unwrap()
}

/// Background traffic sample for stream `k` at round `t`: noise with a slow
/// drift, rarely decisive — so monitors stay busy instead of latching.
fn sample(k: usize, t: usize) -> f64 {
    0.15 * (((t * 23 + k * 7) % 17) as f64 - 8.0) + ((t as f64) * 0.013).sin()
}

struct Row {
    streams: usize,
    shards: usize,
    rounds: usize,
    pushes_per_sec: f64,
    p50_cycle_ns: u64,
    p99_cycle_ns: u64,
    p99_push_ns: u64,
    alarms: u64,
    checkpoints: u64,
    checkpoint_p99_ns: u64,
    checkpoint_bytes: usize,
}

fn bench_one(
    model: &ProbThreshold<NearestCentroid>,
    streams: usize,
    shards: usize,
    rounds: usize,
    registry: &ModelRegistry,
    clock: Clock,
    tracer: Option<Tracer>,
) -> Row {
    let cfg = RuntimeConfig {
        shards,
        queue_capacity: streams * CYCLE + 1,
        monitor: StreamMonitorConfig {
            anchor_stride: STRIDE,
            norm: StreamNorm::Raw,
            refractory: 200,
        },
        model_name: "serve-bench".to_string(),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(model, cfg).expect("valid bench config");
    rt.set_clock(clock);
    // With a tracer attached, every batch carries a wire context so the
    // per-shard span chain records (or no-ops, for a disabled tracer) in
    // the hot path — the workload the tracing-overhead A/B measures.
    let with_ctx = tracer.is_some();
    if let Some(t) = tracer {
        rt.set_tracer(t);
    }
    let cycles = rounds / CYCLE;
    let ckpt_every = (cycles / CHECKPOINTS).max(1);
    let mut batch = Vec::with_capacity(streams);
    let mut alarms = 0u64;
    let mut cycle = 0usize;
    let t0 = Instant::now();
    for t in 0..rounds {
        batch.clear();
        for k in 0..streams {
            batch.push(Record::new(k as u64, sample(k, t)));
        }
        if with_ctx {
            let ctx = TraceContext {
                trace_id: (t + 1) as u64,
                parent_span: 0,
            };
            rt.ingest_ctx(&batch, Some(ctx))
                .expect("bench queues are sized to fit");
        } else {
            rt.ingest(&batch).expect("bench queues are sized to fit");
        }
        if (t + 1) % CYCLE == 0 {
            alarms += rt.drain().len() as u64;
            cycle += 1;
            if cycle.is_multiple_of(ckpt_every) {
                rt.checkpoint(registry).expect("bench checkpoint");
            }
        }
    }
    alarms += rt.drain().len() as u64;
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = rt.stats();
    let total_pushes = (streams * rounds) as f64;
    Row {
        streams,
        shards,
        rounds,
        pushes_per_sec: total_pushes / elapsed,
        p50_cycle_ns: stats.drain_cycle_ns.p50(),
        p99_cycle_ns: stats.drain_cycle_ns.p99(),
        p99_push_ns: stats.push_ns.p99(),
        alarms,
        checkpoints: stats.checkpoints,
        checkpoint_p99_ns: stats.checkpoint_pause_ns.p99(),
        checkpoint_bytes: stats.last_checkpoint_bytes,
    }
}

/// Median of an interleaved A/B: 5 runs with the clock disabled against 5
/// with it monotonic, alternating so thermal / cache drift hits both arms
/// equally. Returns the percent throughput lost to instrumentation
/// (negative = the instrumented arm happened to measure faster).
fn instrumentation_overhead_pct(
    model: &ProbThreshold<NearestCentroid>,
    registry: &ModelRegistry,
    rounds: usize,
) -> f64 {
    let mut off = Vec::with_capacity(5);
    let mut on = Vec::with_capacity(5);
    for _ in 0..5 {
        off.push(bench_one(model, 64, 2, rounds, registry, Clock::disabled(), None).pushes_per_sec);
        on.push(bench_one(model, 64, 2, rounds, registry, Clock::monotonic(), None).pushes_per_sec);
    }
    overhead_pct_of(&mut off, &mut on)
}

/// Median of an interleaved A/B of the distributed-tracing path: 5 runs
/// with a **disabled** tracer (every span/event call short-circuits)
/// against 5 with a **recording** one, both arms ingesting with a wire
/// `TraceContext` so the full `ShardEnqueue` → `ShardDrain` → `AlarmEmit`
/// chain is exercised. Returns the percent throughput lost to recording,
/// held to the same 5% budget as telemetry.
fn tracing_overhead_pct(
    model: &ProbThreshold<NearestCentroid>,
    registry: &ModelRegistry,
    rounds: usize,
) -> f64 {
    let mut off = Vec::with_capacity(5);
    let mut on = Vec::with_capacity(5);
    for _ in 0..5 {
        let disabled = Tracer::new(TracerConfig {
            clock: Clock::disabled(),
            ..TracerConfig::default()
        });
        off.push(
            bench_one(
                model,
                64,
                2,
                rounds,
                registry,
                Clock::monotonic(),
                Some(disabled),
            )
            .pushes_per_sec,
        );
        let recording = Tracer::new(TracerConfig::default());
        on.push(
            bench_one(
                model,
                64,
                2,
                rounds,
                registry,
                Clock::monotonic(),
                Some(recording),
            )
            .pushes_per_sec,
        );
    }
    overhead_pct_of(&mut off, &mut on)
}

/// Percent throughput the `on` arm loses to the `off` arm, median vs
/// median (negative = the instrumented arm happened to measure faster).
fn overhead_pct_of(off: &mut Vec<f64>, on: &mut Vec<f64>) -> f64 {
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let (off_med, on_med) = (median(off), median(on));
    (off_med - on_med) / off_med * 100.0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (stream_counts, shard_counts, rounds): (&[usize], &[usize], usize) = if quick {
        (&[8, 32], &[1, 4], 256)
    } else {
        (&[16, 64, 256], &[1, 2, 8], 1536)
    };
    println!(
        "bench_serve: stride {STRIDE}, cycle {CYCLE} batches, rounds = {rounds} per combination, \
         {CHECKPOINTS} periodic checkpoints per run"
    );

    let model = ProbThreshold::new(NearestCentroid::fit(&train_set()), 0.9999, TRAIN_LEN, 2);
    let mut dir = std::env::temp_dir();
    dir.push(format!("etsc-serve-bench-{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("temp registry");

    let mut rows = Vec::new();
    for &streams in stream_counts {
        for &shards in shard_counts {
            let row = bench_one(
                &model,
                streams,
                shards,
                rounds,
                &registry,
                Clock::monotonic(),
                None,
            );
            println!(
                "  streams {:>4} × shards {:>2}: {:>12.0} pushes/s  cycle p50/p99 {:>9}/{:>10} ns  \
                 push p99 {:>6} ns  ckpt p99 {:>9} ns / {:>8} B  ({} alarms)",
                row.streams,
                row.shards,
                row.pushes_per_sec,
                row.p50_cycle_ns,
                row.p99_cycle_ns,
                row.p99_push_ns,
                row.checkpoint_p99_ns,
                row.checkpoint_bytes,
                row.alarms,
            );
            rows.push(row);
        }
    }

    let overhead_rounds = if quick { 256 } else { 768 };
    let overhead_pct = instrumentation_overhead_pct(&model, &registry, overhead_rounds);
    println!(
        "  instrumentation overhead (disabled vs monotonic clock, median of 5): {overhead_pct:+.2}%"
    );
    if overhead_pct >= 5.0 {
        println!("  WARNING: telemetry overhead is at or above the 5% budget");
    }
    let trace_pct = tracing_overhead_pct(&model, &registry, overhead_rounds);
    println!("  tracing overhead (disabled vs recording tracer, median of 5): {trace_pct:+.2}%");
    if trace_pct >= 5.0 {
        println!("  WARNING: tracing overhead is at or above the 5% budget");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Emit BENCH_serve.json (hand-rolled: the workspace is offline, no
    // serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"anchor_stride\": {STRIDE},");
    let _ = writeln!(json, "  \"batches_per_cycle\": {CYCLE},");
    let _ = writeln!(json, "  \"checkpoints_per_run\": {CHECKPOINTS},");
    let _ = writeln!(
        json,
        "  \"instrumentation_overhead_pct\": {overhead_pct:.2},"
    );
    let _ = writeln!(json, "  \"tracing_overhead_pct\": {trace_pct:.2},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"streams\": {}, \"shards\": {}, \"rounds\": {}, \"pushes_per_sec\": {:.0}, \
             \"p50_cycle_ns\": {}, \"p99_cycle_ns\": {}, \"p99_push_ns\": {}, \"alarms\": {}, \
             \"checkpoints\": {}, \"checkpoint_p99_ns\": {}, \"checkpoint_bytes\": {}}}{}",
            r.streams,
            r.shards,
            r.rounds,
            r.pushes_per_sec,
            r.p50_cycle_ns,
            r.p99_cycle_ns,
            r.p99_push_ns,
            r.alarms,
            r.checkpoints,
            r.checkpoint_p99_ns,
            r.checkpoint_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
