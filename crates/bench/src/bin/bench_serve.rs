//! Machine-readable benchmark of the sharded serving runtime
//! (`etsc-serve`).
//!
//! Over a grid of stream count × shard count, drives interleaved synthetic
//! traffic through a [`Runtime`] in the intended shape — ingest a window of
//! batches, then drain — and measures
//!
//! * **throughput**: records pushed per second, end to end (routing +
//!   queueing + monitor servicing), and
//! * **p99 push-to-alarm latency**: an alarm is delivered at the end of the
//!   ingest/drain cycle its triggering sample arrived in, so the p99 cycle
//!   wall time bounds the p99 latency from pushing a sample to receiving
//!   its alarm; and
//! * **checkpoint pause**: wall time and envelope size of a whole-runtime
//!   [`checkpoint`](Runtime::checkpoint) at the end of the run — the stall
//!   a deployment pays per periodic checkpoint.
//!
//! Writes `BENCH_serve.json` into the current directory.
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_serve [--quick]`
//! `--quick` shrinks the grid and round count for CI smoke runs.
//!
//! **Caveat:** the numbers are only meaningful relative to each other on
//! the same machine; in particular, shard-count *scaling* requires
//! multiple cores (see the ROADMAP's single-CPU note).

use std::fmt::Write as _;
use std::time::Instant;

use etsc_classifiers::centroid::NearestCentroid;
use etsc_core::UcrDataset;
use etsc_early::threshold::ProbThreshold;
use etsc_persist::ModelRegistry;
use etsc_serve::{Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

/// Training exemplar length — also each monitor's anchor horizon.
const TRAIN_LEN: usize = 128;
/// Anchor stride: bounds live anchors per stream at TRAIN_LEN / stride.
const STRIDE: usize = 16;
/// Batches per ingest/drain cycle.
const CYCLE: usize = 32;

fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let level = if i % 2 == 0 { -2.0 } else { 2.0 };
            (0..TRAIN_LEN)
                .map(|j| level + 0.08 * (((i * 31 + j * 17) % 13) as f64 - 6.0))
                .collect()
        })
        .collect();
    UcrDataset::new(data, (0..8).map(|i| i % 2).collect()).unwrap()
}

/// Background traffic sample for stream `k` at round `t`: noise with a slow
/// drift, rarely decisive — so monitors stay busy instead of latching.
fn sample(k: usize, t: usize) -> f64 {
    0.15 * (((t * 23 + k * 7) % 17) as f64 - 8.0) + ((t as f64) * 0.013).sin()
}

struct Row {
    streams: usize,
    shards: usize,
    rounds: usize,
    pushes_per_sec: f64,
    p99_cycle_ns: f64,
    alarms: u64,
    checkpoint_ns: f64,
    checkpoint_bytes: usize,
}

fn bench_one(
    model: &ProbThreshold<NearestCentroid>,
    streams: usize,
    shards: usize,
    rounds: usize,
    registry: &ModelRegistry,
) -> Row {
    let cfg = RuntimeConfig {
        shards,
        queue_capacity: streams * CYCLE + 1,
        monitor: StreamMonitorConfig {
            anchor_stride: STRIDE,
            norm: StreamNorm::Raw,
            refractory: 200,
        },
        model_name: "serve-bench".to_string(),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(model, cfg).expect("valid bench config");
    let mut batch = Vec::with_capacity(streams);
    let mut cycle_times: Vec<f64> = Vec::with_capacity(rounds / CYCLE + 1);
    let mut alarms = 0u64;
    let t0 = Instant::now();
    let mut cycle_start = Instant::now();
    for t in 0..rounds {
        batch.clear();
        for k in 0..streams {
            batch.push(Record::new(k as u64, sample(k, t)));
        }
        rt.ingest(&batch).expect("bench queues are sized to fit");
        if (t + 1) % CYCLE == 0 {
            alarms += rt.drain().len() as u64;
            cycle_times.push(cycle_start.elapsed().as_secs_f64());
            cycle_start = Instant::now();
        }
    }
    alarms += rt.drain().len() as u64;
    let elapsed = t0.elapsed().as_secs_f64();

    let tc = Instant::now();
    let checkpoint_bytes = rt.checkpoint(registry).expect("bench checkpoint");
    let checkpoint_ns = tc.elapsed().as_secs_f64() * 1e9;

    cycle_times.sort_by(f64::total_cmp);
    let p99_idx = ((cycle_times.len() as f64) * 0.99).ceil() as usize;
    let p99_cycle_ns = cycle_times[p99_idx.saturating_sub(1).min(cycle_times.len() - 1)] * 1e9;
    let total_pushes = (streams * rounds) as f64;
    Row {
        streams,
        shards,
        rounds,
        pushes_per_sec: total_pushes / elapsed,
        p99_cycle_ns,
        alarms,
        checkpoint_ns,
        checkpoint_bytes,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (stream_counts, shard_counts, rounds): (&[usize], &[usize], usize) = if quick {
        (&[8, 32], &[1, 4], 256)
    } else {
        (&[16, 64, 256], &[1, 2, 8], 1536)
    };
    println!(
        "bench_serve: stride {STRIDE}, cycle {CYCLE} batches, rounds = {rounds} per combination"
    );

    let model = ProbThreshold::new(NearestCentroid::fit(&train_set()), 0.9999, TRAIN_LEN, 2);
    let mut dir = std::env::temp_dir();
    dir.push(format!("etsc-serve-bench-{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).expect("temp registry");

    let mut rows = Vec::new();
    for &streams in stream_counts {
        for &shards in shard_counts {
            let row = bench_one(&model, streams, shards, rounds, &registry);
            println!(
                "  streams {:>4} × shards {:>2}: {:>12.0} pushes/s  p99 cycle {:>10.0} ns  \
                 ckpt {:>9.0} ns / {:>8} B  ({} alarms)",
                row.streams,
                row.shards,
                row.pushes_per_sec,
                row.p99_cycle_ns,
                row.checkpoint_ns,
                row.checkpoint_bytes,
                row.alarms,
            );
            rows.push(row);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Emit BENCH_serve.json (hand-rolled: the workspace is offline, no
    // serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"anchor_stride\": {STRIDE},");
    let _ = writeln!(json, "  \"batches_per_cycle\": {CYCLE},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"streams\": {}, \"shards\": {}, \"rounds\": {}, \"pushes_per_sec\": {:.0}, \
             \"p99_cycle_ns\": {:.0}, \"alarms\": {}, \"checkpoint_ns\": {:.0}, \
             \"checkpoint_bytes\": {}}}{}",
            r.streams,
            r.shards,
            r.rounds,
            r.pushes_per_sec,
            r.p99_cycle_ns,
            r.alarms,
            r.checkpoint_ns,
            r.checkpoint_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
