//! **Fig 9** — "The holdout classification error-rate of every prefix of
//! the GunPoint data from lengths 20 to 150."
//!
//! The punchline: because GunPoint's class difference lives at the start of
//! the action and the tail is metronome padding, a plain 1NN classifier on
//! a ~46-point prefix already beats using all 150 points. "We can keep only
//! 30.6% of the data, and get the same accuracy as using all the data" —
//! basic data cleaning, not a publishable ETSC model.
//!
//! Honest protocol (the paper z-normalizes the truncated data — see the
//! Table 1 caption): for each prefix length, truncate train and test raw,
//! z-normalize the truncations, then run 1NN-ED.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig9_prefix_curve`

use etsc_bench::gunpoint_splits;
use etsc_classifiers::eval::accuracy;
use etsc_classifiers::knn::NearestNeighbors;

fn main() {
    let (train_raw, test_raw) = gunpoint_splits(9);
    let full_len = train_raw.series_len();

    println!("Fig 9: holdout error rate of every prefix length (1NN-ED, honest z-norm)\n");
    println!("len  error  curve");

    let mut curve: Vec<(usize, f64)> = Vec::new();
    let mut len = 20;
    while len <= full_len {
        let mut train = train_raw.prefix(len).expect("len within range");
        let mut test = test_raw.prefix(len).expect("len within range");
        train.znormalize();
        test.znormalize();
        let clf = NearestNeighbors::one_nn_euclidean(&train);
        let err = 1.0 - accuracy(&clf, &test);
        curve.push((len, err));
        len += 2;
    }

    let full_err = curve.last().expect("non-empty curve").1;
    for &(l, e) in &curve {
        if l % 10 != 0 && l != curve[0].0 {
            continue; // print every 10th point; the full curve is in `curve`
        }
        let bar = "#".repeat((e * 120.0).round() as usize);
        println!("{l:>3}  {e:.3}  {bar}");
    }

    let (best_len, best_err) = curve
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
        .expect("non-empty curve");
    let match_len = curve
        .iter()
        .copied()
        .find(|&(_, e)| e <= full_err)
        .map(|(l, _)| l)
        .unwrap_or(full_len);

    println!("\nfull-length error:              {full_err:.3} (at {full_len} points)");
    println!(
        "best prefix error:              {best_err:.3} at {best_len} points ({:.1}% of the data)",
        100.0 * best_len as f64 / full_len as f64
    );
    println!(
        "earliest prefix matching full:  {match_len} points ({:.1}% of the data)",
        100.0 * match_len as f64 / full_len as f64
    );
    println!("\npaper: error minimized at 46 points; 30.6% of the data already matches, and");
    println!("33.3% beats, the full-length accuracy — without any early-classification model.");
}
