//! **Fig 1** — "Samples of data in the UCR format. Note that exemplars are
//! all of the same length and carefully aligned."
//!
//! Builds the cat/dog spoken-word dataset in UCR format (our synthetic MFCC
//! stand-in), z-normalizes it, and prints the summary statistics plus a
//! character rendering of one exemplar per class — demonstrating the format
//! whose convenience the rest of the paper dismantles.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig1_ucr_format`

use etsc_bench::render_table;
use etsc_core::stats::{mean, std_dev};
use etsc_datasets::words::{word_dataset, WordConfig};

/// Render a series as a small ASCII sparkline block.
fn sparkline(xs: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
    let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    xs.iter()
        .map(|&v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let vocab = ["cat", "dog"];
    let mut ds = word_dataset(&vocab, 30, 150, &WordConfig::default(), 7);
    ds.znormalize();

    println!("Fig 1: the UCR format (synthetic cat/dog utterances)");
    println!(
        "exemplars: {}   series length: {}   classes: {:?}\n",
        ds.len(),
        ds.series_len(),
        vocab
    );

    let mut rows = Vec::new();
    for (word, class) in vocab.iter().zip(0usize..) {
        let members: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
        let means: Vec<f64> = members.iter().map(|&i| mean(ds.series(i))).collect();
        let stds: Vec<f64> = members.iter().map(|&i| std_dev(ds.series(i))).collect();
        rows.push(vec![
            word.to_string(),
            members.len().to_string(),
            format!("{:+.2e}", mean(&means)),
            format!("{:.6}", mean(&stds)),
        ]);
    }
    println!(
        "{}",
        render_table(&["word", "count", "mean(means)", "mean(stds)"], &rows)
    );
    println!("All exemplars z-normalized: mean ~ 0, std = 1 — by construction.\n");

    for (word, class) in vocab.iter().zip(0usize..) {
        let i = (0..ds.len()).find(|&i| ds.label(i) == class).unwrap();
        println!("{word:>4}: {}", sparkline(ds.series(i)));
        let j = (0..ds.len())
            .filter(|&i| ds.label(i) == class)
            .nth(1)
            .unwrap();
        println!("{word:>4}: {}", sparkline(ds.series(j)));
    }
    println!("\nEqual length, aligned, normalized — the format every ETSC paper assumes.");
    println!("Fig 2 shows what happens when the same words arrive inside a stream.");
}
