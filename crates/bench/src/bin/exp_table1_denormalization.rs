//! **Table 1 + Fig 6** — "The accuracy of six early classification
//! algorithms", normalized vs denormalized.
//!
//! Procedure (Section 4 of the paper):
//! 1. Build a GunPoint-like problem (50 train / 150 test) and z-normalize
//!    everything — the UCR convention the algorithms assume.
//! 2. Evaluate each algorithm on the z-normalized test set (the
//!    "Normalized" column).
//! 3. Produce a *denormalized* test set by adding a random offset in
//!    `[-1, 1]` to each exemplar — physically, a ~1.9° camera tilt or a
//!    slightly taller actor (Fig 6) — and evaluate again ("DeNormalized").
//!
//! Expected shape (paper values in parentheses): every algorithm scores
//! well normalized (86–95%) and collapses by tens of points when
//! denormalized (59–71%), because each one implicitly assumed incoming
//! prefixes were standardized using data from the future. TEASER, which
//! z-normalizes prefixes honestly (footnote 2), is shown as an extra row
//! and does *not* collapse.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_table1_denormalization`

use etsc_bench::{fit_table1, gunpoint_splits, pct, render_table};
use etsc_datasets::transforms::{denormalize, DenormalizeConfig};
use etsc_early::metrics::{evaluate, PrefixPolicy};
use etsc_early::teaser::{Teaser, TeaserConfig};

fn main() {
    let seed = 42;
    let (mut train, mut test) = gunpoint_splits(seed);
    train.znormalize();
    test.znormalize();
    let denorm_test = denormalize(&test, DenormalizeConfig::default(), seed + 1);

    println!("Table 1: accuracy of six early classification algorithms");
    println!(
        "GunPoint-like data, {} train / {} test, offset U[-1, 1]\n",
        train.len(),
        test.len()
    );

    let algos = fit_table1(&train);
    let mut rows = Vec::new();
    for a in &algos {
        let clf = a.classifier();
        let normalized = evaluate(clf, &test, PrefixPolicy::Oracle);
        let denormalized = evaluate(clf, &denorm_test, PrefixPolicy::Oracle);
        rows.push(vec![
            a.name().to_string(),
            pct(normalized.accuracy()),
            pct(denormalized.accuracy()),
            pct(normalized.earliness()),
        ]);
    }

    // Extra row: TEASER with honest per-prefix normalization (footnote 2:
    // "[TEASER] does not have this flaw").
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    let t_norm = evaluate(&teaser, &test, PrefixPolicy::Raw);
    let t_denorm = evaluate(&teaser, &denorm_test, PrefixPolicy::Raw);
    rows.push(vec![
        "TEASER (honest z-norm; not in Table 1)".to_string(),
        pct(t_norm.accuracy()),
        pct(t_denorm.accuracy()),
        pct(t_norm.earliness()),
    ]);

    println!(
        "{}",
        render_table(
            &["Algorithm", "Normalized", "DeNormalized", "Earliness"],
            &rows
        )
    );
    println!("Paper's Table 1 for reference:");
    println!("  ECTS 86.7 -> 68.7 | RelaxedECTS 86.7 -> 68.7 | EDSC-CHE 94.7 -> 62.7");
    println!("  EDSC-KDE 95.3 -> 58.7 | Rel.Class. 90.0 -> 70.0 | LDG Rel.Class. 91.3 -> 71.3");
}
