//! Machine-readable benchmark of the incremental decision sessions.
//!
//! For each built-in early-classification algorithm × [`SessionNorm`]
//! combination, drives the same probe stream through
//!
//! * `replay` — a [`ReplaySession`], the universal O(prefix)-per-push
//!   fallback (buffer, renormalize, call the stateless `decide`), and
//! * `incremental` — the algorithm's own `session()` implementation,
//!
//! and reports two costs per path: the **amortized** ns/push over a fresh
//! drive of the first 512 samples, and the **marginal** ns/push at prefix
//! length 512 (the session is warmed on 512 samples untimed, then the next
//! 128 pushes are timed) — the figure the acceptance bar (≥ 10× for the
//! combinations converted off the replay fallback this PR: EDSC under
//! `PerPrefix`, RelClass with a full covariance, RelClass and ProbThreshold
//! under `PerPrefix`) reads. The training fixture (see [`train_set`])
//! separates its classes only *past* the probed window, so no session
//! latches and every push pays full unlatched cost; a combination that
//! commits anyway would report `null` marginals rather than a meaningless
//! latched figure.
//!
//! Writes `BENCH_sessions.json` into the current directory.
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_sessions [--quick]`
//! `--quick` lowers the repetition count for CI smoke runs; the probe and
//! prefix length stay at the acceptance configuration (L = 512).

use std::fmt::Write as _;
use std::time::Instant;

use etsc_classifiers::centroid::NearestCentroid;
use etsc_classifiers::gaussian::CovarianceKind;
use etsc_core::UcrDataset;
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::threshold::ProbThreshold;
use etsc_early::{DecisionSession, EarlyClassifier, ReplaySession, SessionNorm};

const SERIES_LEN: usize = 512;
/// Pushes timed after the warm-up for the marginal (at-prefix-512) figure.
const TAIL: usize = 128;
/// Training exemplar length. Deliberately longer than the probed window
/// (512 + 128): the classes separate only at `SPLIT`, so over the probed
/// prefix they are *identical* — every margin-gated algorithm sits at
/// exactly zero margin (identical class models over the observed
/// coordinates), ECTS minimum prediction lengths land past the probe, and
/// no session latches. The measured per-push cost at prefix 512 is
/// unchanged by the longer fitted length.
const TRAIN_LEN: usize = 768;
const SPLIT: usize = 576;

/// Median of `samples` (sorted in place), in seconds.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Two classes with *identical* per-exemplar noise (the hash deliberately
/// excludes the class) that separate to symmetric ±2 plateaus only at
/// `SPLIT`, past the probed window. Over every probed prefix the fitted
/// class models are coordinate-for-coordinate identical, so margins are
/// exactly zero, thresholds are never met, and every push pays the full
/// unlatched cost — the regime the bench is meant to measure.
fn train_set(n_per_class: usize) -> UcrDataset {
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..n_per_class {
            let level = if c == 0 { -2.0 } else { 2.0 };
            data.push(
                (0..TRAIN_LEN)
                    .map(|j| {
                        let noise = 0.08 * (((i * 31 + j * 17) % 13) as f64 - 6.0);
                        if j < SPLIT {
                            noise
                        } else {
                            level + noise
                        }
                    })
                    .collect::<Vec<f64>>(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

/// Background-looking probe: `SERIES_LEN + TAIL` samples of structured
/// noise around zero, matching neither class plateau.
fn probe() -> Vec<f64> {
    (0..SERIES_LEN + TAIL)
        .map(|j| 0.07 * (((j * 23 + 5) % 17) as f64 - 8.0) + 0.3 * ((j as f64) * 0.05).sin())
        .collect()
}

/// Push `slice` through `session`; returns the 1-based commit step relative
/// to the session's pre-existing length, if a commit happened.
fn drive(session: &mut dyn DecisionSession, slice: &[f64]) -> Option<usize> {
    let mut commit = None;
    for (i, &x) in slice.iter().enumerate() {
        if session.push(x).is_predict() && commit.is_none() {
            commit = Some(i + 1);
        }
    }
    commit
}

struct PathCost {
    amortized_ns: f64,
    /// `None` when the session latched during warm-up (marginal pushes
    /// would be O(1) bookkeeping, not algorithm work).
    marginal_ns: Option<f64>,
    commit: Option<usize>,
}

fn measure<'a>(
    reps: usize,
    probe: &[f64],
    mut fresh: impl FnMut() -> Box<dyn DecisionSession + 'a>,
) -> PathCost {
    let warm = &probe[..SERIES_LEN];
    let tail = &probe[SERIES_LEN..];
    let mut amortized = Vec::with_capacity(reps);
    let mut marginal = Vec::with_capacity(reps);
    let mut commit = None;
    let mut latched = false;
    for _ in 0..reps {
        let mut s = fresh();
        let t0 = Instant::now();
        let c = drive(s.as_mut(), warm);
        amortized.push(t0.elapsed().as_secs_f64());
        commit = c;
        latched = s.decision().is_predict();
        let t0 = Instant::now();
        drive(s.as_mut(), tail);
        marginal.push(t0.elapsed().as_secs_f64());
    }
    PathCost {
        amortized_ns: median(&mut amortized) * 1e9 / SERIES_LEN as f64,
        marginal_ns: (!latched).then(|| median(&mut marginal) * 1e9 / TAIL as f64),
        commit,
    }
}

struct Row {
    algorithm: &'static str,
    norm: &'static str,
    converted: bool,
    replay: PathCost,
    incremental: PathCost,
}

impl Row {
    /// Marginal speedup at prefix 512 (the acceptance figure), when both
    /// paths stayed unlatched.
    fn marginal_speedup(&self) -> Option<f64> {
        match (self.replay.marginal_ns, self.incremental.marginal_ns) {
            (Some(r), Some(i)) => Some(r / i),
            _ => None,
        }
    }
}

fn bench_combo(
    rows: &mut Vec<Row>,
    reps: usize,
    probe: &[f64],
    algorithm: &'static str,
    converted: bool,
    clf: &dyn EarlyClassifier,
    norm: SessionNorm,
) {
    let norm_name = match norm {
        SessionNorm::Raw => "raw",
        SessionNorm::PerPrefix => "per-prefix",
    };
    let replay = measure(reps, probe, || Box::new(ReplaySession::new(clf, norm)));
    let incremental = measure(reps, probe, || clf.session(norm));
    let row = Row {
        algorithm,
        norm: norm_name,
        converted,
        replay,
        incremental,
    };
    let marginal = row
        .marginal_speedup()
        .map_or("latched".to_string(), |s| format!("{s:8.1}x"));
    println!(
        "  {algorithm:<15} {norm_name:<10} replay {:9.1} ns/push   incremental {:9.1} ns/push   @512: {marginal}{}",
        row.replay.amortized_ns,
        row.incremental.amortized_ns,
        if converted { "  *" } else { "" }
    );
    rows.push(row);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 7 };
    println!(
        "bench_sessions: prefix length {SERIES_LEN} (+{TAIL} marginal), reps = {reps} (median); * = converted off the replay fallback this PR"
    );

    let train = train_set(6);
    let probe = probe();
    let mut rows: Vec<Row> = Vec::new();

    let ects = Ects::fit(&train, &EctsConfig::default());
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "ects",
        false,
        &ects,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "ects",
        false,
        &ects,
        SessionNorm::PerPrefix,
    );

    // KDE thresholds hug the within-class (noise-scale) distance
    // distribution, so the neutral probe — a level gap away from every
    // mined pattern — never fires and EDSC sessions stay unlatched. (CHE
    // thresholds are cut down from the *between*-class distances and would
    // swallow the probe.)
    let edsc = Edsc::fit(
        &train,
        &EdscConfig {
            lengths: vec![32, 48],
            stride: 16,
            method: ThresholdMethod::Kde { precision: 0.9 },
            min_precision: 0.7,
            max_features_per_class: 8,
        },
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "edsc",
        false,
        &edsc,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "edsc",
        true,
        &edsc,
        SessionNorm::PerPrefix,
    );

    let rc_diag = RelClass::fit(
        &train,
        &RelClassConfig {
            tau: 0.95,
            ..Default::default()
        },
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "relclass-diag",
        false,
        &rc_diag,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "relclass-diag",
        true,
        &rc_diag,
        SessionNorm::PerPrefix,
    );

    let rc_full = RelClass::fit(
        &train,
        &RelClassConfig {
            tau: 0.95,
            covariance: CovarianceKind::Full,
            ..Default::default()
        },
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "relclass-full",
        true,
        &rc_full,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "relclass-full",
        true,
        &rc_full,
        SessionNorm::PerPrefix,
    );

    let prob = ProbThreshold::new(NearestCentroid::fit(&train), 0.9999, TRAIN_LEN, 2);
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "prob-threshold",
        false,
        &prob,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "prob-threshold",
        true,
        &prob,
        SessionNorm::PerPrefix,
    );

    let template = TemplateMatcher::from_centroids(&train, 0.05, 32);
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "template",
        false,
        &template,
        SessionNorm::Raw,
    );
    bench_combo(
        &mut rows,
        reps,
        &probe,
        "template",
        false,
        &template,
        SessionNorm::PerPrefix,
    );

    // Emit BENCH_sessions.json (hand-rolled: the workspace is offline, no
    // serde).
    let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
    let fmt_commit = |c: Option<usize>| c.map_or("null".to_string(), |v| v.to_string());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"prefix_len\": {SERIES_LEN},");
    let _ = writeln!(json, "  \"marginal_tail\": {TAIL},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"norm\": \"{}\", \"converted_this_pr\": {}, \
             \"replay_amortized_ns_per_push\": {:.1}, \"incremental_amortized_ns_per_push\": {:.1}, \
             \"replay_marginal_ns_per_push_at_512\": {}, \"incremental_marginal_ns_per_push_at_512\": {}, \
             \"marginal_speedup_at_512\": {}, \"commit_step\": {}}}{}",
            r.algorithm,
            r.norm,
            r.converted,
            r.replay.amortized_ns,
            r.incremental.amortized_ns,
            fmt_opt(r.replay.marginal_ns),
            fmt_opt(r.incremental.marginal_ns),
            fmt_opt(r.marginal_speedup()),
            fmt_commit(r.incremental.commit),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_sessions.json", &json).expect("write BENCH_sessions.json");
    println!("\nwrote BENCH_sessions.json");

    let worst_converted = rows
        .iter()
        .filter(|r| r.converted)
        .filter_map(|r| r.marginal_speedup().map(|s| (r, s)))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((r, s)) = worst_converted {
        println!(
            "slowest converted combination at prefix 512: {} / {} at {s:.1}x vs replay",
            r.algorithm, r.norm
        );
    }
}
