//! **Appendix B** — the streaming false-positive experiment and the
//! intervention cost model.
//!
//! "We applied the model in \[2\] (TEASER) to the GunPoint problem, with the
//! exemplars inserted in between long stretches of random walks, and we see
//! thousands of false positives for every true positive."
//!
//! And the economics: a missed event costs $1000; the early action costs
//! $200; so the system must produce at least one true positive per ~5 false
//! positives to break even. We embed GunPoint exemplars in a smoothed random
//! walk, deploy TEASER behind a stream monitor, score the alarms, and price
//! the result.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_appendixb_streaming_fp`

use etsc_bench::gunpoint_splits;
use etsc_core::{AnnotatedStream, Event};
use etsc_datasets::random_walk::smoothed_random_walk;
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_stream::{
    score_alarms, CostModel, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm,
};

/// Embed each test exemplar into the walk at regular spacing, scaled to the
/// local walk level so the splice is seamless.
fn embed(test: &etsc_core::UcrDataset, walk: &[f64], spacing: usize) -> AnnotatedStream {
    let mut data = walk.to_vec();
    let mut events = Vec::new();
    let len = test.series_len();
    let mut pos = spacing;
    for (s, label) in test.iter() {
        if pos + len + spacing > data.len() {
            break;
        }
        let local_level = data[pos];
        let local_scale = 2.0; // exemplars are z-normalized; give them O(walk-step) amplitude
        for (j, &v) in s.iter().enumerate() {
            data[pos + j] = local_level + local_scale * v;
        }
        events.push(Event::new(pos, pos + len, label));
        pos += len + spacing;
    }
    AnnotatedStream::new(data, events)
}

fn main() {
    let (mut train, mut test) = gunpoint_splits(13);
    train.znormalize();
    test.znormalize();

    // 150 exemplars spaced ~10k apart near the head of a 2^24-point smoothed
    // random walk (the paper's background scale).
    let walk = smoothed_random_walk(1 << 24, 15, 131);
    let stream = embed(&test, &walk, 10_000);
    println!(
        "Appendix B: {} GunPoint exemplars embedded in a {}-point smoothed random walk\n",
        stream.events.len(),
        stream.len()
    );

    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    let mut monitor = StreamMonitor::new(
        &teaser,
        StreamMonitorConfig {
            anchor_stride: 8,
            norm: StreamNorm::PerPrefix,
            refractory: 75,
        },
    );
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 75,
            match_labels: false, // any gesture alarm inside a gesture counts
        },
    );

    println!("alarms fired:        {}", alarms.len());
    println!("true positives:      {}", score.true_positives);
    println!("false positives:     {}", score.false_positives);
    println!("false negatives:     {}", score.false_negatives);
    println!("duplicates:          {}", score.duplicates);
    println!("precision:           {:.4}", score.precision());
    println!("recall:              {:.4}", score.recall());
    println!(
        "FP per true positive: {:.1}   (paper: 'thousands of false positives for every true positive')\n",
        score.fp_to_tp_ratio()
    );

    let model = CostModel::appendix_b();
    let report = model.evaluate(&score);
    println!(
        "cost model: event ${}, action ${}",
        model.event_cost, model.action_cost
    );
    println!(
        "break-even FP:TP     {:.1}    observed FP:TP {:.1}",
        report.break_even_fp_per_tp, report.observed_fp_per_tp
    );
    println!("cost without system: ${:.0}", report.without_system);
    println!("cost with system:    ${:.0}", report.with_system);
    println!("net benefit:         ${:.0}", report.net_benefit);
    println!(
        "verdict:             {}",
        if report.worth_deploying() {
            "worth deploying"
        } else {
            "NOT worth deploying — the alarm flood costs more than the events"
        }
    );
}
