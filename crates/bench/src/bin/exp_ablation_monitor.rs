//! **Ablation** — streaming monitor design choices (called out in
//! DESIGN.md): anchor stride, normalization policy, and refractory period,
//! measured by FP rate / recall / runtime proxy on the Appendix B workload.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_ablation_monitor`

use etsc_bench::{gunpoint_splits_small, render_table};
use etsc_core::{AnnotatedStream, Event};
use etsc_datasets::random_walk::smoothed_random_walk;
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_stream::{score_alarms, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm};

fn build_stream(test: &etsc_core::UcrDataset) -> AnnotatedStream {
    let mut data = smoothed_random_walk(300_000, 15, 91);
    let mut events = Vec::new();
    let mut pos = 6_000;
    for (s, label) in test.iter() {
        if pos + s.len() + 6_000 > data.len() {
            break;
        }
        let level = data[pos];
        for (j, &v) in s.iter().enumerate() {
            data[pos + j] = level + 2.0 * v;
        }
        events.push(Event::new(pos, pos + s.len(), label));
        pos += s.len() + 6_000;
    }
    AnnotatedStream::new(data, events)
}

fn main() {
    let (mut train, mut test) = gunpoint_splits_small(90);
    train.znormalize();
    test.znormalize();
    let stream = build_stream(&test);
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    println!(
        "monitor ablation on {} samples / {} events\n",
        stream.len(),
        stream.events.len()
    );

    let mut rows = Vec::new();
    let scoring = ScoringConfig {
        tolerance: 75,
        match_labels: false,
    };
    for stride in [2usize, 8, 32] {
        for norm in [StreamNorm::PerPrefix, StreamNorm::Raw] {
            for refractory in [0usize, 75] {
                let mut monitor = StreamMonitor::new(
                    &teaser,
                    StreamMonitorConfig {
                        anchor_stride: stride,
                        norm,
                        refractory,
                    },
                );
                let start = std::time::Instant::now();
                let alarms = monitor.run(&stream.data);
                let elapsed = start.elapsed().as_millis();
                let score = score_alarms(&alarms, &stream.events, stream.len(), &scoring);
                rows.push(vec![
                    stride.to_string(),
                    format!("{norm:?}"),
                    refractory.to_string(),
                    score.true_positives.to_string(),
                    score.false_positives.to_string(),
                    format!("{:.0}%", score.recall() * 100.0),
                    format!("{elapsed}ms"),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["stride", "norm", "refractory", "TP", "FP", "recall", "time"],
            &rows
        )
    );
    println!("TEASER z-normalizes its own prefixes, so Raw == PerPrefix above.\n");

    // Second ablation: closed-world vs open-world detectors on an
    // EVENT-FREE background. Closed-world classifiers (ECTS: 1NN always
    // returns *some* class once an MPL is reached) fire constantly no
    // matter what the data looks like; an open-world template matcher with
    // an absolute distance threshold mostly stays quiet. This is the
    // structural reason the paper's streaming deployments drown in false
    // positives.
    let ects = etsc_early::ects::Ects::fit(&train, &etsc_early::ects::EctsConfig::default());
    let thr = etsc_early::template::TemplateMatcher::calibrate_threshold(&train, 0.95);
    let template = etsc_early::template::TemplateMatcher::from_centroids(&train, thr, 20);
    let background = smoothed_random_walk(40_000, 15, 92); // zero events
    let mut rows2 = Vec::new();
    {
        let cfg = StreamMonitorConfig {
            anchor_stride: 16,
            norm: StreamNorm::PerPrefix,
            refractory: 75,
        };
        let mut m1 = StreamMonitor::new(&ects, cfg);
        let a1 = m1.run(&background);
        rows2.push(vec![
            "ECTS (closed world)".to_string(),
            a1.len().to_string(),
        ]);
        let mut m2 = StreamMonitor::new(&template, cfg);
        let a2 = m2.run(&background);
        rows2.push(vec![
            "TemplateMatcher (open world)".to_string(),
            a2.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["detector on 40k event-free samples", "alarms"], &rows2)
    );
    println!("Observations the tables support:");
    println!("- Finer anchor strides buy sensitivity at linear compute cost — and more FPs.");
    println!("- The refractory period compresses alarm bursts without losing events.");
    println!("- Closed-world classifiers alarm at the refractory rate on ANY input; only an");
    println!("  absolute-distance (open-world) detector can stay quiet on background.");
}
