//! Machine-readable benchmark of the subsequence-search engine.
//!
//! Measures ns/window for the z-normalized distance profile over a long
//! random-walk haystack, comparing:
//!
//! * `naive` — the pre-engine implementation (per-window `mean_std`
//!   recomputation; [`etsc_core::nn::distance_profile_naive`]),
//! * `rolling` — the [`CumStats`](etsc_core::nn::CumStats) rolling-statistics
//!   engine, serial,
//! * `rolling` at 2 and 4 worker threads — the parallel haystack split,
//!
//! plus the pruned [`nearest`](etsc_core::nn::BatchProfile::nearest) scan,
//! and writes `BENCH_nn.json` into the current directory so the perf
//! trajectory is tracked across PRs (each entry: implementation, n, m,
//! threads, ns/window, speedup vs naive).
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_nn [--quick]`
//! `--quick` drops n to 2^17 for CI smoke runs; the default is the
//! acceptance configuration n = 1_000_000, m = 128.

use std::fmt::Write as _;
use std::time::Instant;

use etsc_core::nn::{distance_profile_naive, BatchProfile};
use etsc_core::parallel;
use etsc_datasets::random_walk::smoothed_random_walk;

/// Median-of-`reps` wall-clock seconds of `f`.
fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Row {
    implementation: &'static str,
    n: usize,
    m: usize,
    threads: usize,
    ns_per_window: f64,
    speedup_vs_naive: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = if quick { 1 << 17 } else { 1_000_000 };
    let m: usize = 128;
    let reps = if quick { 3 } else { 5 };

    let hay = smoothed_random_walk(n, 5, 42);
    let query = smoothed_random_walk(m, 3, 7);
    let n_windows = (n - m + 1) as f64;

    println!("bench_nn: n = {n}, m = {m}, {n_windows} windows, reps = {reps} (median)");

    let mut rows: Vec<Row> = Vec::new();

    // Pre-engine reference: per-window mean/std recomputation.
    let naive_s = time(reps, || distance_profile_naive(&query, &hay));
    let naive_ns = naive_s * 1e9 / n_windows;
    rows.push(Row {
        implementation: "naive",
        n,
        m,
        threads: 1,
        ns_per_window: naive_ns,
        speedup_vs_naive: 1.0,
    });
    println!("  naive    (per-window mean_std, 1 thread): {naive_ns:8.2} ns/window");

    // Rolling-statistics engine, serial and parallel. `rolling_oneshot`
    // times everything a one-shot `distance_profile` call pays (engine
    // construction included); `rolling` times a reused engine — the Fig 5 /
    // Fig 8 shape, and the per-window cost of the rolling statistics alone.
    let s = time(reps, || {
        let engine = BatchProfile::new(&hay);
        engine.profile_with(1, &query)
    });
    let oneshot_ns = s * 1e9 / n_windows;
    rows.push(Row {
        implementation: "rolling_oneshot",
        n,
        m,
        threads: 1,
        ns_per_window: oneshot_ns,
        speedup_vs_naive: naive_ns / oneshot_ns,
    });
    println!(
        "  rolling  (one-shot incl. engine build, 1 thread): {oneshot_ns:8.2} ns/window  ({:.2}x vs naive)",
        naive_ns / oneshot_ns
    );

    let engine = BatchProfile::new(&hay);
    for threads in [1usize, 2, 4] {
        let s = time(reps, || engine.profile_with(threads, &query));
        let ns = s * 1e9 / n_windows;
        rows.push(Row {
            implementation: "rolling",
            n,
            m,
            threads,
            ns_per_window: ns,
            speedup_vs_naive: naive_ns / ns,
        });
        println!(
            "  rolling  (reused engine, {threads} thread{}): {ns:8.2} ns/window  ({:.2}x vs naive)",
            if threads == 1 { "" } else { "s" },
            naive_ns / ns
        );
    }

    // Pruned nearest-neighbor scan (serial).
    let s = time(reps, || {
        parallel::with_threads(1, || engine.nearest(&query))
    });
    let ns = s * 1e9 / n_windows;
    rows.push(Row {
        implementation: "nearest_pruned",
        n,
        m,
        threads: 1,
        ns_per_window: ns,
        speedup_vs_naive: naive_ns / ns,
    });
    println!(
        "  nearest  (pruned best-so-far, 1 thread):  {ns:8.2} ns/window  ({:.2}x vs naive)",
        naive_ns / ns
    );

    // Emit BENCH_nn.json (hand-rolled: the workspace is offline, no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"impl\": \"{}\", \"n\": {}, \"m\": {}, \"threads\": {}, \"ns_per_window\": {:.3}, \"speedup_vs_naive\": {:.3}}}{}",
            r.implementation,
            r.n,
            r.m,
            r.threads,
            r.ns_per_window,
            r.speedup_vs_naive,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_nn.json", &json).expect("write BENCH_nn.json");
    println!("\nwrote BENCH_nn.json");
}
