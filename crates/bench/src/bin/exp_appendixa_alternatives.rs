//! **Appendix A** — the "early classification" problems that *are*
//! well-posed, because they act on values, envelopes, or frequencies
//! instead of pattern-prefix shapes.
//!
//! 1. Boiler pressure: value threshold + trend forecasting.
//! 2. Batch process: golden-batch envelope with wiggle room.
//! 3. Dustbathing frequency: counts of fully observed bouts per day.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_appendixa_alternatives`

use etsc_stream::alternatives::{
    FrequencyMonitor, GoldenBatchMonitor, ValueAlarm, ValueThresholdMonitor,
};

fn main() {
    println!("Appendix A: the well-posed 'early warning' problems\n");

    // --- 1. Boiler pressure -------------------------------------------------
    println!("1. boiler pressure (limit 200 psi, warn at 195, trend horizon 30 samples)");
    let mut boiler = ValueThresholdMonitor::new(200.0, 195.0, 8, 30.0);
    // A slow rise from 180 psi at ~0.5 psi/sample.
    let mut fired_at = None;
    for i in 0..60 {
        let pressure = 180.0 + 0.5 * i as f64;
        if let Some(alarm) = boiler.push(pressure) {
            fired_at = Some((i, pressure, alarm));
            break;
        }
    }
    match fired_at {
        Some((i, pressure, ValueAlarm::TrendForecast { samples_to_limit })) => println!(
            "   trend alarm at sample {i} (pressure {pressure:.1} psi): limit forecast in {samples_to_limit:.0} samples\n   -> warning raised {:.0} psi BELOW the limit: genuinely early, using only values",
            200.0 - pressure
        ),
        Some((i, pressure, ValueAlarm::LevelExceeded { .. })) => {
            println!("   level alarm at sample {i} ({pressure:.1} psi)")
        }
        None => println!("   no alarm (unexpected for a rising signal)"),
    }

    // --- 2. Golden batch -----------------------------------------------------
    println!("\n2. batch process vs golden batch (tolerance 0.15, time slack 3)");
    let golden: Vec<f64> = (0..200)
        .map(|i| {
            let t = i as f64 / 200.0;
            t * 2.0 + 0.3 * (t * 12.0).sin()
        })
        .collect();
    let mut ok_run = GoldenBatchMonitor::new(golden.clone(), 0.15, 3, 3);
    let healthy_alarms = golden
        .iter()
        .enumerate()
        .filter(|&(i, _)| ok_run.push(golden[(i + 2).min(199)]))
        .count();
    println!("   healthy run (2-step time shift): {healthy_alarms} alarms");
    let mut bad_run = GoldenBatchMonitor::new(golden.clone(), 0.15, 3, 3);
    let mut bad_alarm_at = None;
    for (i, &v) in golden.iter().enumerate() {
        // The batch stalls at sample 80: value freezes while the golden
        // trajectory keeps rising.
        let observed = if i < 80 { v } else { golden[80] };
        if bad_run.push(observed) {
            bad_alarm_at = Some(i);
            break;
        }
    }
    println!(
        "   stalled run: alarm at sample {} (stall began at 80) — caught {} samples in",
        bad_alarm_at.unwrap_or(usize::MAX),
        bad_alarm_at.map_or(0, |i| i - 80)
    );

    // --- 3. Dustbathing frequency ---------------------------------------------
    println!("\n3. dustbathing frequency (cull ordinance: > 40 bouts/day)");
    let mut freq = FrequencyMonitor::new();
    for (day, bouts) in [10usize, 25].into_iter().enumerate() {
        for _ in 0..bouts {
            freq.record_event();
        }
        freq.end_period();
        println!(
            "   day {}: {} bouts; forecast exceeds 40? {}",
            day + 1,
            bouts,
            freq.forecast_exceeds(40)
        );
    }
    println!(
        "   trend 10 -> 25 forecasts 40 next day: early intervention {} (paper's example)",
        if freq.forecast_exceeds(39) {
            "warranted"
        } else {
            "not warranted"
        }
    );
    println!("\nNone of these used the *shape* of a pattern prefix — which is exactly why");
    println!("they escape the prefix/inclusion/homophone/normalization traps of Sections 3-4.");
}
