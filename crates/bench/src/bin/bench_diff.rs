//! `bench_diff` — compare fresh `BENCH_*.json` reports against the
//! committed baselines in `crates/bench/baselines/`.
//!
//! Every numeric leaf of each report is flattened to a dotted path
//! (`results[1].ns_per_window`) and compared against the same path in the
//! baseline. Direction matters: `*_ns`/`*_bytes` metrics regress upward,
//! `speedup*`/`*accuracy*` metrics regress downward; paths whose direction
//! is unknown are shown but never counted as regressions. String leaves
//! (algorithm names, normalization modes) are compared too — a mismatch
//! means the reports describe different configurations, so the numeric diff
//! for that file is labelled as layout drift rather than a regression.
//!
//! The tool is **warn-only by default** (exit 0 even with regressions):
//! CI machines are noisy and quick-mode runs use smaller inputs than the
//! committed full runs. Pass `--deny` to turn regressions beyond the
//! threshold into a non-zero exit for local A/B runs on quiet hardware.
//!
//! Usage:
//!   bench_diff [--current-dir DIR] [--baseline-dir DIR]
//!              [--threshold PCT] [--deny] [--all]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use etsc_bench::json::{self, Json};
use etsc_bench::render_table;

/// The reports with committed baselines. `BENCH_net.json` is produced by
/// `bench_net` but intentionally has no baseline: its numbers are dominated
/// by loopback TCP scheduling and are too noisy to diff.
const REPORTS: [&str; 4] = [
    "BENCH_nn.json",
    "BENCH_persist.json",
    "BENCH_serve.json",
    "BENCH_sessions.json",
];

/// Which way a metric gets worse, inferred from its leaf name.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Latency / size: a higher value is a regression.
    HigherIsWorse,
    /// Throughput / quality: a lower value is a regression.
    LowerIsWorse,
    /// Configuration echoes (`n`, `threads`, …): report, never judge.
    Unjudged,
}

fn direction(path: &str) -> Direction {
    // Only the leaf name matters, not the array indices leading to it.
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let higher_is_worse = ["_ns", "_bytes", "_ms"]
        .iter()
        .any(|suffix| leaf.ends_with(suffix))
        || leaf.starts_with("ns_per_");
    let lower_is_worse = leaf.starts_with("speedup")
        || leaf.contains("accuracy")
        || leaf.contains("throughput")
        || leaf.ends_with("_per_sec");
    match (higher_is_worse, lower_is_worse) {
        (true, false) => Direction::HigherIsWorse,
        (false, true) => Direction::LowerIsWorse,
        _ => Direction::Unjudged,
    }
}

struct Args {
    current_dir: PathBuf,
    baseline_dir: PathBuf,
    /// Percent change below which a judged metric is reported as noise.
    threshold: f64,
    /// Exit non-zero if any judged metric regresses beyond the threshold.
    deny: bool,
    /// Show every metric, not just the ones beyond the threshold.
    all: bool,
}

fn parse_args() -> Result<Args, String> {
    // Baselines live next to this crate's sources, wherever cargo runs us.
    let mut args = Args {
        current_dir: PathBuf::from("."),
        baseline_dir: Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines"),
        threshold: 10.0,
        deny: false,
        all: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--current-dir" => args.current_dir = PathBuf::from(value("--current-dir")?),
            "--baseline-dir" => args.baseline_dir = PathBuf::from(value("--baseline-dir")?),
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--deny" => args.deny = true,
            "--all" => args.all = true,
            "--help" | "-h" => {
                println!(
                    "bench_diff: compare BENCH_*.json against committed baselines\n\n\
                     \x20 --current-dir DIR   where fresh reports live (default: .)\n\
                     \x20 --baseline-dir DIR  committed baselines (default: crates/bench/baselines)\n\
                     \x20 --threshold PCT     report changes beyond this (default: 10)\n\
                     \x20 --deny              exit 1 on regressions (default: warn only)\n\
                     \x20 --all               show every metric, not just changed ones"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(args)
}

struct FileDiff {
    rows: Vec<Vec<String>>,
    regressions: usize,
    layout_drift: bool,
    skipped: Option<String>,
}

fn load(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn fmt_val(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

fn diff_file(name: &str, args: &Args) -> FileDiff {
    let mut out = FileDiff {
        rows: Vec::new(),
        regressions: 0,
        layout_drift: false,
        skipped: None,
    };
    let current_path = args.current_dir.join(name);
    if !current_path.exists() {
        out.skipped = Some(format!(
            "no fresh report at {} (run the bench first)",
            current_path.display()
        ));
        return out;
    }
    let (baseline, current) = match (load(&args.baseline_dir.join(name)), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            out.skipped = Some(e);
            return out;
        }
    };

    // Config drift: any string leaf that differs (or exists on one side
    // only) means the two reports are not measuring the same thing.
    let base_strs = baseline.string_leaves();
    let cur_strs = current.string_leaves();
    out.layout_drift = base_strs != cur_strs;

    let base_nums = baseline.numeric_leaves();
    let cur_nums = current.numeric_leaves();
    for (path, base) in &base_nums {
        let Some((_, cur)) = cur_nums.iter().find(|(p, _)| p == path) else {
            out.rows.push(vec![
                path.clone(),
                fmt_val(*base),
                "—".into(),
                "gone".into(),
                String::new(),
            ]);
            continue;
        };
        let delta_pct = if *base == 0.0 {
            if *cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base.abs() * 100.0
        };
        let dir = direction(path);
        let regressed = match dir {
            Direction::HigherIsWorse => delta_pct > args.threshold,
            Direction::LowerIsWorse => delta_pct < -args.threshold,
            Direction::Unjudged => false,
        };
        let changed = delta_pct.abs() > args.threshold;
        if regressed && !out.layout_drift {
            out.regressions += 1;
        }
        if args.all || changed {
            let verdict = match (regressed, dir) {
                (true, _) => "REGRESSED",
                (false, Direction::Unjudged) if changed => "changed",
                (false, _) if changed => "improved",
                _ => "ok",
            };
            out.rows.push(vec![
                path.clone(),
                fmt_val(*base),
                fmt_val(*cur),
                format!("{delta_pct:+.1}%"),
                verdict.to_string(),
            ]);
        }
    }
    for (path, cur) in &cur_nums {
        if !base_nums.iter().any(|(p, _)| p == path) {
            out.rows.push(vec![
                path.clone(),
                "—".into(),
                fmt_val(*cur),
                "new".into(),
                String::new(),
            ]);
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut total_regressions = 0;
    for name in REPORTS {
        let diff = diff_file(name, &args);
        println!("== {name} ==");
        if let Some(why) = &diff.skipped {
            println!("  skipped: {why}\n");
            continue;
        }
        if diff.layout_drift {
            println!(
                "  note: report configuration differs from the baseline \
                 (quick run vs full run?) — changes below are not counted \
                 as regressions"
            );
        }
        if diff.rows.is_empty() {
            println!("  all metrics within ±{:.0}% of baseline", args.threshold);
        } else {
            let table = render_table(
                &["metric", "baseline", "current", "delta", "verdict"],
                &diff.rows,
            );
            for line in table.lines() {
                println!("  {line}");
            }
        }
        total_regressions += diff.regressions;
        println!();
    }

    if total_regressions > 0 {
        println!(
            "bench_diff: {total_regressions} metric(s) regressed beyond \
             ±{:.0}%",
            args.threshold
        );
        if args.deny {
            return ExitCode::FAILURE;
        }
        println!("(warn-only: not failing the build — pass --deny to enforce)");
    } else {
        println!("bench_diff: no regressions beyond ±{:.0}%", args.threshold);
    }
    ExitCode::SUCCESS
}
