//! **Fig 2** — "A snippet of the phrase 'It was said that Cathy's dogmatic
//! catechism dogmatized catholic doggery'. This short sentence will allow
//! any ETSC method to make confident and early predictions, all of which
//! will later have to be recanted."
//!
//! We train an early classifier on UCR-format *cat*/*dog* utterances, then
//! deploy it (honest per-prefix normalization) on:
//!
//! 1. the Fig 2 sentence — which contains **no** standalone *cat* or *dog*
//!    but six words beginning with them → expect ~6 false positives;
//! 2. a control sentence that *does* contain the target words → the same
//!    classifier detects them, proving the false positives are not a broken
//!    detector but the prefix problem itself.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig2_prefix_sentence`

use etsc_datasets::words::{sentence_stream, word_dataset, WordConfig, FIG2_SENTENCE};
use etsc_early::template::TemplateMatcher;
use etsc_stream::{score_alarms, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm};

fn main() {
    let targets = ["cat", "dog"];
    let cfg = WordConfig::default();
    // UCR-format training data: 72-sample utterances (nominal cat/dog length).
    let mut train = word_dataset(&targets, 25, 72, &cfg, 11);
    train.znormalize();

    // The deployed early classifier: open-world template matching with a
    // data-calibrated threshold, committing after at least half a word.
    let thr = TemplateMatcher::calibrate_threshold(&train, 0.90);
    let clf = TemplateMatcher::from_centroids(&train, thr * 0.9, 42);

    let run = |sentence: &[&str], seed: u64| {
        let stream = sentence_stream(sentence, &targets, &cfg, seed);
        let mut monitor = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 2,
                norm: StreamNorm::PerPrefix,
                refractory: 60,
            },
        );
        let alarms = monitor.run(&stream.data);
        let score = score_alarms(
            &alarms,
            &stream.events,
            stream.len(),
            &ScoringConfig {
                tolerance: 40,
                match_labels: true,
            },
        );
        (stream, alarms, score)
    };

    println!("Fig 2: streaming the dogmatic-catechism sentence past a cat/dog classifier\n");
    let (stream, alarms, score) = run(FIG2_SENTENCE, 13);
    println!("sentence: {}", FIG2_SENTENCE.join(" "));
    println!(
        "stream length {} samples; TRUE cat/dog events: {}",
        stream.len(),
        stream.events.len()
    );
    for a in &alarms {
        println!(
            "  alarm at t={:>5}  class={}  confidence={:.2}",
            a.time, targets[a.label], a.confidence
        );
    }
    println!(
        "=> {} alarms, ALL false positives ({} TP, {} FP) — the paper predicts six\n",
        alarms.len(),
        score.true_positives,
        score.false_positives
    );

    let control = ["the", "cat", "sat", "near", "the", "dog", "quietly"];
    let (cstream, calarms, cscore) = run(&control, 17);
    println!("control: {}", control.join(" "));
    println!(
        "TRUE events: {}; alarms: {} ({} TP, {} FP)",
        cstream.events.len(),
        calarms.len(),
        cscore.true_positives,
        cscore.false_positives
    );
    println!(
        "recall on real targets: {:.0}% — the detector works; the *problem* is the prefixes.",
        cscore.recall() * 100.0
    );
}
