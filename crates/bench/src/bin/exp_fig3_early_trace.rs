//! **Fig 3** — the two standard framings of early classification, traced on
//! a GunPoint exemplar.
//!
//! (left)  TEASER: an internal model (slave + master + consistency counter)
//!         decides when it has seen enough — the paper's trace commits after
//!         53 of 150 points.
//! (right) Probability-threshold: the classifier streams class
//!         probabilities and commits when one crosses a user threshold
//!         (0.8 in the paper's figure, committing at 36 points).
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig3_early_trace`

use etsc_bench::gunpoint_splits;
use etsc_classifiers::centroid::NearestCentroid;
use etsc_early::metrics::{classify_stream, PrefixPolicy};
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_early::threshold::ProbThreshold;

fn main() {
    let (mut train, mut test) = gunpoint_splits(3);
    train.znormalize();
    test.znormalize();
    let exemplar = test.series(0);
    let actual = test.label(0);
    let class_name = |c: usize| if c == 0 { "Gun" } else { "Point" };

    println!("Fig 3 (left): TEASER internal-trigger trace on one GunPoint exemplar\n");
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    println!(
        "snapshots at lengths {:?}, consistency v = {}",
        teaser.snapshot_lengths(),
        teaser.consistency()
    );
    let (pred, len, committed) = classify_stream(&teaser, exemplar, PrefixPolicy::Raw);
    println!(
        "exemplar of class {}: TEASER predicts {} after {} of {} points ({}, {:.1}% of the data)\n",
        class_name(actual),
        class_name(pred),
        len,
        exemplar.len(),
        if committed {
            "early commit"
        } else {
            "full-length fallback"
        },
        100.0 * len as f64 / exemplar.len() as f64
    );

    println!("Fig 3 (right): probability-threshold trace (threshold 0.8)\n");
    // A sharp softmax (β = 25) gives the probability trace the saturating
    // shape of the paper's figure; β is a display calibration, the crossing
    // point is what matters.
    let prob = ProbThreshold::new(
        NearestCentroid::fit_with_beta(&train, 25.0),
        0.8,
        train.series_len(),
        5,
    );
    let trace = prob.probability_trace(exemplar);
    println!("len  predicted  P(predicted)");
    for &(l, label, p) in trace.iter().step_by(10) {
        let bar = "#".repeat((p * 30.0) as usize);
        println!("{l:>3}  {:<9}  {p:.3} {bar}", class_name(label));
    }
    let (pred, len, _) = classify_stream(&prob, exemplar, PrefixPolicy::Oracle);
    println!(
        "\nthreshold crossing: predicts {} after seeing {} points ({:.1}% of the data)",
        class_name(pred),
        len,
        100.0 * len as f64 / exemplar.len() as f64
    );
    println!("(the paper's figure: TEASER at 53 points, threshold trigger at 36 points)");
}
