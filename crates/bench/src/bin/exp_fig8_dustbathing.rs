//! **Fig 8** — the dustbathing study: the best candidate the authors found
//! for meaningful early classification.
//!
//! "(left) A template for dustbathing and its 500 nearest neighbors.
//! (center) A truncated version of the template and its 500 nearest
//! neighbors." Any subsequence within 2.3 of the full template is
//! essentially guaranteed dustbathing; within 1.7 of the truncated template
//! the accuracy "is not statistically significantly different".
//!
//! We regenerate both measurements on synthetic chicken accelerometry:
//! sweep the threshold for the full (120-pt) and truncated (70-pt)
//! templates, report precision/recall of each, and check the headline claim
//! that the truncated template matches the full one.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig8_dustbathing`

use etsc_bench::render_table;
use etsc_core::nn::{select_top_k, select_within, BatchProfile};
use etsc_datasets::chicken::{chicken_stream, dustbathing_template, ChickenConfig};

fn main() {
    let cfg = ChickenConfig::default();
    let stream = chicken_stream(2_000_000, &cfg, 81);
    println!(
        "Fig 8: dustbathing template matching over {} samples with {} annotated bouts\n",
        stream.len(),
        stream.events.len()
    );

    let full = dustbathing_template(cfg.bout_len); // 120 points
    let truncated: Vec<f64> = full[..(cfg.bout_len * 7 / 12)].to_vec(); // ~70 points

    // One search engine over the recording; one distance profile per
    // template, reused across the whole threshold sweep and the top-500
    // clusters below (previously every threshold re-scanned all 2M points).
    let engine = BatchProfile::new(&stream.data);
    let profiles = engine.profiles(&[&full, &truncated]);
    let profile_of = |template: &[f64]| -> &[f64] {
        if template.len() == full.len() {
            &profiles[0]
        } else {
            &profiles[1]
        }
    };

    let evaluate = |template: &[f64], threshold: f64| -> (usize, usize, usize) {
        let matches = select_within(profile_of(template), template.len(), threshold);
        let mut claimed = vec![false; stream.events.len()];
        let mut tp = 0;
        let mut fp = 0;
        for m in &matches {
            let center = m.start + template.len() / 2;
            match stream
                .events
                .iter()
                .position(|e| e.contains_with_tolerance(center, cfg.bout_len / 2))
            {
                Some(i) if !claimed[i] => {
                    claimed[i] = true;
                    tp += 1;
                }
                Some(_) => {} // duplicate within one bout
                None => fp += 1,
            }
        }
        let fneg = claimed.iter().filter(|&&c| !c).count();
        (tp, fp, fneg)
    };

    let mut rows = Vec::new();
    for (name, template) in [
        ("full (120 pts)", &full),
        ("truncated (70 pts)", &truncated),
    ] {
        for threshold in [1.2, 1.7, 2.3, 3.0, 4.0] {
            let (tp, fp, fneg) = evaluate(template, threshold);
            let precision = tp as f64 / (tp + fp).max(1) as f64;
            let recall = tp as f64 / (tp + fneg).max(1) as f64;
            rows.push(vec![
                name.to_string(),
                format!("{threshold:.1}"),
                tp.to_string(),
                fp.to_string(),
                fneg.to_string(),
                format!("{:.1}%", precision * 100.0),
                format!("{:.1}%", recall * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "template",
                "thresh",
                "TP",
                "FP",
                "FN",
                "precision",
                "recall"
            ],
            &rows
        )
    );

    // The paper's 500-nearest-neighbor framing: how many of the top-500
    // matches of each template are genuine bouts?
    println!("top-500 nearest neighbors (the paper's Fig 8 clusters):");
    for (name, template) in [("full", &full), ("truncated", &truncated)] {
        let k = 500.min(stream.events.len());
        let neighbors = select_top_k(profile_of(template), template.len(), k);
        let genuine = neighbors
            .iter()
            .filter(|m| {
                let center = m.start + template.len() / 2;
                stream
                    .events
                    .iter()
                    .any(|e| e.contains_with_tolerance(center, cfg.bout_len / 2))
            })
            .count();
        let worst = neighbors.last().map_or(0.0, |m| m.dist);
        println!(
            "  {name:>9}: {genuine}/{} of the top-{k} neighbors are true dustbathing (k-th distance {worst:.2})",
            neighbors.len()
        );
    }
    println!("\nThe truncated template detects the behavior as reliably as the full one —");
    println!("which, as the paper notes, is template calibration, not a learned ETSC model.");
}
