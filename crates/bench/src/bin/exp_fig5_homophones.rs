//! **Fig 5** — time series homophones exist.
//!
//! "We randomly selected two examples from the GunPoint dataset, and for
//! each of them, we searched for its three nearest neighbors … within three
//! datasets that do not have gestures [EOG, a smoothed random walk of length
//! 2^24, insect EPG]. Note that in every case, there is non-gesture data
//! that is much closer to one member of the target class, than the other
//! example from the target class."
//!
//! Default background length is 2^20 for runtime; pass `--full` for the
//! paper's 2^24-point random walk.
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_fig5_homophones [--full]`

use etsc_audit::homophone::homophone_audit;
use etsc_bench::render_table;
use etsc_datasets::eog::{eog_stream, EogConfig};
use etsc_datasets::epg::{epg_stream, EpgConfig};
use etsc_datasets::gunpoint::{self, GunPointConfig};
use etsc_datasets::random_walk::smoothed_random_walk;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let rw_len = if full { 1 << 24 } else { 1 << 20 };
    let bg_len = if full { 1 << 22 } else { 1 << 19 };

    // Real GunPoint actors vary far more than our clean defaults; crank the
    // behavioral jitter so within-class distances are honest.
    let gp_cfg = GunPointConfig {
        noise: 0.04,
        amplitude_jitter: 0.15,
        onset_jitter: 6.0,
        ..GunPointConfig::default()
    };
    let mut pool = gunpoint::generate(75, &gp_cfg, 5);
    pool.znormalize();
    // The paper's protocol: select TWO random exemplars of the target class;
    // the in-class reference is the distance between those two — not the
    // nearest neighbor over the whole archive.
    let test = pool.subset(&[3, 40]).expect("indices in range");
    let probes = [0usize, 1];

    println!("Fig 5: nearest neighbors of GunPoint exemplars in gesture-free data");
    println!(
        "backgrounds: EOG ({bg_len} pts), smoothed random walk ({rw_len} pts), EPG ({bg_len} pts)\n"
    );

    let eog = eog_stream(bg_len, &EogConfig::default(), 51);
    let rw = smoothed_random_walk(rw_len, 15, 52);
    let epg = epg_stream(bg_len, &EpgConfig::default(), 53);
    let backgrounds: Vec<(&str, &[f64])> = vec![
        ("EOG (eye)", &eog),
        ("Smoothed RW", &rw),
        ("EPG (insect)", &epg),
    ];

    let findings = homophone_audit(&test, &probes, &backgrounds);
    let mut rows = Vec::new();
    let mut homophones = 0;
    for f in &findings {
        if f.has_homophone() {
            homophones += 1;
        }
        rows.push(vec![
            format!(
                "probe {} ({})",
                f.probe_index,
                if test.label(f.probe_index) == 0 {
                    "Gun"
                } else {
                    "Point"
                }
            ),
            f.background.clone(),
            format!("{:.3}", f.in_class_nn_dist),
            format!("{:.3}", f.background_nn_dist),
            format!("{:.3}", f.ratio()),
            (if f.has_homophone() { "YES" } else { "no" }).to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "probe",
                "background",
                "in-class NN",
                "background NN",
                "ratio",
                "homophone?"
            ],
            &rows
        )
    );
    println!(
        "{homophones}/{} probe x background pairs have a gesture-free neighbor closer than the\n\
         probe's own class — each one is a guaranteed streaming false positive.\n",
        findings.len()
    );

    // The paper's figure clusters each probe with its 3 nearest background
    // neighbors; print those distances for the random walk. One engine
    // serves both probes (the statistics pass over 2^20..2^24 points runs
    // once, not once per probe).
    let rw_engine = etsc_core::nn::BatchProfile::new(&rw);
    for &p in &probes {
        let ns = rw_engine.top_k(test.series(p), 3);
        let ds: Vec<String> = ns.iter().map(|m| format!("{:.3}", m.dist)).collect();
        println!(
            "probe {p}: 3 nearest random-walk neighbors at distances [{}]",
            ds.join(", ")
        );
    }
}
