//! Machine-readable benchmark of the persistence subsystem (`etsc-persist`).
//!
//! For each built-in early-classification algorithm, measures
//!
//! * **model snapshot/restore**: `Persist::snapshot` and `Persist::restore`
//!   wall time plus the snapshot size in bytes, and
//! * **session checkpoint/resume**: for each [`SessionNorm`], a session is
//!   warmed on [`PREFIX`] samples, then `checkpoint_session` /
//!   `resume_session` are timed and the checkpoint size recorded —
//!   bytes-per-session is the number a shard-migration budget multiplies by
//!   the in-flight stream count.
//!
//! Writes `BENCH_persist.json` into the current directory.
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_persist [--quick]`
//! `--quick` lowers the repetition count for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use etsc_classifiers::centroid::NearestCentroid;
use etsc_classifiers::gaussian::CovarianceKind;
use etsc_core::UcrDataset;
use etsc_early::costaware::{CostAware, CostAwareConfig};
use etsc_early::ecdire::{Ecdire, EcdireConfig};
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::stopping_rule::{StoppingRule, StoppingRuleConfig};
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::threshold::ProbThreshold;
use etsc_early::{checkpoint_session, resume_session, EarlyClassifier, SessionNorm};
use etsc_persist::Persist;

/// Samples a session is warmed on before its checkpoint is measured.
const PREFIX: usize = 256;
/// Training exemplar length. Classes separate past the probed window so
/// sessions stay unlatched and checkpoints carry real accumulator state.
const TRAIN_LEN: usize = 320;
const SPLIT: usize = 288;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Same construction idea as `bench_sessions`: identical per-exemplar noise
/// across classes, separation only past `SPLIT` — so no session latches
/// inside the probed window.
fn train_set(n_per_class: usize) -> UcrDataset {
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..n_per_class {
            let level = if c == 0 { -2.0 } else { 2.0 };
            data.push(
                (0..TRAIN_LEN)
                    .map(|j| {
                        let noise = 0.08 * (((i * 31 + j * 17) % 13) as f64 - 6.0);
                        if j < SPLIT {
                            noise
                        } else {
                            level + noise
                        }
                    })
                    .collect::<Vec<f64>>(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

fn probe() -> Vec<f64> {
    (0..PREFIX)
        .map(|j| 0.07 * (((j * 23 + 5) % 17) as f64 - 8.0) + 0.3 * ((j as f64) * 0.05).sin())
        .collect()
}

struct SessionCost {
    norm: &'static str,
    state_bytes: usize,
    checkpoint_ns: f64,
    resume_ns: f64,
}

struct Row {
    algorithm: &'static str,
    model_bytes: usize,
    model_snapshot_ns: f64,
    model_restore_ns: f64,
    sessions: Vec<SessionCost>,
}

/// Measure one algorithm: model snapshot/restore plus per-norm session
/// checkpoint/resume at prefix [`PREFIX`].
fn bench_one<M: EarlyClassifier + Persist>(
    algorithm: &'static str,
    model: &M,
    probe: &[f64],
    reps: usize,
) -> Row {
    let mut snap_times = Vec::with_capacity(reps);
    let mut restore_times = Vec::with_capacity(reps);
    let mut bytes = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        bytes = model.snapshot();
        snap_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let restored = M::restore(&bytes).expect("snapshot restores");
        restore_times.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&restored);
    }
    let model_bytes = bytes.len();

    let mut sessions = Vec::new();
    for (norm, norm_name) in [
        (SessionNorm::Raw, "raw"),
        (SessionNorm::PerPrefix, "per-prefix"),
    ] {
        let mut session = model.session(norm);
        for &x in probe {
            session.push(x);
        }
        let mut ckpt_times = Vec::with_capacity(reps);
        let mut resume_times = Vec::with_capacity(reps);
        let mut state = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            state = checkpoint_session(session.as_ref()).expect("built-in sessions checkpoint");
            ckpt_times.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let resumed = resume_session(model, norm, &state).expect("checkpoint resumes");
            resume_times.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(resumed.len());
        }
        sessions.push(SessionCost {
            norm: norm_name,
            state_bytes: state.len(),
            checkpoint_ns: median(&mut ckpt_times) * 1e9,
            resume_ns: median(&mut resume_times) * 1e9,
        });
    }

    let row = Row {
        algorithm,
        model_bytes,
        model_snapshot_ns: median(&mut snap_times) * 1e9,
        model_restore_ns: median(&mut restore_times) * 1e9,
        sessions,
    };
    println!(
        "  {algorithm:<24} model {:>8} B  snap {:>9.0} ns  restore {:>9.0} ns   session raw {:>7} B ckpt {:>8.0} ns | per-prefix {:>7} B ckpt {:>8.0} ns",
        row.model_bytes,
        row.model_snapshot_ns,
        row.model_restore_ns,
        row.sessions[0].state_bytes,
        row.sessions[0].checkpoint_ns,
        row.sessions[1].state_bytes,
        row.sessions[1].checkpoint_ns,
    );
    row
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 9 };
    println!("bench_persist: session prefix {PREFIX}, reps = {reps} (median)");

    let train = train_set(6);
    let probe = probe();
    let mut rows = Vec::new();

    let ects = Ects::fit(&train, &EctsConfig::default());
    rows.push(bench_one("ects", &ects, &probe, reps));

    let edsc = Edsc::fit(
        &train,
        &EdscConfig {
            lengths: vec![32, 48],
            stride: 16,
            method: ThresholdMethod::Kde { precision: 0.9 },
            min_precision: 0.7,
            max_features_per_class: 8,
        },
    );
    rows.push(bench_one("edsc", &edsc, &probe, reps));

    let rc_diag = RelClass::fit(
        &train,
        &RelClassConfig {
            tau: 0.95,
            ..Default::default()
        },
    );
    rows.push(bench_one("relclass-diag", &rc_diag, &probe, reps));

    let rc_full = RelClass::fit(
        &train,
        &RelClassConfig {
            tau: 0.95,
            covariance: CovarianceKind::Full,
            ..Default::default()
        },
    );
    rows.push(bench_one("relclass-full", &rc_full, &probe, reps));

    let teaser = Teaser::fit(
        &train,
        &TeaserConfig {
            n_snapshots: 8,
            ..TeaserConfig::fast()
        },
    );
    rows.push(bench_one("teaser-centroid", &teaser, &probe, reps));

    let template = TemplateMatcher::from_centroids(&train, 0.05, 32);
    rows.push(bench_one("template", &template, &probe, reps));

    let prob = ProbThreshold::new(NearestCentroid::fit(&train), 0.9999, TRAIN_LEN, 2);
    rows.push(bench_one("prob-threshold", &prob, &probe, reps));

    let ecdire = Ecdire::fit(
        &train,
        &EcdireConfig {
            n_checkpoints: 8,
            ..EcdireConfig::default()
        },
    );
    rows.push(bench_one("ecdire", &ecdire, &probe, reps));

    let rule = StoppingRule::fit(
        &train,
        &StoppingRuleConfig {
            n_checkpoints: 8,
            ..Default::default()
        },
    );
    rows.push(bench_one("stopping-rule", &rule, &probe, reps));

    let cost = CostAware::fit(
        &train,
        &CostAwareConfig {
            n_checkpoints: 8,
            ..Default::default()
        },
    );
    rows.push(bench_one("cost-aware", &cost, &probe, reps));

    // Emit BENCH_persist.json (hand-rolled: the workspace is offline, no
    // serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"session_prefix\": {PREFIX},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let sessions: Vec<String> = r
            .sessions
            .iter()
            .map(|s| {
                format!(
                    "{{\"norm\": \"{}\", \"state_bytes\": {}, \"checkpoint_ns\": {:.0}, \"resume_ns\": {:.0}}}",
                    s.norm, s.state_bytes, s.checkpoint_ns, s.resume_ns
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"model_bytes\": {}, \"model_snapshot_ns\": {:.0}, \
             \"model_restore_ns\": {:.0}, \"sessions\": [{}]}}{}",
            r.algorithm,
            r.model_bytes,
            r.model_snapshot_ns,
            r.model_restore_ns,
            sessions.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_persist.json", &json).expect("write BENCH_persist.json");
    println!("\nwrote BENCH_persist.json");
}
