//! **Section 3** — the three confusability problems, on the paper's own
//! worked examples:
//!
//! * 3.2 *inclusion*: detect {lightweight, paperweight}; stream "In the
//!   morning light, I could see that I got a papercut from the paper that
//!   the light was wrapped in" → false positives from the contained atoms.
//! * 3.3 *homophones*: detect {flower, wither}; stream the Leviticus
//!   sentence with *flour* and *whither* → false positives from perfect
//!   homophones (no prefix or inclusion relation at all).
//! * 3.4 *all at once*: detect {gun, point}; stream the Amy Gunn sentence
//!   → "a plethora of false positives".
//!
//! Run: `cargo run --release -p etsc-bench --bin exp_section3_confusers`

use etsc_datasets::words::{sentence_stream, word_dataset, WordConfig, AMY_GUNN_SENTENCE};
use etsc_early::template::TemplateMatcher;
use etsc_stream::{score_alarms, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm};

fn deploy(
    targets: &[&str],
    sentence: &[&str],
    seed: u64,
    threshold_scale: f64,
    min_prefix_frac: f64,
) -> (usize, usize, usize, Vec<(usize, usize)>) {
    let cfg = WordConfig::default();
    // Train on UCR-format renditions resampled to the mean nominal length.
    let target_len = targets
        .iter()
        .map(|w| etsc_datasets::words::nominal_len(w, &cfg))
        .sum::<usize>()
        / targets.len();
    let mut train = word_dataset(targets, 25, target_len, &cfg, seed);
    train.znormalize();
    let thr = TemplateMatcher::calibrate_threshold(&train, 0.90);
    let min_prefix = ((target_len as f64 * min_prefix_frac) as usize).max(8);
    let clf = TemplateMatcher::from_centroids(&train, thr * threshold_scale, min_prefix);

    let stream = sentence_stream(sentence, targets, &cfg, seed ^ 0xABCD);
    let mut monitor = StreamMonitor::new(
        &clf,
        StreamMonitorConfig {
            anchor_stride: 2,
            norm: StreamNorm::PerPrefix,
            refractory: 60,
        },
    );
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 40,
            match_labels: true,
        },
    );
    (
        score.true_positives,
        score.false_positives,
        stream.events.len(),
        alarms.iter().map(|a| (a.time, a.label)).collect(),
    )
}

fn main() {
    println!("Section 3: prefix, inclusion, and homophone confusers on the paper's sentences\n");

    // 3.2 — inclusion.
    let inclusion_sentence = [
        "in", "the", "morning", "light", "i", "could", "see", "that", "i", "got", "a", "papercut",
        "from", "the", "paper", "that", "the", "light", "was", "wrapped", "in",
    ];
    // Early classification means committing after ~25% of the target — which
    // is precisely why the contained atom "light" suffices to fire.
    let (tp, fp, events, _) = deploy(
        &["lightweight", "paperweight"],
        &inclusion_sentence,
        41,
        1.0,
        0.25,
    );
    println!("3.2 inclusion: targets {{lightweight, paperweight}}");
    println!("    sentence: {}", inclusion_sentence.join(" "));
    println!(
        "    true events {events}, alarms: {tp} TP / {fp} FP   (paper: two FPs per class from light/paper)\n"
    );

    // 3.3 — homophones. The lexicon maps flour→flower and whither→wither, so
    // these words are acoustically identical to the targets without any
    // prefix or inclusion relation in the orthography.
    let leviticus = [
        "whither", "anyone", "presents", "a", "grain", "offering", "to", "the", "lord", "his",
        "offering", "shall", "be", "of", "fine", "flour",
    ];
    let (tp, fp, events, alarms) = deploy(&["flower", "wither"], &leviticus, 43, 0.9, 0.6);
    println!("3.3 homophones: targets {{flower, wither}}");
    println!("    sentence: {}", leviticus.join(" "));
    println!(
        "    true events {events}, alarms: {tp} TP / {fp} FP   (paper: flour and whither both fire)"
    );
    for (t, label) in &alarms {
        println!(
            "      alarm at t={t} class={}",
            ["flower", "wither"][*label]
        );
    }

    // 3.4 — everything at once.
    // Short targets vary more per rendition; accept the calibrated
    // threshold as-is and commit after half a word.
    let (tp, fp, events, _) = deploy(&["gun", "point"], AMY_GUNN_SENTENCE, 47, 1.1, 0.5);
    println!("\n3.4 the Amy Gunn sentence: targets {{gun, point}}");
    println!("    sentence: {}", AMY_GUNN_SENTENCE.join(" "));
    println!("    true events {events} (gunn/pointe are homophones, not annotated events),");
    println!("    alarms: {tp} TP / {fp} FP   (paper: 'a plethora of false positives')");
}
