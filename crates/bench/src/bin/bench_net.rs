//! Machine-readable benchmark of the cross-node serving layer (`etsc-net`).
//!
//! Spawns real [`Node`]s on loopback TCP inside this process and measures
//! the three costs a deployment pays for putting a socket between driver
//! and runtime:
//!
//! * **request RTT**: p50/p99 round-trip of the smallest request (`Ping`) —
//!   the floor every remote call sits on (framing + checksum + syscalls);
//! * **ingest throughput vs batch size**: records per second through
//!   `NetClient::ingest` + periodic drains, over a range of batch sizes —
//!   how quickly per-record wire cost amortizes away; and
//! * **migration time per stream**: wall time of a cluster-routed two-phase
//!   cross-node migration (export → wire → import), divided by streams
//!   moved, after the streams have accumulated live anchor state; and
//! * **retry overhead on the happy path**: the same ingest workload through
//!   a fail-fast untagged client ([`RetryPolicy::none`]) and through the
//!   default retrying, idempotency-tagged client. With no faults injected
//!   the retry layer should cost almost nothing — the run asserts the
//!   median slowdown stays under 5% and that the retry/duplicate counters
//!   (client-side [`RetryStats`](etsc_net::RetryStats), node-side
//!   `etsc_serve_duplicate_batches_total` from the Prometheus text) all
//!   read zero.
//!
//! Writes `BENCH_net.json` into the current directory.
//!
//! Run: `cargo run --release -p etsc-bench --bin bench_net [--quick]`
//! `--quick` shrinks every dimension for CI smoke runs.
//!
//! **Caveats — read before citing a number.** Client and node share one
//! machine and one kernel: loopback RTT has no propagation delay, no NIC,
//! and no congestion, so it is a *floor*, not a forecast; ingest throughput
//! divides the same cores between the client thread, the accept loop, and
//! the shard workers, so it understates what distinct machines would do;
//! and migration time excludes the routing-table propagation a real
//! deployment needs. Numbers are only meaningful relative to each other on
//! the same machine.

use std::fmt::Write as _;
use std::time::Instant;

use etsc_classifiers::centroid::NearestCentroid;
use etsc_core::UcrDataset;
use etsc_early::threshold::ProbThreshold;
use etsc_net::{
    ClientConfig, Cluster, Endpoint, Listener, NetClient, Node, NodeConfig, RetryPolicy,
};
use etsc_serve::{Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

/// Training exemplar length — also each monitor's anchor horizon.
const TRAIN_LEN: usize = 128;
/// Anchor stride: bounds live anchors per stream at TRAIN_LEN / stride.
const STRIDE: usize = 16;
/// Batches between drains on the throughput runs.
const CYCLE: usize = 32;

type Model = ProbThreshold<NearestCentroid>;

fn train_set() -> UcrDataset {
    let data: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            let level = if i % 2 == 0 { -2.0 } else { 2.0 };
            (0..TRAIN_LEN)
                .map(|j| level + 0.08 * (((i * 31 + j * 17) % 13) as f64 - 6.0))
                .collect()
        })
        .collect();
    UcrDataset::new(data, (0..8).map(|i| i % 2).collect()).unwrap()
}

/// Background traffic: noise with a slow drift, rarely decisive.
fn sample(k: usize, t: usize) -> f64 {
    0.15 * (((t * 23 + k * 7) % 17) as f64 - 8.0) + ((t as f64) * 0.013).sin()
}

fn runtime_cfg(shards: usize, queue: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        queue_capacity: queue,
        monitor: StreamMonitorConfig {
            anchor_stride: STRIDE,
            norm: StreamNorm::Raw,
            refractory: 200,
        },
        model_name: "net-bench".to_string(),
        ..RuntimeConfig::default()
    }
}

fn bind_loopback() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let endpoint = listener.local_endpoint().expect("local endpoint");
    (listener, endpoint)
}

/// Run `body` against a client connected to a freshly served node.
fn with_node<R>(model: &Model, queue: usize, body: impl FnOnce(&mut NetClient) -> R) -> R {
    with_node_cfg(model, queue, ClientConfig::default(), body)
}

/// [`with_node`] with an explicit client configuration.
fn with_node_cfg<R>(
    model: &Model,
    queue: usize,
    cfg: ClientConfig,
    body: impl FnOnce(&mut NetClient) -> R,
) -> R {
    let node = Node::new(
        Runtime::new(model, runtime_cfg(2, queue)).expect("valid bench config"),
        NodeConfig::default(),
    );
    let (listener, endpoint) = bind_loopback();
    std::thread::scope(|s| {
        let server = s.spawn(|| node.serve(listener));
        let mut client = NetClient::connect_with(&endpoint, cfg).expect("connect");
        let out = body(&mut client);
        node.stop();
        server.join().expect("join").expect("serve");
        out
    })
}

struct RttRow {
    pings: usize,
    p50_ns: f64,
    p99_ns: f64,
}

fn bench_rtt(model: &Model, pings: usize) -> RttRow {
    with_node(model, 1024, |client| {
        for t in 0..64 {
            client.ping(t).expect("warmup ping");
        }
        let mut times = Vec::with_capacity(pings);
        for t in 0..pings {
            let t0 = Instant::now();
            client.ping(t as u64).expect("ping");
            times.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(f64::total_cmp);
        let pick =
            |q: f64| times[((times.len() as f64 * q).ceil() as usize - 1).min(times.len() - 1)];
        RttRow {
            pings,
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
        }
    })
}

struct IngestRow {
    batch_size: usize,
    records: usize,
    records_per_sec: f64,
    alarms: u64,
}

fn bench_ingest(model: &Model, batch_size: usize, batches: usize) -> IngestRow {
    let streams = 64usize;
    with_node(model, batch_size * 2 + 64, |client| {
        let mut batch = Vec::with_capacity(batch_size);
        let mut alarms = 0u64;
        let t0 = Instant::now();
        for t in 0..batches {
            batch.clear();
            for i in 0..batch_size {
                let k = (t * batch_size + i) % streams;
                batch.push(Record::new(k as u64, sample(k, t)));
            }
            client.ingest(&batch).expect("ingest");
            if (t + 1) % CYCLE == 0 {
                alarms += client.drain().expect("drain").len() as u64;
            }
        }
        alarms += client.drain().expect("drain").len() as u64;
        let elapsed = t0.elapsed().as_secs_f64();
        let records = batch_size * batches;
        IngestRow {
            batch_size,
            records,
            records_per_sec: records as f64 / elapsed,
            alarms,
        }
    })
}

struct RetryOverheadRow {
    batch_size: usize,
    records_per_run: usize,
    runs: usize,
    baseline_records_per_sec: f64,
    retry_records_per_sec: f64,
    overhead_pct: f64,
}

/// One timed happy-path ingest run under `cfg`; returns records/second.
///
/// Asserts afterwards that the run really was a happy path: the client
/// retried nothing, and the node's Prometheus text reports zero batches
/// absorbed as retry duplicates.
fn retry_run(model: &Model, cfg: ClientConfig, batch_size: usize, batches: usize) -> f64 {
    let streams = 64usize;
    with_node_cfg(model, batch_size * 2 + 64, cfg, |client| {
        let mut batch = Vec::with_capacity(batch_size);
        let t0 = Instant::now();
        for t in 0..batches {
            batch.clear();
            for i in 0..batch_size {
                let k = (t * batch_size + i) % streams;
                batch.push(Record::new(k as u64, sample(k, t)));
            }
            client.ingest(&batch).expect("ingest");
            if (t + 1) % CYCLE == 0 {
                client.drain().expect("drain");
            }
        }
        client.drain().expect("drain");
        let elapsed = t0.elapsed().as_secs_f64();

        let stats = client.retry_stats();
        assert_eq!(
            (
                stats.retries,
                stats.reconnects,
                stats.duplicate_acks,
                stats.giveups
            ),
            (0, 0, 0, 0),
            "happy-path run must not exercise the retry machinery"
        );
        let prom = client.stats_prometheus().expect("stats");
        assert!(
            prom.contains("etsc_serve_duplicate_batches_total 0"),
            "node must not have absorbed any duplicate batches on the happy path"
        );

        (batch_size * batches) as f64 / elapsed
    })
}

fn bench_retry_overhead(
    model: &Model,
    batch_size: usize,
    batches: usize,
    runs: usize,
) -> RetryOverheadRow {
    // Fail-fast untagged client: the pre-retry wire behavior.
    let baseline_cfg = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    // Default retry schedule plus an idempotency tag, so every ingest pays
    // the tag's two extra u64s and the ack-checking path.
    let retry_cfg = ClientConfig {
        client_id: 1,
        ..ClientConfig::default()
    };

    // Interleave the variants so scheduler or thermal drift hits both
    // equally, then compare medians.
    let mut baseline = Vec::with_capacity(runs);
    let mut retry = Vec::with_capacity(runs);
    for _ in 0..runs {
        baseline.push(retry_run(model, baseline_cfg.clone(), batch_size, batches));
        retry.push(retry_run(model, retry_cfg.clone(), batch_size, batches));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let baseline_records_per_sec = median(&mut baseline);
    let retry_records_per_sec = median(&mut retry);
    let overhead_pct = (1.0 - retry_records_per_sec / baseline_records_per_sec) * 100.0;
    assert!(
        overhead_pct < 5.0,
        "retry layer cost {overhead_pct:.2}% on the happy path (budget: 5%): \
         fail-fast {baseline_records_per_sec:.0} rec/s vs retrying+tagged \
         {retry_records_per_sec:.0} rec/s"
    );
    RetryOverheadRow {
        batch_size,
        records_per_run: batch_size * batches,
        runs,
        baseline_records_per_sec,
        retry_records_per_sec,
        overhead_pct,
    }
}

struct MigrateRow {
    streams_total: usize,
    streams_moved: usize,
    warm_rounds: usize,
    total_ns: f64,
    ns_per_stream: f64,
}

fn bench_migration(model: &Model, streams: usize, warm_rounds: usize) -> MigrateRow {
    let node_a = Node::new(
        Runtime::new(model, runtime_cfg(2, streams * 2 + 64)).expect("valid bench config"),
        NodeConfig::default(),
    );
    let node_b = Node::new(
        Runtime::new(model, runtime_cfg(2, streams * 2 + 64)).expect("valid bench config"),
        NodeConfig::default(),
    );
    let (la, ea) = bind_loopback();
    let (lb, eb) = bind_loopback();
    std::thread::scope(|s| {
        let sa = s.spawn(|| node_a.serve(la));
        let sb = s.spawn(|| node_b.serve(lb));
        let mut cluster = Cluster::connect(&[ea.clone(), eb.clone()]).expect("connect");

        // Accumulate live anchor state so each migration carries a real
        // snapshot, not an empty monitor.
        let mut batch = Vec::with_capacity(streams);
        for t in 0..warm_rounds {
            batch.clear();
            for k in 0..streams {
                batch.push(Record::new(k as u64, sample(k, t)));
            }
            cluster.ingest(&batch).expect("warm ingest");
        }
        cluster.drain().expect("warm drain");

        // Move everything the ring put on node A over to node B.
        let movers: Vec<u64> = (0..streams as u64)
            .filter(|&k| cluster.router().route(k) == 0)
            .collect();
        let t0 = Instant::now();
        cluster.migrate(&movers, 1).expect("migrate");
        let total_ns = t0.elapsed().as_secs_f64() * 1e9;

        node_a.stop();
        node_b.stop();
        sa.join().expect("join").expect("serve");
        sb.join().expect("join").expect("serve");
        MigrateRow {
            streams_total: streams,
            streams_moved: movers.len(),
            warm_rounds,
            ns_per_stream: total_ns / movers.len().max(1) as f64,
            total_ns,
        }
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (pings, batch_sizes, batches_of, migrate_streams, warm_rounds): (
        usize,
        &[usize],
        &dyn Fn(usize) -> usize,
        usize,
        usize,
    ) = if quick {
        (500, &[16, 256], &|bs| (16_384 / bs).max(8), 32, 96)
    } else {
        (5_000, &[16, 256, 4_096], &|bs| (1 << 20) / bs, 256, 192)
    };
    println!("bench_net: loopback TCP, stride {STRIDE}, drain cycle {CYCLE} batches");

    let model = ProbThreshold::new(NearestCentroid::fit(&train_set()), 0.9999, TRAIN_LEN, 2);

    let rtt = bench_rtt(&model, pings);
    println!(
        "  ping RTT over {} pings: p50 {:>8.0} ns  p99 {:>8.0} ns",
        rtt.pings, rtt.p50_ns, rtt.p99_ns
    );

    let mut ingest_rows = Vec::new();
    for &bs in batch_sizes {
        let row = bench_ingest(&model, bs, batches_of(bs));
        println!(
            "  ingest batch {:>5}: {:>12.0} records/s over {:>8} records ({} alarms)",
            row.batch_size, row.records_per_sec, row.records, row.alarms
        );
        ingest_rows.push(row);
    }

    let (ro_batches, ro_runs) = if quick { (512, 5) } else { (4_096, 5) };
    let ro = bench_retry_overhead(&model, 64, ro_batches, ro_runs);
    println!(
        "  retry overhead (median of {}): fail-fast {:>12.0} rec/s  retrying+tagged \
         {:>12.0} rec/s  ({:+.2}%)",
        ro.runs, ro.baseline_records_per_sec, ro.retry_records_per_sec, ro.overhead_pct
    );

    let mig = bench_migration(&model, migrate_streams, warm_rounds);
    println!(
        "  migration: {:>4} of {:>4} streams A→B in {:>10.0} ns  ({:>8.0} ns/stream)",
        mig.streams_moved, mig.streams_total, mig.total_ns, mig.ns_per_stream
    );

    // Emit BENCH_net.json (hand-rolled: the workspace is offline, no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"caveat\": \"single machine, loopback TCP: RTT is a floor (no network), \
         throughput shares cores between client and node, migration excludes routing \
         propagation\","
    );
    let _ = writeln!(json, "  \"anchor_stride\": {STRIDE},");
    let _ = writeln!(
        json,
        "  \"rtt\": {{\"pings\": {}, \"p50_ns\": {:.0}, \"p99_ns\": {:.0}}},",
        rtt.pings, rtt.p50_ns, rtt.p99_ns
    );
    let _ = writeln!(json, "  \"ingest\": [");
    for (i, r) in ingest_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"batch_size\": {}, \"records\": {}, \"records_per_sec\": {:.0}, \
             \"alarms\": {}}}{}",
            r.batch_size,
            r.records,
            r.records_per_sec,
            r.alarms,
            if i + 1 < ingest_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"retry_overhead\": {{\"batch_size\": {}, \"records_per_run\": {}, \"runs\": {}, \
         \"baseline_records_per_sec\": {:.0}, \"retry_records_per_sec\": {:.0}, \
         \"overhead_pct\": {:.2}}},",
        ro.batch_size,
        ro.records_per_run,
        ro.runs,
        ro.baseline_records_per_sec,
        ro.retry_records_per_sec,
        ro.overhead_pct
    );
    let _ = writeln!(
        json,
        "  \"migration\": {{\"streams_total\": {}, \"streams_moved\": {}, \"warm_rounds\": {}, \
         \"total_ns\": {:.0}, \"ns_per_stream\": {:.0}}}",
        mig.streams_total, mig.streams_moved, mig.warm_rounds, mig.total_ns, mig.ns_per_stream
    );
    json.push_str("}\n");
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("\nwrote BENCH_net.json");
}
