//! A minimal JSON reader for the benchmark reports.
//!
//! The bench binaries hand-roll their `BENCH_*.json` output (the workspace
//! is offline — no serde), so the regression differ hand-rolls the reader:
//! a recursive-descent parser over the full JSON grammar, returning an
//! order-preserving tree. Errors are positioned, typed strings; nothing
//! panics on malformed input.

/// A parsed JSON value. Object member order is preserved (the reports are
/// written with stable key order, and the differ's output follows it).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64 (the reports only carry doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Flatten every **numeric** leaf into `(dotted.path[index], value)`
    /// pairs, in source order — the unit the differ compares.
    pub fn numeric_leaves(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.walk("", &mut |path, v| {
            if let Json::Num(x) = v {
                out.push((path.to_string(), *x));
            }
        });
        out
    }

    /// Flatten every **string** leaf the same way (the differ uses these to
    /// detect when two reports describe different configurations).
    pub fn string_leaves(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.walk("", &mut |path, v| {
            if let Json::Str(s) = v {
                out.push((path.to_string(), s.clone()));
            }
        });
        out
    }

    fn walk(&self, path: &str, f: &mut impl FnMut(&str, &Json)) {
        match self {
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    item.walk(&format!("{path}[{i}]"), f);
                }
            }
            Json::Obj(members) => {
                for (key, value) in members {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    value.walk(&sub, f);
                }
            }
            leaf => f(path, leaf),
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage refused).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

/// Recursion guard: the reports nest a handful of levels; anything deeper
/// is malformed input, not data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(b))))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| char::from(b).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogates (paired or lone) are not data the
                        // reports emit; map them to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise: the
                    // source is a &str, so the bytes are valid UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else {
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| self.err("invalid UTF-8 in string"))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_report_shape() {
        let v = parse(
            r#"{
  "anchor_stride": 4,
  "results": [
    {"impl": "naive", "ns_per_window": 145.608, "ok": true},
    {"impl": "rolling", "ns_per_window": 21.074, "ok": false}
  ],
  "note": null
}"#,
        )
        .unwrap();
        let nums = v.numeric_leaves();
        assert_eq!(
            nums,
            vec![
                ("anchor_stride".to_string(), 4.0),
                ("results[0].ns_per_window".to_string(), 145.608),
                ("results[1].ns_per_window".to_string(), 21.074),
            ]
        );
        let strs = v.string_leaves();
        assert_eq!(
            strs[0],
            ("results[0].impl".to_string(), "naive".to_string())
        );
    }

    #[test]
    fn parses_numbers_strings_escapes() {
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse(r#""a\"bAç""#).unwrap(),
            Json::Str("a\"bAç".to_string())
        );
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_input_with_typed_errors() {
        for bad in [
            "", "{", "[1,", "\"abc", "{\"a\":}", "1 2", "nul", "[1]extra",
        ] {
            assert!(parse(bad).is_err(), "should refuse {bad:?}");
        }
        // Deep nesting is an error, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
