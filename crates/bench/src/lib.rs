//! # etsc-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/exp_*.rs` and EXPERIMENTS.md) plus criterion microbenchmarks of
//! the hot kernels (`benches/`).
//!
//! This library holds the shared pieces: canonical dataset constructions
//! (the GunPoint-like splits every experiment uses), the roster of Table 1
//! algorithms, and plain-text table rendering.

pub mod json;

use etsc_core::UcrDataset;
use etsc_datasets::gunpoint::{self, GunPointConfig};
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::EarlyClassifier;

/// Canonical GunPoint-like splits mirroring the UCR convention: 50 train /
/// 150 test. Returned **raw** (not normalized); experiments choose.
pub fn gunpoint_splits(seed: u64) -> (UcrDataset, UcrDataset) {
    let cfg = GunPointConfig::default();
    let train = gunpoint::generate(25, &cfg, seed);
    let test = gunpoint::generate(75, &cfg, seed ^ 0xDEADBEEF);
    (train, test)
}

/// Smaller splits for quick runs and integration tests.
pub fn gunpoint_splits_small(seed: u64) -> (UcrDataset, UcrDataset) {
    let cfg = GunPointConfig::default();
    let train = gunpoint::generate(10, &cfg, seed);
    let test = gunpoint::generate(20, &cfg, seed ^ 0xDEADBEEF);
    (train, test)
}

/// The six algorithms of Table 1, with the paper's reported settings.
pub enum Table1Algorithm {
    /// "(min. support = 0) ECTS".
    Ects(Ects),
    /// "(min. support = 0) RelaxedECTS".
    RelaxedEcts(Ects),
    /// "EDSC-CHE".
    EdscChe(Edsc),
    /// "EDSC-KDE".
    EdscKde(Edsc),
    /// "(τ = 0.1) Rel. Class.".
    RelClass(RelClass),
    /// "(τ = 0.1) LDG Rel. Class.".
    LdgRelClass(RelClass),
}

impl Table1Algorithm {
    /// Display name matching the paper's Table 1 rows.
    pub fn name(&self) -> &'static str {
        match self {
            Table1Algorithm::Ects(_) => "(min. support = 0) ECTS",
            Table1Algorithm::RelaxedEcts(_) => "(min. support = 0) RelaxedECTS",
            Table1Algorithm::EdscChe(_) => "EDSC-CHE",
            Table1Algorithm::EdscKde(_) => "EDSC-KDE",
            Table1Algorithm::RelClass(_) => "(tau = 0.1) Rel. Class.",
            Table1Algorithm::LdgRelClass(_) => "(tau = 0.1) LDG Rel. Class.",
        }
    }

    /// Access as the common trait object.
    pub fn classifier(&self) -> &dyn EarlyClassifier {
        match self {
            Table1Algorithm::Ects(c) => c,
            Table1Algorithm::RelaxedEcts(c) => c,
            Table1Algorithm::EdscChe(c) => c,
            Table1Algorithm::EdscKde(c) => c,
            Table1Algorithm::RelClass(c) => c,
            Table1Algorithm::LdgRelClass(c) => c,
        }
    }
}

/// Fit all six Table 1 algorithms on (z-normalized) training data.
pub fn fit_table1(train: &UcrDataset) -> Vec<Table1Algorithm> {
    let edsc_cfg = |method| EdscConfig {
        lengths: vec![15, 25, 40],
        stride: 5,
        method,
        min_precision: 0.8,
        max_features_per_class: 15,
    };
    vec![
        Table1Algorithm::Ects(Ects::fit(train, &EctsConfig::default())),
        Table1Algorithm::RelaxedEcts(Ects::fit(
            train,
            &EctsConfig {
                relaxed: true,
                ..EctsConfig::default()
            },
        )),
        Table1Algorithm::EdscChe(Edsc::fit(
            train,
            &edsc_cfg(ThresholdMethod::Chebyshev { k: 3.0 }),
        )),
        Table1Algorithm::EdscKde(Edsc::fit(
            train,
            &edsc_cfg(ThresholdMethod::Kde { precision: 0.9 }),
        )),
        Table1Algorithm::RelClass(RelClass::fit(train, &RelClassConfig::default())),
        Table1Algorithm::LdgRelClass(RelClass::fit(train, &RelClassConfig::ldg(0.1))),
    ]
}

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        let rendered: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        out.push_str(&rendered.join("  "));
        // Trailing spaces add nothing to a fixed-width table.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|s| s.to_string()).collect());
    line(&mut out, widths.iter().map(|&w| "-".repeat(w)).collect());
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gunpoint_splits_have_ucr_shape() {
        let (train, test) = gunpoint_splits(1);
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 150);
        assert_eq!(train.series_len(), 150);
    }

    #[test]
    fn table1_roster_has_six_rows() {
        let (mut train, _) = gunpoint_splits_small(2);
        train.znormalize();
        let algos = fit_table1(&train);
        assert_eq!(algos.len(), 6);
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"EDSC-CHE"));
        assert!(names.contains(&"(tau = 0.1) LDG Rel. Class."));
        // Every fitted model can classify a full-length series.
        for a in &algos {
            let _ = a.classifier().predict_full(train.series(0));
        }
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["Algorithm", "Acc"],
            &[
                vec!["ECTS".into(), "86.7%".into()],
                vec!["a-very-long-name".into(), "5%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Algorithm"));
        assert!(lines[1].starts_with("---------"));
        assert!(lines[2].contains("86.7%"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.867), "86.7%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
