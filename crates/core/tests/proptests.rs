//! Property-based tests for the foundation invariants the rest of the
//! workspace depends on.

use etsc_core::distance::{dot_product, euclidean, squared_euclidean, znormalized_dist};
use etsc_core::dtw::{dtw_sq, envelope, lb_keogh_sq, lb_kim_sq};
use etsc_core::metrics::{Histogram, HistogramSnapshot};
use etsc_core::nn::{distance_profile, distance_profile_naive, BatchProfile};
use etsc_core::parallel;
use etsc_core::stats::{mean, mean_std, std_dev, RunningStats};
use etsc_core::trace::ring::{merge_snapshots, SLOT_WORDS};
use etsc_core::trace::{SpanRing, Tracer, TracerConfig};
use etsc_core::znorm::{is_znormalized, znormalize, CONSTANT_EPS};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

/// The worker counts every parallel-equivalence property is checked at:
/// serial, even split, and an odd count that forces ragged chunks.
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

proptest! {
    #[test]
    fn znorm_output_is_znormalized(xs in series(2..64)) {
        let z = znormalize(&xs);
        prop_assert!(is_znormalized(&z, 1e-6));
    }

    #[test]
    fn znorm_is_translation_and_scale_invariant(
        xs in series(2..64),
        shift in -100.0f64..100.0,
        scale in 0.01f64..100.0,
    ) {
        let moved: Vec<f64> = xs.iter().map(|&x| shift + scale * x).collect();
        let a = znormalize(&xs);
        let b = znormalize(&moved);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn znorm_idempotent(xs in series(2..64)) {
        let once = znormalize(&xs);
        let twice = znormalize(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn running_stats_match_batch(xs in series(1..128)) {
        let mut rs = RunningStats::new();
        for &x in &xs { rs.push(x); }
        prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn mean_std_single_pass_matches_two_pass(xs in series(1..128)) {
        let (m, s) = mean_std(&xs);
        prop_assert!((m - mean(&xs)).abs() < 1e-8);
        prop_assert!((s - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn euclidean_is_symmetric_and_nonneg(a in series(1..32), b in series(1..32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let d1 = euclidean(a, b);
        let d2 = euclidean(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in series(8..9), b in series(8..9), c in series(8..9),
    ) {
        let ab = euclidean(&a, &b);
        let bc = euclidean(&b, &c);
        let ac = euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dtw_is_lower_or_equal_to_euclidean(a in series(4..24), b in series(4..24)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!(dtw_sq(a, b, None) <= squared_euclidean(a, b) + 1e-9);
    }

    #[test]
    fn dtw_zero_iff_identical_under_no_band(a in series(2..24)) {
        prop_assert!(dtw_sq(&a, &a, None).abs() < 1e-12);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw(
        a in series(10..11), b in series(10..11), band in 0usize..5,
    ) {
        let (u, l) = envelope(&b, band);
        let lb = lb_keogh_sq(&a, &u, &l);
        let d = dtw_sq(&a, &b, Some(band));
        prop_assert!(lb <= d + 1e-6, "lb {lb} > dtw {d}");
    }

    #[test]
    fn lb_kim_lower_bounds_dtw(a in series(6..7), b in series(6..7)) {
        prop_assert!(lb_kim_sq(&a, &b) <= dtw_sq(&a, &b, None) + 1e-9);
    }

    #[test]
    fn znormalized_dist_agrees_with_explicit_normalization(
        q in series(4..32),
        x in series(4..32),
    ) {
        let n = q.len().min(x.len());
        let (q, x) = (&q[..n], &x[..n]);
        // Skip near-constant windows: the convention maps them to zeros and
        // the naive path does the same, but both paths hit CONSTANT_EPS
        // boundaries differently.
        prop_assume!(std_dev(x) > 1e-6 && std_dev(q) > 1e-6);
        let qz = znormalize(q);
        let fast = znormalized_dist(&qz, x);
        let naive = euclidean(&qz, &znormalize(x));
        prop_assert!((fast - naive).abs() < 1e-5, "{fast} vs {naive}");
    }

    #[test]
    fn unrolled_kernels_reassociate_only(a in series(1..200), b in series(1..200)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let naive_dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let naive_sq: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
        // Inputs are up to 1e3 in magnitude and 200 long, so sums reach
        // ~2e8; 1e-12 relative is the reassociation-only budget.
        let scale = 1.0 + naive_dot.abs().max(naive_sq.abs());
        prop_assert!((dot_product(a, b) - naive_dot).abs() <= 1e-12 * scale);
        prop_assert!((squared_euclidean(a, b) - naive_sq).abs() <= 1e-12 * scale);
    }
}

/// A haystack whose tail is a constant run, exercising the `CONSTANT_EPS`
/// branch (constant windows z-normalize to all zeros, d² = m) alongside
/// ordinary windows.
fn haystack_with_constant_run() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 40..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rolling_profile_matches_naive_per_window_profile(
        hay in haystack_with_constant_run(),
        q in series(2..24),
        run_start in 0usize..80,
        level in -20.0f64..20.0,
    ) {
        let mut hay = hay;
        // Plant a constant run somewhere in the haystack.
        let run_start = run_start.min(hay.len().saturating_sub(1));
        let run_end = (run_start + 30).min(hay.len());
        hay[run_start..run_end].fill(level);
        prop_assume!(q.len() <= hay.len());

        let rolling = distance_profile(&q, &hay);
        let naive = distance_profile_naive(&q, &hay);
        prop_assert_eq!(rolling.len(), naive.len());
        let m = q.len();
        for (i, (r, n)) in rolling.iter().zip(&naive).enumerate() {
            let window = &hay[i..i + m];
            if window.iter().all(|&v| v == window[0]) {
                // Exactly constant window: the engine applies the
                // convention exactly (d = sqrt(m)); the naive reference's
                // epsilon test can misclassify here (documented divergence
                // on `distance_profile_naive`), so it is not the oracle.
                prop_assert!((r - (m as f64).sqrt()).abs() < 1e-9, "window {i}: {r}");
            } else {
                prop_assert!((r - n).abs() < 1e-5, "window {i}: rolling {r} vs naive {n}");
            }
        }
    }

    #[test]
    fn rolling_profile_constant_windows_hit_eps_branch(
        q in series(4..16),
        level in -5.0f64..5.0,
    ) {
        // Fully constant haystack: every window takes the constant branch
        // and the profile is exactly sqrt(m) everywhere (the z-normalization
        // convention maps constant windows to all zeros, so d² = Σq̂² = m).
        let hay = vec![level; q.len() + 20];
        prop_assume!(std_dev(&q) > CONSTANT_EPS);
        let rolling = distance_profile(&q, &hay);
        let expect = (q.len() as f64).sqrt();
        for r in &rolling {
            prop_assert!((r - expect).abs() < 1e-9, "{r} vs sqrt(m) {expect}");
        }
    }

    #[test]
    fn profile_engine_parallel_is_bit_identical_to_serial(
        hay in series(60..200),
        q in series(2..24),
    ) {
        prop_assume!(q.len() <= hay.len());
        let engine = BatchProfile::new(&hay);
        let serial = engine.profile_with(1, &q);
        for &t in &THREAD_COUNTS[1..] {
            prop_assert_eq!(&engine.profile_with(t, &q), &serial, "threads {}", t);
        }
        // The ETSC_THREADS-driven entry points agree too.
        for &t in &THREAD_COUNTS {
            let via_env = parallel::with_threads(t, || engine.profile(&q));
            prop_assert_eq!(&via_env, &serial, "with_threads({})", t);
        }
    }

    #[test]
    fn pruned_nearest_agrees_with_profile_argmin(
        hay in haystack_with_constant_run(),
        q in series(2..24),
        trend in -0.5f64..0.5,
    ) {
        // Add a trend: the regime where a sloppy Cauchy–Schwarz bound would
        // mis-prune.
        let hay: Vec<f64> = hay.iter().enumerate().map(|(i, &v)| v + trend * i as f64).collect();
        prop_assume!(q.len() <= hay.len());
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        let min = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        for &t in &THREAD_COUNTS {
            let m = parallel::with_threads(t, || engine.nearest(&q)).unwrap();
            // The winner's distance must be the profile minimum (the pruned
            // scan may land on a different index only for exact ties).
            prop_assert!((m.dist - min).abs() < 1e-9, "threads {}: {} vs {}", t, m.dist, min);
            prop_assert!((profile[m.start] - min).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_primitives_match_serial_at_fixed_thread_counts(
        xs in series(1..300),
    ) {
        let serial_map: Vec<f64> = xs.iter().map(|&x| x * 1.5 - 2.0).collect();
        let serial_sq: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        for &t in &THREAD_COUNTS {
            prop_assert_eq!(&parallel::map_with(t, &xs, |&x| x * 1.5 - 2.0), &serial_map);
            prop_assert_eq!(
                &parallel::map_range_with(t, xs.len(), |i| xs[i] * xs[i]),
                &serial_sq
            );
            let mut mutated = xs.clone();
            parallel::for_each_mut_with(t, &mut mutated, |x| *x += 1.0);
            let expect: Vec<f64> = xs.iter().map(|&x| x + 1.0).collect();
            prop_assert_eq!(&mutated, &expect);
            let mut sliced = xs.clone();
            parallel::for_each_slice_mut_with(t, &mut sliced, |off, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = xs[off + k] * 2.0;
                }
            });
            let expect2: Vec<f64> = xs.iter().map(|&x| x * 2.0).collect();
            prop_assert_eq!(&sliced, &expect2);
        }
    }
}

/// Scale raw u64 draws down by per-element exponents, so observation sets
/// cover every bucket region — uniform u64 alone almost never lands below
/// 2^55. `e` picks the magnitude (`0` → the value 0, `e` → `[0, 2^e)`);
/// the two input vectors zip, truncating to the shorter.
fn scaled_values(exps: &[usize], raws: &[u64]) -> Vec<u64> {
    exps.iter()
        .zip(raws)
        .map(|(&e, &r)| if e == 0 { 0 } else { r >> (64 - e.min(64)) })
        .collect()
}

/// A span-ring payload carrying `tag` in its first word (the proptests
/// only need one distinguishing word per record).
fn tag_words(tag: u64) -> [u64; SLOT_WORDS] {
    let mut w = [0u64; SLOT_WORDS];
    w[0] = tag;
    w
}

/// Record `values` into a fresh histogram and snapshot it.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_buckets_bracket_every_value(e in 0usize..65, raw in 0u64..=u64::MAX) {
        let v = *scaled_values(&[e], &[raw]).first().expect("one value");
        let s = snap(&[v]);
        let i = s
            .buckets
            .iter()
            .position(|&c| c == 1)
            .expect("one value lands in exactly one bucket");
        prop_assert!(v <= HistogramSnapshot::bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > HistogramSnapshot::bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn histogram_power_of_two_boundaries_are_exact(k in 1usize..63) {
        // 2^k − 1 is the last value of bucket k and 2^k the first of the
        // next (the overflow bucket for k = 62) — the boundary is exact,
        // never off by one.
        let below = (1u64 << k) - 1;
        let at = 1u64 << k;
        let s = snap(&[below, at]);
        prop_assert_eq!(s.buckets[k], 1);
        prop_assert_eq!(s.buckets[(k + 1).min(63)], 1);
        prop_assert_eq!(HistogramSnapshot::bucket_upper_bound(k), below);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_never_understate(
        exps in prop::collection::vec(0usize..65, 1..80),
        raws in prop::collection::vec(0u64..=u64::MAX, 1..80),
    ) {
        let values = scaled_values(&exps, &raws);
        let s = snap(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(s.quantile(w[0]) <= s.quantile(w[1]), "monotone in q");
        }
        for &q in &qs {
            // The reported quantile is the upper bound of the bucket that
            // holds the rank, so it never understates the exact quantile.
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = sorted[rank as usize - 1];
            prop_assert!(s.quantile(q) >= exact, "q={q}: {} < {exact}", s.quantile(q));
        }
    }

    #[test]
    fn histogram_merge_equals_recording_the_concatenation(
        // Exponents capped at 57: 120 observations of < 2^57 keep the sum
        // below u64::MAX, the regime the histogram documents (`record`
        // wraps on a sum overflow, `merge` saturates — they only agree
        // while the total stays representable; the saturation property
        // has its own test below).
        exps in prop::collection::vec(0usize..58, 2..120),
        raws in prop::collection::vec(0u64..=u64::MAX, 2..120),
        split in 0usize..120,
    ) {
        let values = scaled_values(&exps, &raws);
        let (a, b) = values.split_at(split.min(values.len()));
        let (a, b) = (a.to_vec(), b.to_vec());
        let mut merged = snap(&a);
        merged.merge(&snap(&b)).expect("same layout");
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snap(&concat));
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        exps in prop::collection::vec(0usize..65, 3..120),
        raws in prop::collection::vec(0u64..=u64::MAX, 3..120),
    ) {
        let values = scaled_values(&exps, &raws);
        let third = values.len() / 3;
        let (a, rest) = values.split_at(third);
        let (b, c) = rest.split_at(third);
        let (sa, sb, sc) = (snap(a), snap(b), snap(c));
        let mut ab = sa.clone();
        ab.merge(&sb).expect("same layout");
        let mut ba = sb.clone();
        ba.merge(&sa).expect("same layout");
        prop_assert_eq!(&ab, &ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&sc).expect("same layout");
        let mut bc = sb.clone();
        bc.merge(&sc).expect("same layout");
        let mut a_bc = sa.clone();
        a_bc.merge(&bc).expect("same layout");
        prop_assert_eq!(&ab_c, &a_bc, "associative");
    }

    #[test]
    fn span_ring_wraparound_keeps_the_newest_records_in_order(
        cap in 1usize..32,
        n in 0u64..200,
    ) {
        let ring = SpanRing::new(cap);
        for i in 0..n {
            ring.record(tag_words(i));
        }
        let snap = ring.snapshot();
        let kept = (ring.capacity() as u64).min(n);
        prop_assert_eq!(snap.len() as u64, kept);
        prop_assert_eq!(ring.dropped(), n - kept, "drop-oldest evicts exactly the excess");
        prop_assert_eq!(ring.recorded(), snap.len() as u64 + ring.dropped());
        // The survivors are the newest `kept` claims, oldest first.
        for (j, (seq, w)) in snap.iter().enumerate() {
            let expect = n - kept + j as u64;
            prop_assert_eq!(*seq, expect);
            prop_assert_eq!(w[0], expect);
        }
    }

    #[test]
    fn span_ring_accounts_for_every_claim_at_fixed_thread_counts(
        cap in 1usize..64,
        per_thread in 1u64..128,
    ) {
        for &t in &THREAD_COUNTS {
            let ring = SpanRing::new(cap);
            std::thread::scope(|s| {
                for tid in 0..t as u64 {
                    let ring = &ring;
                    s.spawn(move || {
                        for i in 0..per_thread {
                            ring.record(tag_words((tid << 32) | i));
                        }
                    });
                }
            });
            let total = t as u64 * per_thread;
            prop_assert_eq!(ring.recorded(), total, "threads {}", t);
            let snap = ring.snapshot();
            prop_assert_eq!(
                snap.len() as u64 + ring.dropped(),
                total,
                "threads {}: every claim is retained or counted dropped",
                t
            );
            for pair in snap.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "snapshot ordered by claim sequence");
            }
            // Each thread's surviving records appear in its program order
            // (claim sequences are handed out monotonically per thread).
            for tid in 0..t as u64 {
                let tags: Vec<u64> = snap
                    .iter()
                    .map(|(_, w)| w[0])
                    .filter(|w| w >> 32 == tid)
                    .collect();
                for pair in tags.windows(2) {
                    prop_assert!(pair[0] < pair[1], "thread {} order survives the wrap", tid);
                }
            }
        }
    }

    #[test]
    fn span_ring_per_thread_rings_merge_into_one_ordered_union(per_thread in 1u64..64) {
        for &t in &THREAD_COUNTS {
            let rings: Vec<SpanRing> = (0..t)
                .map(|_| SpanRing::new(per_thread as usize))
                .collect();
            std::thread::scope(|s| {
                for (tid, ring) in rings.iter().enumerate() {
                    s.spawn(move || {
                        for i in 0..per_thread {
                            ring.record(tag_words(((tid as u64) << 32) | i));
                        }
                    });
                }
            });
            let parts: Vec<_> = rings.iter().map(|r| r.snapshot()).collect();
            let merged = merge_snapshots(&parts);
            // One single-writer ring per thread, each sized to its load:
            // nothing drops, and the merge is the exact union.
            prop_assert_eq!(merged.len() as u64, t as u64 * per_thread, "threads {}", t);
            for pair in merged.windows(2) {
                prop_assert!(pair[0] < pair[1], "merge is totally ordered");
            }
            let mut tags: Vec<u64> = merged.iter().map(|(_, w)| w[0]).collect();
            tags.sort_unstable();
            tags.dedup();
            prop_assert_eq!(tags.len() as u64, t as u64 * per_thread, "no tag lost or duplicated");
        }
    }

    #[test]
    fn tracer_span_ids_are_unique_and_monotone_across_threads(
        seed in 1u64..1_000_000,
        per_thread in 1usize..64,
    ) {
        for &t in &THREAD_COUNTS {
            let tracer = Tracer::new(TracerConfig {
                id_seed: seed,
                ..TracerConfig::default()
            });
            let per_thread_ids: Vec<Vec<u64>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..t)
                    .map(|_| {
                        let tracer = tracer.clone();
                        s.spawn(move || {
                            (0..per_thread)
                                .map(|_| tracer.alloc_span_id())
                                .collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("id allocator thread"))
                    .collect()
            });
            for ids in &per_thread_ids {
                for pair in ids.windows(2) {
                    prop_assert!(pair[0] < pair[1], "monotone within a thread");
                }
                prop_assert!(ids.iter().all(|&id| id >= seed), "ids start at the seed");
            }
            let mut flat: Vec<u64> = per_thread_ids.into_iter().flatten().collect();
            let total = flat.len();
            flat.sort_unstable();
            flat.dedup();
            prop_assert_eq!(flat.len(), total, "threads {}: globally unique", t);
        }
    }

    #[test]
    fn histogram_overflow_bucket_saturates_instead_of_wrapping(extra in 0u64..=u64::MAX) {
        // A snapshot already at the counting limit absorbs more giant
        // observations without wrapping — the overflow bucket and the sum
        // both saturate.
        let mut s = HistogramSnapshot::empty();
        s.buckets[63] = u64::MAX;
        s.sum = u64::MAX;
        s.merge(&snap(&[u64::MAX, extra | (1 << 62)])).expect("same layout");
        prop_assert_eq!(s.buckets[63], u64::MAX);
        prop_assert_eq!(s.sum, u64::MAX);
        prop_assert_eq!(s.quantile(1.0), u64::MAX);
    }
}
