//! Property-based tests for the foundation invariants the rest of the
//! workspace depends on.

use etsc_core::distance::{euclidean, squared_euclidean, znormalized_dist};
use etsc_core::dtw::{dtw_sq, envelope, lb_keogh_sq, lb_kim_sq};
use etsc_core::stats::{mean, mean_std, std_dev, RunningStats};
use etsc_core::znorm::{is_znormalized, znormalize};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    #[test]
    fn znorm_output_is_znormalized(xs in series(2..64)) {
        let z = znormalize(&xs);
        prop_assert!(is_znormalized(&z, 1e-6));
    }

    #[test]
    fn znorm_is_translation_and_scale_invariant(
        xs in series(2..64),
        shift in -100.0f64..100.0,
        scale in 0.01f64..100.0,
    ) {
        let moved: Vec<f64> = xs.iter().map(|&x| shift + scale * x).collect();
        let a = znormalize(&xs);
        let b = znormalize(&moved);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn znorm_idempotent(xs in series(2..64)) {
        let once = znormalize(&xs);
        let twice = znormalize(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn running_stats_match_batch(xs in series(1..128)) {
        let mut rs = RunningStats::new();
        for &x in &xs { rs.push(x); }
        prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn mean_std_single_pass_matches_two_pass(xs in series(1..128)) {
        let (m, s) = mean_std(&xs);
        prop_assert!((m - mean(&xs)).abs() < 1e-8);
        prop_assert!((s - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn euclidean_is_symmetric_and_nonneg(a in series(1..32), b in series(1..32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let d1 = euclidean(a, b);
        let d2 = euclidean(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in series(8..9), b in series(8..9), c in series(8..9),
    ) {
        let ab = euclidean(&a, &b);
        let bc = euclidean(&b, &c);
        let ac = euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dtw_is_lower_or_equal_to_euclidean(a in series(4..24), b in series(4..24)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!(dtw_sq(a, b, None) <= squared_euclidean(a, b) + 1e-9);
    }

    #[test]
    fn dtw_zero_iff_identical_under_no_band(a in series(2..24)) {
        prop_assert!(dtw_sq(&a, &a, None).abs() < 1e-12);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw(
        a in series(10..11), b in series(10..11), band in 0usize..5,
    ) {
        let (u, l) = envelope(&b, band);
        let lb = lb_keogh_sq(&a, &u, &l);
        let d = dtw_sq(&a, &b, Some(band));
        prop_assert!(lb <= d + 1e-6, "lb {lb} > dtw {d}");
    }

    #[test]
    fn lb_kim_lower_bounds_dtw(a in series(6..7), b in series(6..7)) {
        prop_assert!(lb_kim_sq(&a, &b) <= dtw_sq(&a, &b, None) + 1e-9);
    }

    #[test]
    fn znormalized_dist_agrees_with_explicit_normalization(
        q in series(4..32),
        x in series(4..32),
    ) {
        let n = q.len().min(x.len());
        let (q, x) = (&q[..n], &x[..n]);
        // Skip near-constant windows: the convention maps them to zeros and
        // the naive path does the same, but both paths hit CONSTANT_EPS
        // boundaries differently.
        prop_assume!(std_dev(x) > 1e-6 && std_dev(q) > 1e-6);
        let qz = znormalize(q);
        let fast = znormalized_dist(&qz, x);
        let naive = euclidean(&qz, &znormalize(x));
        prop_assert!((fast - naive).abs() < 1e-5, "{fast} vs {naive}");
    }
}
