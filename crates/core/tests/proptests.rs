//! Property-based tests for the foundation invariants the rest of the
//! workspace depends on.

use etsc_core::distance::{dot_product, euclidean, squared_euclidean, znormalized_dist};
use etsc_core::dtw::{dtw_sq, envelope, lb_keogh_sq, lb_kim_sq};
use etsc_core::nn::{distance_profile, distance_profile_naive, BatchProfile};
use etsc_core::parallel;
use etsc_core::stats::{mean, mean_std, std_dev, RunningStats};
use etsc_core::znorm::{is_znormalized, znormalize, CONSTANT_EPS};
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

/// The worker counts every parallel-equivalence property is checked at:
/// serial, even split, and an odd count that forces ragged chunks.
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

proptest! {
    #[test]
    fn znorm_output_is_znormalized(xs in series(2..64)) {
        let z = znormalize(&xs);
        prop_assert!(is_znormalized(&z, 1e-6));
    }

    #[test]
    fn znorm_is_translation_and_scale_invariant(
        xs in series(2..64),
        shift in -100.0f64..100.0,
        scale in 0.01f64..100.0,
    ) {
        let moved: Vec<f64> = xs.iter().map(|&x| shift + scale * x).collect();
        let a = znormalize(&xs);
        let b = znormalize(&moved);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn znorm_idempotent(xs in series(2..64)) {
        let once = znormalize(&xs);
        let twice = znormalize(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn running_stats_match_batch(xs in series(1..128)) {
        let mut rs = RunningStats::new();
        for &x in &xs { rs.push(x); }
        prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn mean_std_single_pass_matches_two_pass(xs in series(1..128)) {
        let (m, s) = mean_std(&xs);
        prop_assert!((m - mean(&xs)).abs() < 1e-8);
        prop_assert!((s - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn euclidean_is_symmetric_and_nonneg(a in series(1..32), b in series(1..32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let d1 = euclidean(a, b);
        let d2 = euclidean(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in series(8..9), b in series(8..9), c in series(8..9),
    ) {
        let ab = euclidean(&a, &b);
        let bc = euclidean(&b, &c);
        let ac = euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dtw_is_lower_or_equal_to_euclidean(a in series(4..24), b in series(4..24)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert!(dtw_sq(a, b, None) <= squared_euclidean(a, b) + 1e-9);
    }

    #[test]
    fn dtw_zero_iff_identical_under_no_band(a in series(2..24)) {
        prop_assert!(dtw_sq(&a, &a, None).abs() < 1e-12);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw(
        a in series(10..11), b in series(10..11), band in 0usize..5,
    ) {
        let (u, l) = envelope(&b, band);
        let lb = lb_keogh_sq(&a, &u, &l);
        let d = dtw_sq(&a, &b, Some(band));
        prop_assert!(lb <= d + 1e-6, "lb {lb} > dtw {d}");
    }

    #[test]
    fn lb_kim_lower_bounds_dtw(a in series(6..7), b in series(6..7)) {
        prop_assert!(lb_kim_sq(&a, &b) <= dtw_sq(&a, &b, None) + 1e-9);
    }

    #[test]
    fn znormalized_dist_agrees_with_explicit_normalization(
        q in series(4..32),
        x in series(4..32),
    ) {
        let n = q.len().min(x.len());
        let (q, x) = (&q[..n], &x[..n]);
        // Skip near-constant windows: the convention maps them to zeros and
        // the naive path does the same, but both paths hit CONSTANT_EPS
        // boundaries differently.
        prop_assume!(std_dev(x) > 1e-6 && std_dev(q) > 1e-6);
        let qz = znormalize(q);
        let fast = znormalized_dist(&qz, x);
        let naive = euclidean(&qz, &znormalize(x));
        prop_assert!((fast - naive).abs() < 1e-5, "{fast} vs {naive}");
    }

    #[test]
    fn unrolled_kernels_reassociate_only(a in series(1..200), b in series(1..200)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let naive_dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let naive_sq: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
        // Inputs are up to 1e3 in magnitude and 200 long, so sums reach
        // ~2e8; 1e-12 relative is the reassociation-only budget.
        let scale = 1.0 + naive_dot.abs().max(naive_sq.abs());
        prop_assert!((dot_product(a, b) - naive_dot).abs() <= 1e-12 * scale);
        prop_assert!((squared_euclidean(a, b) - naive_sq).abs() <= 1e-12 * scale);
    }
}

/// A haystack whose tail is a constant run, exercising the `CONSTANT_EPS`
/// branch (constant windows z-normalize to all zeros, d² = m) alongside
/// ordinary windows.
fn haystack_with_constant_run() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 40..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rolling_profile_matches_naive_per_window_profile(
        hay in haystack_with_constant_run(),
        q in series(2..24),
        run_start in 0usize..80,
        level in -20.0f64..20.0,
    ) {
        let mut hay = hay;
        // Plant a constant run somewhere in the haystack.
        let run_start = run_start.min(hay.len().saturating_sub(1));
        let run_end = (run_start + 30).min(hay.len());
        hay[run_start..run_end].fill(level);
        prop_assume!(q.len() <= hay.len());

        let rolling = distance_profile(&q, &hay);
        let naive = distance_profile_naive(&q, &hay);
        prop_assert_eq!(rolling.len(), naive.len());
        let m = q.len();
        for (i, (r, n)) in rolling.iter().zip(&naive).enumerate() {
            let window = &hay[i..i + m];
            if window.iter().all(|&v| v == window[0]) {
                // Exactly constant window: the engine applies the
                // convention exactly (d = sqrt(m)); the naive reference's
                // epsilon test can misclassify here (documented divergence
                // on `distance_profile_naive`), so it is not the oracle.
                prop_assert!((r - (m as f64).sqrt()).abs() < 1e-9, "window {i}: {r}");
            } else {
                prop_assert!((r - n).abs() < 1e-5, "window {i}: rolling {r} vs naive {n}");
            }
        }
    }

    #[test]
    fn rolling_profile_constant_windows_hit_eps_branch(
        q in series(4..16),
        level in -5.0f64..5.0,
    ) {
        // Fully constant haystack: every window takes the constant branch
        // and the profile is exactly sqrt(m) everywhere (the z-normalization
        // convention maps constant windows to all zeros, so d² = Σq̂² = m).
        let hay = vec![level; q.len() + 20];
        prop_assume!(std_dev(&q) > CONSTANT_EPS);
        let rolling = distance_profile(&q, &hay);
        let expect = (q.len() as f64).sqrt();
        for r in &rolling {
            prop_assert!((r - expect).abs() < 1e-9, "{r} vs sqrt(m) {expect}");
        }
    }

    #[test]
    fn profile_engine_parallel_is_bit_identical_to_serial(
        hay in series(60..200),
        q in series(2..24),
    ) {
        prop_assume!(q.len() <= hay.len());
        let engine = BatchProfile::new(&hay);
        let serial = engine.profile_with(1, &q);
        for &t in &THREAD_COUNTS[1..] {
            prop_assert_eq!(&engine.profile_with(t, &q), &serial, "threads {}", t);
        }
        // The ETSC_THREADS-driven entry points agree too.
        for &t in &THREAD_COUNTS {
            let via_env = parallel::with_threads(t, || engine.profile(&q));
            prop_assert_eq!(&via_env, &serial, "with_threads({})", t);
        }
    }

    #[test]
    fn pruned_nearest_agrees_with_profile_argmin(
        hay in haystack_with_constant_run(),
        q in series(2..24),
        trend in -0.5f64..0.5,
    ) {
        // Add a trend: the regime where a sloppy Cauchy–Schwarz bound would
        // mis-prune.
        let hay: Vec<f64> = hay.iter().enumerate().map(|(i, &v)| v + trend * i as f64).collect();
        prop_assume!(q.len() <= hay.len());
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        let min = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        for &t in &THREAD_COUNTS {
            let m = parallel::with_threads(t, || engine.nearest(&q)).unwrap();
            // The winner's distance must be the profile minimum (the pruned
            // scan may land on a different index only for exact ties).
            prop_assert!((m.dist - min).abs() < 1e-9, "threads {}: {} vs {}", t, m.dist, min);
            prop_assert!((profile[m.start] - min).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_primitives_match_serial_at_fixed_thread_counts(
        xs in series(1..300),
    ) {
        let serial_map: Vec<f64> = xs.iter().map(|&x| x * 1.5 - 2.0).collect();
        let serial_sq: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        for &t in &THREAD_COUNTS {
            prop_assert_eq!(&parallel::map_with(t, &xs, |&x| x * 1.5 - 2.0), &serial_map);
            prop_assert_eq!(
                &parallel::map_range_with(t, xs.len(), |i| xs[i] * xs[i]),
                &serial_sq
            );
            let mut mutated = xs.clone();
            parallel::for_each_mut_with(t, &mut mutated, |x| *x += 1.0);
            let expect: Vec<f64> = xs.iter().map(|&x| x + 1.0).collect();
            prop_assert_eq!(&mutated, &expect);
            let mut sliced = xs.clone();
            parallel::for_each_slice_mut_with(t, &mut sliced, |off, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = xs[off + k] * 2.0;
                }
            });
            let expect2: Vec<f64> = xs.iter().map(|&x| x * 2.0).collect();
            prop_assert_eq!(&sliced, &expect2);
        }
    }
}
