//! Nearest-neighbor subsequence search in long streams.
//!
//! This is the workhorse of the homophone experiment (Fig 5: "search for the
//! GunPoint exemplar's nearest neighbors inside an hour of eye-movement
//! data") and the dustbathing study (Fig 8: 500 nearest neighbors of a
//! template in a long accelerometer recording).
//!
//! Matches are found under **z-normalized Euclidean distance**, computed with
//! the rolling-statistics dot-product identity (the kernel inside MASS / the
//! UCR Suite): [`CumStats`] precomputes cumulative sums and sums-of-squares
//! of the haystack once, so every window's mean and standard deviation is
//! O(1) instead of an O(m) pass, and the only per-window work left is one
//! unrolled dot product. [`BatchProfile`] keeps that precompute alive across
//! queries — the Fig 5 experiment runs one query per lexicon word over the
//! *same* hour of data — and splits the haystack across worker threads
//! (chunked by window index, so results are identical to the serial scan;
//! see [`crate::parallel`] and its `ETSC_THREADS` switch).
//!
//! [`nearest_neighbor`] additionally prunes: a window can only beat the best
//! match so far if its dot product against the z-normalized query exceeds
//! `sd · (m − d²_best/2)` (the identity solved for the dot), and the
//! Cauchy–Schwarz bound on the remaining suffix — O(1) from the same
//! cumulative sums — abandons windows that cannot reach that target.
//!
//! Numerical contract: the rolling-statistics path recovers each window's
//! variance from differences of cumulative sums, which agrees with the
//! two-pass per-window computation to ~1e-9 relative on data of sane
//! magnitude (the property tests pin this), not bit-exactly. Serial vs
//! parallel is bit-identical; rolling vs the reference
//! [`distance_profile_naive`] is tolerance-identical.

use crate::distance::dot_product;
use crate::parallel;
use crate::stats::prefix_value_and_square_sums;
use crate::znorm::{znormalize, CONSTANT_EPS};

/// One subsequence match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Start offset of the window in the haystack.
    pub start: usize,
    /// Z-normalized Euclidean distance (not squared).
    pub dist: f64,
}

/// Minimum `windows × query_len` product before a profile scan fans out to
/// worker threads (a scoped spawn costs ~10µs; below this the serial loop
/// wins).
const PAR_MIN_WINDOW_WORK: usize = 1 << 16;

/// Interval, in samples, between Cauchy–Schwarz abandonment checks inside
/// the pruned dot product (each check is O(1) but costs a `sqrt`).
const PRUNE_CHECK: usize = 16;

/// Number of adjacent windows whose dot products the profile kernel
/// accumulates simultaneously — one accumulator per window, haystack loads
/// contiguous across the block, so the compiler vectorizes across windows.
const DOT_BLOCK: usize = 8;

/// Distances and standard deviations of [`DOT_BLOCK`] adjacent windows
/// starting at `base`, written into `out`/`sds` (constant-window patching is
/// the caller's job, outside the hot loop).
///
/// The dot products use four independent accumulators per window striding
/// the query (hiding vector-add latency), combined exactly as
/// [`dot_product`] combines its four lanes — so a window's dot here is
/// **bit-identical** to `dot_product(q, window)`, which is what the
/// non-blocked remainder path computes. Multiplies and adds stay separate
/// (Rust never contracts to FMA), and division and square root are exactly
/// rounded in IEEE 754, so every compiled variant below agrees bitwise with
/// the scalar path; the vector units only widen *across* windows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn profile_block_body(
    q: &[f64],
    hay: &[f64],
    c1: &[f64],
    c2: &[f64],
    base: usize,
    mf: f64,
    out: &mut [f64; DOT_BLOCK],
    sds: &mut [f64; DOT_BLOCK],
) {
    let m = q.len();
    let mut acc = [[0.0f64; DOT_BLOCK]; 4];
    let mut j = 0usize;
    while j + 4 <= m {
        for k in 0..4 {
            let qj = q[j + k];
            let h = &hay[base + j + k..base + j + k + DOT_BLOCK];
            let a = &mut acc[k];
            for t in 0..DOT_BLOCK {
                a[t] += qj * h[t];
            }
        }
        j += 4;
    }
    let mut tail = [0.0f64; DOT_BLOCK];
    while j < m {
        let qj = q[j];
        let h = &hay[base + j..base + j + DOT_BLOCK];
        for t in 0..DOT_BLOCK {
            tail[t] += qj * h[t];
        }
        j += 1;
    }
    let c1 = &c1[base..base + DOT_BLOCK + m];
    let c2 = &c2[base..base + DOT_BLOCK + m];
    for t in 0..DOT_BLOCK {
        let dot = (acc[0][t] + acc[1][t]) + (acc[2][t] + acc[3][t]) + tail[t];
        let s = c1[t + m] - c1[t];
        let ss = c2[t + m] - c2[t];
        let mu = s / mf;
        let var = (ss / mf - mu * mu).max(0.0);
        let sd = var.sqrt();
        sds[t] = sd;
        out[t] = (2.0 * (mf - dot / sd)).max(0.0).sqrt();
    }
}

/// Signature of one compiled block-kernel variant.
type BlockKernel =
    fn(&[f64], &[f64], &[f64], &[f64], usize, f64, &mut [f64; DOT_BLOCK], &mut [f64; DOT_BLOCK]);

/// The baseline-ISA compilation of [`profile_block_body`].
#[allow(clippy::too_many_arguments)]
fn profile_block_scalar(
    q: &[f64],
    hay: &[f64],
    c1: &[f64],
    c2: &[f64],
    base: usize,
    mf: f64,
    out: &mut [f64; DOT_BLOCK],
    sds: &mut [f64; DOT_BLOCK],
) {
    profile_block_body(q, hay, c1, c2, base, mf, out, sds)
}

/// [`profile_block_body`] compiled for 256-bit vectors. Safety: callers
/// gate on runtime AVX2 detection.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn profile_block_avx2(
    q: &[f64],
    hay: &[f64],
    c1: &[f64],
    c2: &[f64],
    base: usize,
    mf: f64,
    out: &mut [f64; DOT_BLOCK],
    sds: &mut [f64; DOT_BLOCK],
) {
    profile_block_body(q, hay, c1, c2, base, mf, out, sds)
}

/// [`profile_block_body`] compiled for 512-bit vectors (the whole block is
/// one register). Safety: callers gate on runtime AVX-512F detection.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn profile_block_avx512(
    q: &[f64],
    hay: &[f64],
    c1: &[f64],
    c2: &[f64],
    base: usize,
    mf: f64,
    out: &mut [f64; DOT_BLOCK],
    sds: &mut [f64; DOT_BLOCK],
) {
    profile_block_body(q, hay, c1, c2, base, mf, out, sds)
}

/// Widest block kernel this CPU supports, detected once. All variants are
/// numerically identical (see [`profile_block_body`]); only throughput
/// differs.
fn profile_block_kernel() -> BlockKernel {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static KERNEL: OnceLock<BlockKernel> = OnceLock::new();
        #[allow(clippy::needless_return)] // the non-x86 tail needs the return
        return *KERNEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f") {
                |q, hay, c1, c2, base, mf, out, sds| unsafe {
                    profile_block_avx512(q, hay, c1, c2, base, mf, out, sds)
                }
            } else if std::arch::is_x86_feature_detected!("avx2") {
                |q, hay, c1, c2, base, mf, out, sds| unsafe {
                    profile_block_avx2(q, hay, c1, c2, base, mf, out, sds)
                }
            } else {
                profile_block_scalar
            }
        });
    }
    #[cfg(not(target_arch = "x86_64"))]
    profile_block_scalar
}

/// Cumulative sums and sums-of-squares over a haystack: `O(1)` mean and
/// standard deviation of any window.
///
/// `c1[i]` is the sum of the first `i` samples and `c2[i]` the sum of their
/// squares (both length `n + 1`), so window `[start, start + m)` has
/// `Σx = c1[start+m] − c1[start]`, `Σx² = c2[start+m] − c2[start]`, and mean
/// and population variance follow directly. This replaces the per-window
/// `mean_std` pass that previously made every window cost two passes.
#[derive(Debug, Clone)]
pub struct CumStats {
    c1: Vec<f64>,
    c2: Vec<f64>,
    /// `run[i]` = number of consecutive samples equal to `xs[i]` starting at
    /// `i` (≥ 1). Cancellation in the cumulative differences leaves an
    /// exactly-constant window with a residual sd on the order of
    /// `‖c2‖·ε/m` — far above `CONSTANT_EPS` on long or large-valued
    /// haystacks — so the constant-window convention (d² = m) is decided by
    /// this exact O(1) test instead of an epsilon on the noisy variance.
    run: Vec<u32>,
}

impl CumStats {
    /// Precompute cumulative statistics of `xs` (one O(n) pass).
    pub fn new(xs: &[f64]) -> Self {
        let (c1, c2) = prefix_value_and_square_sums(xs);
        let mut run = vec![1u32; xs.len()];
        for i in (0..xs.len().saturating_sub(1)).rev() {
            if xs[i] == xs[i + 1] {
                run[i] = run[i + 1].saturating_add(1);
            }
        }
        Self { c1, c2, run }
    }

    /// Is the window `[start, start + m)` exactly constant? O(1), exact
    /// (bitwise sample equality, no epsilon).
    #[inline]
    pub fn window_is_constant(&self, start: usize, m: usize) -> bool {
        m <= 1 || self.run[start] as usize >= m
    }

    /// True when every cumulative sum is finite — i.e. the underlying data
    /// held no NaN/±inf (and no square overflowed). A non-finite sample
    /// poisons every cumulative entry after it, which would silently zero
    /// the distances of every *later* window (`NaN.max(0.0) == 0.0`);
    /// callers check this once and fall back to per-window statistics,
    /// which confine the damage to windows actually containing the bad
    /// sample.
    pub fn all_finite(&self) -> bool {
        // Cumulative sums only go non-finite by absorbing a non-finite
        // term, and stay non-finite afterwards (NaN propagates; ±inf can
        // only cancel to NaN), so checking the last entries suffices.
        self.c1.last().is_none_or(|v| v.is_finite()) && self.c2.last().is_none_or(|v| v.is_finite())
    }

    /// Number of samples covered.
    pub fn len(&self) -> usize {
        self.c1.len() - 1
    }

    /// True when built over an empty series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean and population standard deviation of the window
    /// `[start, start + m)` in O(1). Variance is clamped at zero against
    /// cancellation in the cumulative differences.
    #[inline]
    pub fn window_mean_std(&self, start: usize, m: usize) -> (f64, f64) {
        let n = m as f64;
        let s = self.c1[start + m] - self.c1[start];
        let ss = self.c2[start + m] - self.c2[start];
        let mu = s / n;
        let var = (ss / n - mu * mu).max(0.0);
        (mu, var.sqrt())
    }

    /// `(Σx, Σx²)` of the window `[start, start + m)` in O(1).
    #[inline]
    pub fn window_sums(&self, start: usize, m: usize) -> (f64, f64) {
        (
            self.c1[start + m] - self.c1[start],
            self.c2[start + m] - self.c2[start],
        )
    }
}

/// A subsequence-search engine over one haystack, built once and reused
/// across queries.
///
/// Construction does the single O(n) [`CumStats`] pass; every subsequent
/// [`profile`](Self::profile) / [`nearest`](Self::nearest) /
/// [`top_k`](Self::top_k) / [`within`](Self::within) call pays only the
/// per-window dot products, and [`profiles`](Self::profiles) amortizes the
/// engine across a whole batch of queries in parallel. The free functions
/// ([`distance_profile`], [`nearest_neighbor`], …) are thin wrappers that
/// build a throwaway engine; anything issuing more than one query against
/// the same haystack should hold a `BatchProfile` instead.
#[derive(Debug, Clone)]
pub struct BatchProfile<'a> {
    haystack: &'a [f64],
    stats: CumStats,
}

impl<'a> BatchProfile<'a> {
    /// Build the engine over `haystack` (one O(n) statistics pass).
    pub fn new(haystack: &'a [f64]) -> Self {
        Self {
            haystack,
            stats: CumStats::new(haystack),
        }
    }

    /// The underlying haystack.
    pub fn haystack(&self) -> &'a [f64] {
        self.haystack
    }

    /// The precomputed cumulative statistics.
    pub fn stats(&self) -> &CumStats {
        &self.stats
    }

    /// Number of length-`m` windows the haystack holds.
    fn n_windows(&self, m: usize) -> usize {
        if self.haystack.len() < m {
            0
        } else {
            self.haystack.len() - m + 1
        }
    }

    /// Squared z-normalized distance of the pre-z-normalized `q` to the
    /// window starting at `i`, via the dot-product identity and O(1) stats.
    #[inline]
    fn window_sq_dist(&self, q: &[f64], i: usize) -> f64 {
        let m = q.len();
        if self.stats.window_is_constant(i, m) {
            return m as f64; // constant windows z-normalize to all zeros
        }
        let (_, sd) = self.stats.window_mean_std(i, m);
        if sd <= CONSTANT_EPS {
            return m as f64;
        }
        let dot = dot_product(q, &self.haystack[i..i + m]);
        (2.0 * (m as f64 - dot / sd)).max(0.0)
    }

    /// Full z-normalized distance profile of `query` against every window:
    /// `profile[i] = d(znorm(query), znorm(haystack[i..i+m]))`.
    ///
    /// O(n·m) dot products with O(1) per-window statistics, split across
    /// [`parallel::num_threads`] workers for large scans (chunked by window
    /// index — bit-identical to the serial result).
    pub fn profile(&self, query: &[f64]) -> Vec<f64> {
        let m = query.len();
        assert!(m > 0, "query must be non-empty");
        let n_windows = self.n_windows(m);
        let threads = parallel::gate(n_windows.saturating_mul(m), PAR_MIN_WINDOW_WORK);
        self.profile_with(threads, query)
    }

    /// [`profile`](Self::profile) with an explicit worker count (used by the
    /// multi-query batch path, which parallelizes over queries instead, and
    /// by the scaling benchmarks).
    pub fn profile_with(&self, threads: usize, query: &[f64]) -> Vec<f64> {
        let m = query.len();
        assert!(m > 0, "query must be non-empty");
        let n_windows = self.n_windows(m);
        if n_windows == 0 {
            return Vec::new();
        }
        let q = znormalize(query);
        let mut profile = vec![0.0f64; n_windows];
        parallel::for_each_slice_mut_with(threads, &mut profile, |offset, seg| {
            self.fill_profile_segment(&q, offset, seg);
        });
        profile
    }

    /// Compute `seg[k] = d(q, window offset + k)` for a contiguous run of
    /// windows, with the dot products blocked [`DOT_BLOCK`] windows at a
    /// time: the inner loop walks the query once and updates a block of
    /// accumulators, so consecutive haystack loads vectorize across windows
    /// (per-window dots are latency-bound otherwise). Every window's dot —
    /// blocked or remainder — uses [`dot_product`]'s exact 4-lane
    /// association, so results are independent of blocking and chunking:
    /// the serial/parallel bit-identity the module contract promises.
    fn fill_profile_segment(&self, q: &[f64], offset: usize, seg: &mut [f64]) {
        let m = q.len();
        let mf = m as f64;
        let hay = self.haystack;
        if !self.stats.all_finite() {
            // NaN/±inf somewhere in the haystack: the cumulative sums are
            // poisoned from that point on, so recompute each window's
            // statistics directly — only windows containing the bad sample
            // come out non-finite, matching the pre-engine behavior.
            for (k, out) in seg.iter_mut().enumerate() {
                *out = crate::distance::znormalized_sq_dist(q, &hay[offset + k..offset + k + m])
                    .sqrt();
            }
            return;
        }
        let kernel = profile_block_kernel();
        let mut w = 0usize;
        while w < seg.len() {
            let count = (seg.len() - w).min(DOT_BLOCK);
            let base = offset + w;
            if count == DOT_BLOCK {
                let mut out = [0.0f64; DOT_BLOCK];
                let mut sds = [0.0f64; DOT_BLOCK];
                kernel(
                    q,
                    hay,
                    &self.stats.c1,
                    &self.stats.c2,
                    base,
                    mf,
                    &mut out,
                    &mut sds,
                );
                seg[w..w + DOT_BLOCK].copy_from_slice(&out);
                // Rare constant-window patches, outside the hot loop so it
                // stays branch-free and vectorizable.
                for t in 0..DOT_BLOCK {
                    if sds[t] <= CONSTANT_EPS || self.stats.window_is_constant(base + t, m) {
                        seg[w + t] = mf.sqrt();
                    }
                }
            } else {
                for t in 0..count {
                    let i = base + t;
                    // Same 4-lane association as the blocked kernel (see
                    // `profile_block_body`), so block membership never
                    // changes a window's value.
                    let dot = dot_product(q, &hay[i..i + m]);
                    seg[w + t] = self.finish_window(i, m, mf, dot);
                }
            }
            w += count;
        }
    }

    /// Distance of window `i` from its accumulated dot product.
    #[inline]
    fn finish_window(&self, i: usize, m: usize, mf: f64, dot: f64) -> f64 {
        if self.stats.window_is_constant(i, m) {
            return mf.sqrt(); // constant windows z-normalize to all zeros
        }
        let (_, sd) = self.stats.window_mean_std(i, m);
        if sd <= CONSTANT_EPS {
            return mf.sqrt();
        }
        (2.0 * (mf - dot / sd)).max(0.0).sqrt()
    }

    /// Distance profiles of many queries over the same haystack, one
    /// [`profile`](Self::profile) per query, computed in parallel across
    /// queries first and haystack chunks second: with fewer queries than
    /// workers, each query's scan gets the leftover workers
    /// (`threads / queries`), so two queries over a two-million-point
    /// recording still use the whole machine.
    ///
    /// This is the Fig 5 shape of work — one query per lexicon word against
    /// one long recording — and the reason this type exists: the haystack
    /// statistics pass runs once, not once per word.
    pub fn profiles(&self, queries: &[&[f64]]) -> Vec<Vec<f64>> {
        let m_total: usize = queries.iter().map(|q| q.len()).sum();
        let work = self.haystack.len().saturating_mul(m_total);
        let threads = parallel::gate(work, PAR_MIN_WINDOW_WORK);
        let outer = threads.min(queries.len()).max(1);
        let inner = (threads / outer).max(1);
        parallel::map_with(outer, queries, |q| self.profile_with(inner, q))
    }

    /// The single best match of `query`, with best-so-far pruning.
    ///
    /// A window at `i` with standard deviation `sd` beats the current best
    /// squared distance `b` iff its dot product against the z-normalized
    /// query exceeds `sd·(m − b/2)` (the identity solved for the dot). The
    /// scan accumulates each window's dot in [`PRUNE_CHECK`]-sample chunks
    /// and abandons as soon as the Cauchy–Schwarz bound on the remaining
    /// suffix — O(1) from the cumulative sums, centered on the window mean —
    /// shows the target is unreachable.
    pub fn nearest(&self, query: &[f64]) -> Option<Match> {
        let m = query.len();
        if m == 0 || self.haystack.len() < m {
            return None;
        }
        let n_windows = self.n_windows(m);
        if !self.stats.all_finite() {
            // Degraded path for poisoned haystacks (see
            // `fill_profile_segment`): scan the per-window profile; NaN
            // distances never win the strict `<`.
            let profile = self.profile(query);
            let mut best = Match {
                start: 0,
                dist: f64::INFINITY,
            };
            for (i, &d) in profile.iter().enumerate() {
                if d < best.dist {
                    best = Match { start: i, dist: d };
                }
            }
            return Some(best);
        }
        let q = znormalize(query);
        // Suffix sums / sums-of-squares of the z-normalized query, for the
        // Cauchy–Schwarz abandonment bound: q1s[j] = Σ_{t≥j} q[t],
        // q2s[j] = Σ_{t≥j} q[t]² (both length m + 1).
        let mut q1s = vec![0.0f64; m + 1];
        let mut q2s = vec![0.0f64; m + 1];
        for j in (0..m).rev() {
            q1s[j] = q1s[j + 1] + q[j];
            q2s[j] = q2s[j + 1] + q[j] * q[j];
        }
        let threads = parallel::gate(n_windows.saturating_mul(m), PAR_MIN_WINDOW_WORK);
        let ranges = parallel::chunk_ranges(n_windows, threads);
        let chunk_bests = parallel::map_with(threads, &ranges, |r| {
            let mut best = Match {
                start: 0,
                dist: f64::INFINITY, // squared during the scan
            };
            for i in r.clone() {
                let d2 = match self.pruned_sq_dist(&q, &q1s, &q2s, i, best.dist) {
                    Some(d2) => d2,
                    None => continue,
                };
                if d2 < best.dist {
                    best = Match { start: i, dist: d2 };
                }
            }
            best
        });
        // Merge chunk winners; ties go to the lowest start, matching the
        // serial first-strictly-smaller scan.
        let mut best = Match {
            start: 0,
            dist: f64::INFINITY,
        };
        for b in chunk_bests {
            if b.dist < best.dist || (b.dist == best.dist && b.start < best.start) {
                best = b;
            }
        }
        if !best.dist.is_finite() && n_windows > 0 {
            // Every window abandoned can't happen (the first never is), but
            // an empty range list can when n_windows == 0 — handled above.
            best = Match {
                start: 0,
                dist: self.window_sq_dist(&q, 0),
            };
        }
        best.dist = best.dist.sqrt();
        Some(best)
    }

    /// Squared distance of window `i`, or `None` when abandoned because it
    /// cannot strictly beat `best_d2`.
    #[inline]
    fn pruned_sq_dist(
        &self,
        q: &[f64],
        q1s: &[f64],
        q2s: &[f64],
        i: usize,
        best_d2: f64,
    ) -> Option<f64> {
        let m = q.len();
        let mf = m as f64;
        if self.stats.window_is_constant(i, m) {
            return if mf < best_d2 { Some(mf) } else { None };
        }
        let (mu, sd) = self.stats.window_mean_std(i, m);
        if sd <= CONSTANT_EPS {
            let d2 = mf;
            return if d2 < best_d2 { Some(d2) } else { None };
        }
        let x = &self.haystack[i..i + m];
        if !best_d2.is_finite() {
            let dot = dot_product(q, x);
            return Some((2.0 * (mf - dot / sd)).max(0.0));
        }
        // The window improves iff dot > need.
        let need = sd * (mf - best_d2 / 2.0);
        let mut dot = 0.0f64;
        let mut j = 0usize;
        while j < m {
            let e = (j + PRUNE_CHECK).min(m);
            dot += dot_product(&q[j..e], &x[j..e]);
            j = e;
            if j < m {
                // Remaining dot = q_rem·(x_rem − μ) + μ·Σq_rem, bounded by
                // Cauchy–Schwarz on the centered suffix (all O(1) from the
                // cumulative sums). Inflated by an epsilon so floating-point
                // rounding can never abandon a true winner.
                let (s_rem, ss_rem) = self.stats.window_sums(i + j, m - j);
                let centered = (ss_rem - 2.0 * mu * s_rem + (m - j) as f64 * mu * mu).max(0.0);
                let bound = (q2s[j] * centered).sqrt() * (1.0 + 1e-12) + 1e-12 + mu * q1s[j];
                if dot + bound < need {
                    return None;
                }
            }
        }
        let d2 = (2.0 * (mf - dot / sd)).max(0.0);
        if d2 < best_d2 {
            Some(d2)
        } else {
            None
        }
    }

    /// Top-`k` non-overlapping matches (exclusion zone `m/2`, the matrix
    /// profile convention), nearest-first. See [`top_k_neighbors`].
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<Match> {
        let m = query.len();
        if m == 0 || self.haystack.len() < m || k == 0 {
            return Vec::new();
        }
        let profile = self.profile(query);
        select_matches(&profile, m, k, f64::INFINITY)
    }

    /// All matches with distance `<= threshold`, nearest-first with the same
    /// exclusion zone as [`top_k`](Self::top_k). See [`matches_within`].
    pub fn within(&self, query: &[f64], threshold: f64) -> Vec<Match> {
        let m = query.len();
        if m == 0 || self.haystack.len() < m {
            return Vec::new();
        }
        let profile = self.profile(query);
        select_matches(&profile, m, usize::MAX, threshold)
    }
}

/// Greedy nearest-first selection with an exclusion zone, by a single sort.
///
/// Sorts window indices once by `(distance, index)` and walks them in order,
/// skipping indices blocked by an earlier pick's exclusion zone — exactly
/// the fixpoint the previous implementation reached by re-scanning the whole
/// profile for its minimum after every pick (O(k·n)); this is O(n log n)
/// once, plus O(m) blocking per pick. Tie distances resolve to the lower
/// index, matching `Iterator::min_by` (which keeps the first minimum).
fn select_matches(profile: &[f64], m: usize, limit: usize, threshold: f64) -> Vec<Match> {
    let excl = (m / 2).max(1);
    let mut order: Vec<u32> = (0..profile.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        profile[a as usize]
            .total_cmp(&profile[b as usize])
            .then(a.cmp(&b))
    });
    let mut blocked = vec![false; profile.len()];
    let mut out = Vec::new();
    for &i in &order {
        let i = i as usize;
        let d = profile[i];
        if d > threshold {
            break; // sorted: nothing later can qualify
        }
        if blocked[i] {
            continue;
        }
        out.push(Match { start: i, dist: d });
        if out.len() >= limit {
            break;
        }
        let lo = i.saturating_sub(excl);
        let hi = (i + excl + 1).min(profile.len());
        blocked[lo..hi].fill(true);
    }
    out
}

/// Nearest-first selection of non-overlapping matches from an
/// already-computed distance profile: top-`k` with the standard `m/2`
/// exclusion zone. Lets callers sweep `k` without recomputing the profile.
pub fn select_top_k(profile: &[f64], m: usize, k: usize) -> Vec<Match> {
    if k == 0 {
        return Vec::new();
    }
    select_matches(profile, m, k, f64::INFINITY)
}

/// Nearest-first selection of all matches with distance `<= threshold` from
/// an already-computed distance profile (exclusion zone `m/2`). Lets
/// callers sweep thresholds without recomputing the profile — the Fig 8
/// calibration loop.
pub fn select_within(profile: &[f64], m: usize, threshold: f64) -> Vec<Match> {
    select_matches(profile, m, usize::MAX, threshold)
}

/// Full z-normalized distance profile of `query` against every window of
/// `haystack`. One-shot wrapper over [`BatchProfile::profile`]; build the
/// engine yourself to amortize the statistics pass across queries.
pub fn distance_profile(query: &[f64], haystack: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m > 0, "query must be non-empty");
    if haystack.len() < m {
        return Vec::new();
    }
    BatchProfile::new(haystack).profile(query)
}

/// The pre-engine reference implementation, kept verbatim: z-normalize the
/// query once, then for every window recompute mean and standard deviation
/// from scratch and accumulate the dot product serially (`O(n·m)` with two
/// latency-bound passes per window).
///
/// Ground truth for the property tests, and the yardstick `bench_nn`
/// reports speedups against — which is why it deliberately does *not* use
/// the unrolled kernels of [`crate::distance`]. One documented divergence:
/// on *exactly constant* windows the engine applies the z-normalization
/// convention exactly (d² = m, via [`CumStats::window_is_constant`]), while
/// this reference relies on an epsilon test of the recomputed standard
/// deviation, which floating-point residue can push past `CONSTANT_EPS` on
/// large-valued windows — the reference then reports ≈ √(2m) instead of √m.
pub fn distance_profile_naive(query: &[f64], haystack: &[f64]) -> Vec<f64> {
    use crate::stats::mean_std;
    let m = query.len();
    assert!(m > 0, "query must be non-empty");
    if haystack.len() < m {
        return Vec::new();
    }
    let q = znormalize(query);
    let n_windows = haystack.len() - m + 1;
    let mut profile = Vec::with_capacity(n_windows);
    for i in 0..n_windows {
        let x = &haystack[i..i + m];
        let (_, sd) = mean_std(x);
        let d2 = if sd <= CONSTANT_EPS {
            m as f64
        } else {
            let dot: f64 = q.iter().zip(x).map(|(&a, &b)| a * b).sum();
            (2.0 * (m as f64 - dot / sd)).max(0.0)
        };
        profile.push(d2.sqrt());
    }
    profile
}

/// The single best match of `query` in `haystack` (z-normalized ED), with
/// best-so-far pruning. See [`BatchProfile::nearest`].
pub fn nearest_neighbor(query: &[f64], haystack: &[f64]) -> Option<Match> {
    if query.is_empty() || haystack.len() < query.len() {
        return None;
    }
    BatchProfile::new(haystack).nearest(query)
}

/// Top-`k` non-overlapping matches of `query` in `haystack`.
///
/// Applies an exclusion zone of `m/2` around each selected match (the matrix
/// profile convention) so the "500 nearest neighbors" of Fig 8 are 500
/// distinct events rather than 500 shifts of one event.
pub fn top_k_neighbors(query: &[f64], haystack: &[f64], k: usize) -> Vec<Match> {
    if query.is_empty() || haystack.len() < query.len() || k == 0 {
        return Vec::new();
    }
    BatchProfile::new(haystack).top_k(query, k)
}

/// All matches with distance `<= threshold`, greedily selected nearest-first
/// with the same exclusion zone as [`top_k_neighbors`].
///
/// This is the "any subsequence within 2.3 of the template is essentially
/// guaranteed to be dustbathing" operation of Fig 8.
pub fn matches_within(query: &[f64], haystack: &[f64], threshold: f64) -> Vec<Match> {
    if query.is_empty() || haystack.len() < query.len() {
        return Vec::new();
    }
    BatchProfile::new(haystack).within(query, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A haystack with an exact (shift/scale-transformed) copy of the query
    /// planted at a known offset.
    fn planted() -> (Vec<f64>, Vec<f64>, usize) {
        let query: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut hay: Vec<f64> = (0..200)
            .map(|i| ((i as f64) * 2654435761.0).cos() * 0.3 + 5.0)
            .collect();
        let at = 120;
        for (j, &q) in query.iter().enumerate() {
            hay[at + j] = 100.0 + 7.0 * q; // shifted & scaled copy
        }
        (query, hay, at)
    }

    #[test]
    fn nearest_neighbor_finds_planted_copy() {
        let (q, hay, at) = planted();
        let m = nearest_neighbor(&q, &hay).unwrap();
        assert_eq!(m.start, at);
        assert!(m.dist < 1e-6, "planted copy should be ~0, got {}", m.dist);
    }

    #[test]
    fn profile_length_is_window_count() {
        let (q, hay, _) = planted();
        let p = distance_profile(&q, &hay);
        assert_eq!(p.len(), hay.len() - q.len() + 1);
    }

    #[test]
    fn profile_on_short_haystack_is_empty() {
        assert!(distance_profile(&[1.0, 2.0, 3.0], &[1.0]).is_empty());
        assert!(nearest_neighbor(&[1.0, 2.0, 3.0], &[1.0]).is_none());
    }

    #[test]
    fn rolling_profile_matches_naive_reference() {
        let (q, hay, _) = planted();
        let rolling = distance_profile(&q, &hay);
        let naive = distance_profile_naive(&q, &hay);
        assert_eq!(rolling.len(), naive.len());
        for (i, (r, n)) in rolling.iter().zip(&naive).enumerate() {
            assert!((r - n).abs() < 1e-8, "window {i}: rolling {r} vs naive {n}");
        }
    }

    #[test]
    fn rolling_profile_handles_constant_windows() {
        // A haystack with a long constant run: those windows have sd ~ 0 and
        // must take the CONSTANT_EPS branch (d² = m), same as the reference.
        let q: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut hay = vec![3.25f64; 40];
        for (i, h) in hay.iter_mut().enumerate().skip(25) {
            *h = (i as f64 * 0.37).cos();
        }
        let rolling = distance_profile(&q, &hay);
        let naive = distance_profile_naive(&q, &hay);
        for (i, (r, n)) in rolling.iter().zip(&naive).enumerate() {
            assert!((r - n).abs() < 1e-8, "window {i}: {r} vs {n}");
        }
        // Fully-constant window: distance is exactly sqrt(m).
        assert!((rolling[0] - (q.len() as f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn batch_profile_amortizes_across_queries() {
        let (q, hay, _) = planted();
        let q2: Vec<f64> = (0..12).map(|i| ((i as f64) * 1.3).cos()).collect();
        let engine = BatchProfile::new(&hay);
        let batch = engine.profiles(&[&q, &q2]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], engine.profile(&q));
        assert_eq!(batch[1], engine.profile(&q2));
        assert_eq!(batch[0], distance_profile(&q, &hay));
    }

    #[test]
    fn engine_nearest_equals_profile_argmin() {
        let (q, hay, _) = planted();
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        let (argmin, &min) = profile
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let m = engine.nearest(&q).unwrap();
        assert_eq!(m.start, argmin);
        assert!((m.dist - min).abs() < 1e-9, "{} vs {}", m.dist, min);
    }

    #[test]
    fn pruned_nearest_agrees_on_adversarial_data() {
        // Strong trend + level shifts: the regime where the raw (uncentered)
        // Cauchy–Schwarz bound would be useless and a buggy centered bound
        // would mis-prune.
        let q: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.5).sin()).collect();
        let hay: Vec<f64> = (0..600)
            .map(|i| {
                let t = i as f64;
                0.05 * t
                    + ((t * 0.11).sin() + (t * 0.013).cos()) * 3.0
                    + if i % 97 < 20 { 50.0 } else { 0.0 }
            })
            .collect();
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        let (argmin, &min) = profile
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let m = engine.nearest(&q).unwrap();
        assert_eq!(m.start, argmin);
        assert!((m.dist - min).abs() < 1e-9);
    }

    #[test]
    fn parallel_profile_is_bit_identical_to_serial() {
        let (q, hay, _) = planted();
        let engine = BatchProfile::new(&hay);
        let serial = engine.profile_with(1, &q);
        for threads in [2, 3, 7] {
            assert_eq!(
                engine.profile_with(threads, &q),
                serial,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn top_k_respects_exclusion_zone() {
        let (q, hay, _) = planted();
        let ms = top_k_neighbors(&q, &hay, 5);
        assert_eq!(ms.len(), 5);
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                let gap = ms[i].start.abs_diff(ms[j].start);
                assert!(gap > q.len() / 2, "matches {i},{j} too close: gap {gap}");
            }
        }
        // Results come out nearest-first.
        for w in ms.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    /// The previous implementation of greedy selection: re-scan the profile
    /// for its minimum after every pick, masking exclusion zones with
    /// infinities. Ground truth for the sort-once selection.
    fn select_by_rescan(mut profile: Vec<f64>, m: usize, k: usize, threshold: f64) -> Vec<Match> {
        let excl = (m / 2).max(1);
        let mut out = Vec::new();
        while out.len() < k {
            let (best_i, &best_d) = match profile
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            {
                Some(x) => x,
                None => break,
            };
            if best_d > threshold {
                break;
            }
            out.push(Match {
                start: best_i,
                dist: best_d,
            });
            let lo = best_i.saturating_sub(excl);
            let hi = (best_i + excl + 1).min(profile.len());
            profile[lo..hi].fill(f64::INFINITY);
        }
        out
    }

    #[test]
    fn sort_once_selection_matches_rescan_reference() {
        let (q, hay, _) = planted();
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        for k in [1, 3, 5, 100] {
            let fast = engine.top_k(&q, k);
            let slow = select_by_rescan(profile.clone(), q.len(), k, f64::INFINITY);
            assert_eq!(fast, slow, "k = {k}");
        }
        for thr in [0.5, 2.0, 1e9] {
            let fast = engine.within(&q, thr);
            let slow = select_by_rescan(profile.clone(), q.len(), usize::MAX, thr);
            assert_eq!(fast, slow, "threshold = {thr}");
        }
    }

    #[test]
    fn matches_within_only_returns_under_threshold() {
        let (q, hay, at) = planted();
        let ms = matches_within(&q, &hay, 0.5);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start, at);
    }

    #[test]
    fn matches_within_large_threshold_tiles_haystack() {
        let (q, hay, _) = planted();
        let ms = matches_within(&q, &hay, f64::MAX / 4.0);
        // Every selection removes ~m/2*2 positions; expect roughly n/m*2 picks.
        assert!(ms.len() >= (hay.len() - q.len()) / q.len());
    }

    #[test]
    fn top_k_zero_is_empty() {
        let (q, hay, _) = planted();
        assert!(top_k_neighbors(&q, &hay, 0).is_empty());
    }

    #[test]
    fn nan_in_haystack_poisons_only_touching_windows() {
        // A NaN poisons the cumulative sums from its position on; the engine
        // must detect that and fall back to per-window statistics so only
        // windows *containing* the NaN are non-finite — in particular, no
        // later window may silently report distance 0.
        let q: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut hay: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).cos()).collect();
        hay[30] = f64::NAN;
        let engine = BatchProfile::new(&hay);
        let profile = engine.profile(&q);
        // Pre-engine convention, reproduced by the fallback: `mean_std`'s
        // variance clamp swallows the NaN, so NaN-touching windows land on
        // the constant-window branch (d = sqrt(m)).
        let sqrt_m = (q.len() as f64).sqrt();
        for (i, d) in profile.iter().enumerate() {
            let touches = i <= 30 && 30 < i + q.len();
            if touches {
                assert!((d - sqrt_m).abs() < 1e-9, "NaN window {i}: {d}");
            } else {
                assert!(d.is_finite() && *d > 0.0, "window {i} clean but got {d}");
            }
        }
        // Clean windows match a NaN-free engine (the poison must not leak
        // past the windows that touch the bad sample; tolerance because the
        // fallback recomputes statistics per window instead of from the
        // cumulative sums).
        let mut clean_hay = hay.clone();
        clean_hay[30] = 0.25;
        let clean = BatchProfile::new(&clean_hay).profile(&q);
        for i in 0..profile.len() {
            if !(i <= 30 && 30 < i + q.len()) {
                assert!(
                    (profile[i] - clean[i]).abs() < 1e-9,
                    "window {i} drifted: {} vs {}",
                    profile[i],
                    clean[i]
                );
            }
        }
        let m = engine.nearest(&q).unwrap();
        assert!(m.dist.is_finite());
    }

    #[test]
    fn cum_stats_window_mean_std_match_direct() {
        use crate::stats::mean_std;
        let xs: Vec<f64> = (0..50)
            .map(|i| ((i as f64) * 0.77).sin() * 4.0 + 2.0)
            .collect();
        let cs = CumStats::new(&xs);
        assert_eq!(cs.len(), xs.len());
        for start in [0usize, 7, 30] {
            for m in [1usize, 5, 20] {
                let (mu, sd) = cs.window_mean_std(start, m);
                let (dmu, dsd) = mean_std(&xs[start..start + m]);
                assert!((mu - dmu).abs() < 1e-9, "mu {mu} vs {dmu}");
                // sqrt amplifies the cumulative-difference cancellation near
                // zero variance (m = 1), hence the looser sd tolerance.
                assert!((sd - dsd).abs() < 1e-6, "sd {sd} vs {dsd}");
            }
        }
    }
}
