//! Nearest-neighbor subsequence search in long streams.
//!
//! This is the workhorse of the homophone experiment (Fig 5: "search for the
//! GunPoint exemplar's nearest neighbors inside an hour of eye-movement
//! data") and the dustbathing study (Fig 8: 500 nearest neighbors of a
//! template in a long accelerometer recording).
//!
//! Matches are found under **z-normalized Euclidean distance**, computed with
//! the running-statistics dot-product identity (the kernel inside MASS /
//! the UCR Suite) so each window costs one pass and no allocation.

use crate::distance::znormalized_sq_dist;
use crate::znorm::znormalize;

/// One subsequence match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Start offset of the window in the haystack.
    pub start: usize,
    /// Z-normalized Euclidean distance (not squared).
    pub dist: f64,
}

/// Full z-normalized distance profile of `query` against every window of
/// `haystack`. `profile[i] = d(znorm(query), znorm(haystack[i..i+m]))`.
///
/// O(n·m); the experiments in this workspace run at n up to a few million,
/// which completes in seconds in release mode.
pub fn distance_profile(query: &[f64], haystack: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m > 0, "query must be non-empty");
    if haystack.len() < m {
        return Vec::new();
    }
    let q = znormalize(query);
    let n_windows = haystack.len() - m + 1;
    let mut profile = Vec::with_capacity(n_windows);
    for i in 0..n_windows {
        profile.push(znormalized_sq_dist(&q, &haystack[i..i + m]).sqrt());
    }
    profile
}

/// The single best match of `query` in `haystack` (z-normalized ED).
pub fn nearest_neighbor(query: &[f64], haystack: &[f64]) -> Option<Match> {
    let m = query.len();
    if m == 0 || haystack.len() < m {
        return None;
    }
    let q = znormalize(query);
    let mut best = Match {
        start: 0,
        dist: f64::INFINITY,
    };
    for i in 0..=haystack.len() - m {
        let d2 = znormalized_sq_dist(&q, &haystack[i..i + m]);
        if d2 < best.dist {
            best = Match { start: i, dist: d2 };
        }
    }
    best.dist = best.dist.sqrt();
    Some(best)
}

/// Top-`k` non-overlapping matches of `query` in `haystack`.
///
/// Applies an exclusion zone of `m/2` around each selected match (the matrix
/// profile convention) so the "500 nearest neighbors" of Fig 8 are 500
/// distinct events rather than 500 shifts of one event.
pub fn top_k_neighbors(query: &[f64], haystack: &[f64], k: usize) -> Vec<Match> {
    let m = query.len();
    if m == 0 || haystack.len() < m || k == 0 {
        return Vec::new();
    }
    let mut profile = distance_profile(query, haystack);
    let excl = (m / 2).max(1);
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let (best_i, &best_d) = match profile
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        {
            Some(x) => x,
            None => break,
        };
        out.push(Match {
            start: best_i,
            dist: best_d,
        });
        let lo = best_i.saturating_sub(excl);
        let hi = (best_i + excl + 1).min(profile.len());
        profile[lo..hi].fill(f64::INFINITY);
    }
    out
}

/// All matches with distance `<= threshold`, greedily selected nearest-first
/// with the same exclusion zone as [`top_k_neighbors`].
///
/// This is the "any subsequence within 2.3 of the template is essentially
/// guaranteed to be dustbathing" operation of Fig 8.
pub fn matches_within(query: &[f64], haystack: &[f64], threshold: f64) -> Vec<Match> {
    let m = query.len();
    if m == 0 || haystack.len() < m {
        return Vec::new();
    }
    let mut profile = distance_profile(query, haystack);
    let excl = (m / 2).max(1);
    let mut out = Vec::new();
    while let Some((best_i, &best_d)) = profile
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
    {
        if best_d > threshold {
            break;
        }
        out.push(Match {
            start: best_i,
            dist: best_d,
        });
        let lo = best_i.saturating_sub(excl);
        let hi = (best_i + excl + 1).min(profile.len());
        profile[lo..hi].fill(f64::INFINITY);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A haystack with an exact (shift/scale-transformed) copy of the query
    /// planted at a known offset.
    fn planted() -> (Vec<f64>, Vec<f64>, usize) {
        let query: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut hay: Vec<f64> = (0..200)
            .map(|i| ((i as f64) * 2654435761.0).cos() * 0.3 + 5.0)
            .collect();
        let at = 120;
        for (j, &q) in query.iter().enumerate() {
            hay[at + j] = 100.0 + 7.0 * q; // shifted & scaled copy
        }
        (query, hay, at)
    }

    #[test]
    fn nearest_neighbor_finds_planted_copy() {
        let (q, hay, at) = planted();
        let m = nearest_neighbor(&q, &hay).unwrap();
        assert_eq!(m.start, at);
        assert!(m.dist < 1e-6, "planted copy should be ~0, got {}", m.dist);
    }

    #[test]
    fn profile_length_is_window_count() {
        let (q, hay, _) = planted();
        let p = distance_profile(&q, &hay);
        assert_eq!(p.len(), hay.len() - q.len() + 1);
    }

    #[test]
    fn profile_on_short_haystack_is_empty() {
        assert!(distance_profile(&[1.0, 2.0, 3.0], &[1.0]).is_empty());
        assert!(nearest_neighbor(&[1.0, 2.0, 3.0], &[1.0]).is_none());
    }

    #[test]
    fn top_k_respects_exclusion_zone() {
        let (q, hay, _) = planted();
        let ms = top_k_neighbors(&q, &hay, 5);
        assert_eq!(ms.len(), 5);
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                let gap = ms[i].start.abs_diff(ms[j].start);
                assert!(gap > q.len() / 2, "matches {i},{j} too close: gap {gap}");
            }
        }
        // Results come out nearest-first.
        for w in ms.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn matches_within_only_returns_under_threshold() {
        let (q, hay, at) = planted();
        let ms = matches_within(&q, &hay, 0.5);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start, at);
    }

    #[test]
    fn matches_within_large_threshold_tiles_haystack() {
        let (q, hay, _) = planted();
        let ms = matches_within(&q, &hay, f64::MAX / 4.0);
        // Every selection removes ~m/2*2 positions; expect roughly n/m*2 picks.
        assert!(ms.len() >= (hay.len() - q.len()) / q.len());
    }

    #[test]
    fn top_k_zero_is_empty() {
        let (q, hay, _) = planted();
        assert!(top_k_neighbors(&q, &hay, 0).is_empty());
    }
}
