//! The UCR-format labeled dataset: equal-length, aligned exemplars.
//!
//! This is deliberately a faithful model of the format the paper critiques
//! (Fig 1): "exemplars are all of the same length and carefully aligned".
//! Generators in `etsc-datasets` produce data in this shape; the audit crate
//! then demonstrates what breaks when such data meets a stream.

use crate::error::{CoreError, Result};
use crate::znorm::{is_znormalized, znormalize_in_place};

/// Integer class label (UCR datasets use small integers; we use `usize`
/// starting at 0).
pub type ClassLabel = usize;

/// A labeled, equal-length time series dataset in the UCR format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UcrDataset {
    series_len: usize,
    data: Vec<Vec<f64>>,
    labels: Vec<ClassLabel>,
}

impl UcrDataset {
    /// Build a dataset, validating the UCR invariants: non-empty, one label
    /// per exemplar, all exemplars the same length.
    pub fn new(data: Vec<Vec<f64>>, labels: Vec<ClassLabel>) -> Result<Self> {
        if data.is_empty() {
            return Err(CoreError::InvalidDataset("no exemplars".into()));
        }
        if data.len() != labels.len() {
            return Err(CoreError::InvalidDataset(format!(
                "{} exemplars but {} labels",
                data.len(),
                labels.len()
            )));
        }
        let series_len = data[0].len();
        if series_len == 0 {
            return Err(CoreError::InvalidDataset("zero-length exemplars".into()));
        }
        if let Some(bad) = data.iter().position(|s| s.len() != series_len) {
            return Err(CoreError::InvalidDataset(format!(
                "exemplar {bad} has length {} but expected {series_len}",
                data[bad].len()
            )));
        }
        Ok(Self {
            series_len,
            data,
            labels,
        })
    }

    /// Number of exemplars.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the dataset holds no exemplars (cannot occur for a validated
    /// dataset; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Length every exemplar shares.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Exemplar `i`.
    pub fn series(&self, i: usize) -> &[f64] {
        &self.data[i]
    }

    /// Label of exemplar `i`.
    pub fn label(&self, i: usize) -> ClassLabel {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[ClassLabel] {
        &self.labels
    }

    /// Iterate `(series, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], ClassLabel)> {
        self.data
            .iter()
            .map(|s| s.as_slice())
            .zip(self.labels.iter().copied())
    }

    /// The number of distinct classes, assuming labels are `0..n_classes`.
    pub fn n_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Count of exemplars per class (indexed by label).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Empirical class priors.
    pub fn class_priors(&self) -> Vec<f64> {
        let n = self.len() as f64;
        self.class_counts()
            .into_iter()
            .map(|c| c as f64 / n)
            .collect()
    }

    /// Z-normalize every exemplar in place (the UCR preprocessing step).
    pub fn znormalize(&mut self) {
        for s in &mut self.data {
            znormalize_in_place(s);
        }
    }

    /// Are all exemplars z-normalized to the given tolerance?
    pub fn is_znormalized(&self, tol: f64) -> bool {
        self.data.iter().all(|s| is_znormalized(s, tol))
    }

    /// Apply a transformation to every exemplar (e.g. the denormalization of
    /// Fig 6). The transform must preserve length.
    pub fn map_series<F: FnMut(usize, &mut Vec<f64>)>(&mut self, mut f: F) {
        for (i, s) in self.data.iter_mut().enumerate() {
            f(i, s);
            assert_eq!(
                s.len(),
                self.series_len,
                "map_series must preserve series length"
            );
        }
    }

    /// Truncate every exemplar to its first `len` points (prefix dataset).
    ///
    /// Used by the Fig 9 experiment: classify using only a prefix, with
    /// honest re-normalization left to the caller.
    pub fn prefix(&self, len: usize) -> Result<Self> {
        if len == 0 || len > self.series_len {
            return Err(CoreError::InvalidParameter(format!(
                "prefix length {len} outside 1..={}",
                self.series_len
            )));
        }
        Ok(Self {
            series_len: len,
            data: self.data.iter().map(|s| s[..len].to_vec()).collect(),
            labels: self.labels.clone(),
        })
    }

    /// Select a subset of exemplars by index.
    pub fn subset(&self, idx: &[usize]) -> Result<Self> {
        if idx.is_empty() {
            return Err(CoreError::InvalidDataset("empty subset".into()));
        }
        if let Some(&bad) = idx.iter().find(|&&i| i >= self.len()) {
            return Err(CoreError::InvalidParameter(format!(
                "index {bad} out of bounds ({} exemplars)",
                self.len()
            )));
        }
        Ok(Self {
            series_len: self.series_len,
            data: idx.iter().map(|&i| self.data[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        })
    }

    /// Concatenate two datasets with identical series lengths.
    pub fn concat(&self, other: &Self) -> Result<Self> {
        if self.series_len != other.series_len {
            return Err(CoreError::LengthMismatch {
                expected: self.series_len,
                actual: other.series_len,
            });
        }
        let mut data = self.data.clone();
        data.extend(other.data.iter().cloned());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Self::new(data, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UcrDataset {
        UcrDataset::new(
            vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![0.0, 0.0, 1.0],
                vec![2.0, 1.0, 0.0],
            ],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_invariants() {
        assert!(UcrDataset::new(vec![], vec![]).is_err());
        assert!(UcrDataset::new(vec![vec![1.0]], vec![0, 1]).is_err());
        assert!(UcrDataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]).is_err());
        assert!(UcrDataset::new(vec![vec![]], vec![0]).is_err());
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.series_len(), 3);
        assert_eq!(d.series(1), &[4.0, 5.0, 6.0]);
        assert_eq!(d.label(2), 0);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.class_priors(), vec![0.5, 0.5]);
        assert!(!d.is_empty());
    }

    #[test]
    fn znormalize_all() {
        let mut d = toy();
        assert!(!d.is_znormalized(1e-9));
        d.znormalize();
        assert!(d.is_znormalized(1e-9));
    }

    #[test]
    fn prefix_truncates() {
        let d = toy();
        let p = d.prefix(2).unwrap();
        assert_eq!(p.series_len(), 2);
        assert_eq!(p.series(0), &[1.0, 2.0]);
        assert_eq!(p.labels(), d.labels());
        assert!(d.prefix(0).is_err());
        assert!(d.prefix(4).is_err());
    }

    #[test]
    fn subset_selects() {
        let d = toy();
        let s = d.subset(&[3, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.series(0), &[2.0, 1.0, 0.0]);
        assert_eq!(s.label(1), 0);
        assert!(d.subset(&[]).is_err());
        assert!(d.subset(&[9]).is_err());
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.series(5), d.series(1));
        let other = UcrDataset::new(vec![vec![1.0, 2.0]], vec![0]).unwrap();
        assert!(d.concat(&other).is_err());
    }

    #[test]
    fn map_series_transforms() {
        let mut d = toy();
        d.map_series(|_, s| s.iter_mut().for_each(|x| *x += 10.0));
        assert_eq!(d.series(0), &[11.0, 12.0, 13.0]);
    }

    #[test]
    fn iter_yields_pairs() {
        let d = toy();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1].1, 1);
    }
}
