//! Shared deterministic hashing: FNV-1a 64 and stream → shard routing.
//!
//! Two subsystems need the *same* hash for different reasons — the
//! persistence envelope checksums its bytes with FNV-1a 64, and the serving
//! layer routes stream ids to shards — and both need it to be stable across
//! processes, platforms, and releases (a snapshot written yesterday must
//! checksum identically today; a stream must land on the same shard on every
//! host that computes its route). `std::collections::hash_map::DefaultHasher`
//! guarantees none of that, so the workspace pins this one tiny function
//! here instead.
//!
//! FNV-1a is not cryptographic: it guards against truncation, bit rot, and
//! accidental collisions in shard routing, not adversaries.

/// FNV-1a 64 offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_64_with(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a 64 hash from an existing `state` over more bytes.
///
/// `fnv1a_64_with(fnv1a_64_with(FNV_OFFSET, a), b) == fnv1a_64(a ++ b)`, so
/// callers hashing a logically contiguous record held in separate buffers
/// (e.g. a wire frame's header and payload) can checksum it without
/// concatenating.
pub fn fnv1a_64_with(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64 of a `u64`'s little-endian bytes — the stream-id hash.
pub fn fnv1a_u64(v: u64) -> u64 {
    fnv1a_64(&v.to_le_bytes())
}

/// Finalize a 64-bit hash with the SplitMix64 avalanche mixer.
///
/// FNV-1a trades avalanche quality for simplicity: hashes of *similar*
/// inputs (endpoint strings differing in one digit, small sequential
/// counters) land close together, which is harmless for checksums and
/// modulo reduction but ruins uses that need the full 64-bit value to look
/// uniform — e.g. positions on a consistent-hash ring, where correlated
/// points produce badly skewed arcs. Passing the FNV hash through this
/// mixer (the SplitMix64 finalizer; Stafford's Mix13 constants) decorrelates
/// it. Stable across processes and platforms, like everything in this
/// module.
pub fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Deterministic stream → shard assignment: hash the id, reduce modulo the
/// shard count. Stable across processes and platforms; every host that
/// computes a route for `stream` under the same `shards` agrees.
///
/// The raw id is hashed rather than reduced directly so that structured id
/// spaces (sequential ids, ids sharing low bits) still spread across shards.
///
/// # Panics
///
/// Panics if `shards == 0` (there is no meaningful answer); callers
/// validate their shard count at configuration time.
pub fn shard_of(stream: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_of: shard count must be positive");
    (fnv1a_u64(stream) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_continuation_matches_one_shot() {
        let whole = b"frame-header|payload-bytes";
        let (head, tail) = whole.split_at(12);
        assert_eq!(
            fnv1a_64_with(fnv1a_64(head), tail),
            fnv1a_64(whole),
            "split hashing must equal hashing the concatenation"
        );
        assert_eq!(fnv1a_64_with(FNV_OFFSET, whole), fnv1a_64(whole));
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            for id in [0u64, 1, 2, 1_000_003, u64::MAX] {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "same inputs, same shard");
            }
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        // Not a statistical claim, just a guard against a degenerate route
        // (e.g. everything landing on shard 0).
        let shards = 8;
        let mut seen = vec![false; shards];
        for id in 0..64u64 {
            seen[shard_of(id, shards)] = true;
        }
        assert!(
            seen.iter().filter(|&&b| b).count() >= shards / 2,
            "64 sequential ids should touch at least half of 8 shards"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_panics() {
        shard_of(1, 0);
    }

    #[test]
    fn mix64_decorrelates_similar_inputs() {
        // Sequential inputs must not produce sequential (or even
        // high-bit-equal) outputs: check the top bytes of mixed
        // consecutive values take many distinct values.
        let mut top_bytes = std::collections::BTreeSet::new();
        for v in 0..256u64 {
            top_bytes.insert((mix64(fnv1a_u64(v)) >> 56) as u8);
        }
        assert!(
            top_bytes.len() > 128,
            "256 mixed sequential hashes hit only {} distinct top bytes",
            top_bytes.len()
        );
        // Deterministic: same input, same output.
        assert_eq!(mix64(12345), mix64(12345));
    }
}
