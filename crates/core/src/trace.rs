//! Request-scoped distributed tracing and the structured event log: the
//! zero-dependency, lock-free observability core the cluster, node,
//! shard, and alarm layers all record into.
//!
//! # What lives here
//!
//! * [`ring`] — the bounded wait-free span ring: fixed-size slots,
//!   drop-oldest overwrite with exact drop accounting, per-thread buffers
//!   mergeable at export.
//! * [`span`] — the [`Span`] record and the closed [`SpanKind`]
//!   vocabulary of pipeline stages (client send → node decode → shard
//!   enqueue → drain → alarm emission, plus checkpoint / migration /
//!   failover redelivery).
//! * [`context`] — the 16-byte [`TraceContext`] that carries a trace id
//!   and parent span across the wire (protocol v3's optional trailing
//!   field; zero bytes when tracing is off).
//! * [`event`] — the typed, severity-filtered [`EventLog`] of operational
//!   events (failovers, fault injections, retries, migrations,
//!   checkpoints, queue-full rejections), rendered as text or JSON lines.
//! * [`export`] — Chrome `trace_event` JSON export for span sets.
//!
//! # Determinism contract
//!
//! Tracing obeys the same invariant the metrics plane does: **recording
//! never touches alarm bytes**. Span ids come from a deterministic seeded
//! counter, timestamps come from the injected
//! [`Clock`](crate::metrics::Clock), and a disabled clock short-circuits
//! every site — no spans, no events, no wire context, zero bytes of
//! overhead. The e2e suites assert per-stream alarm sequences are
//! bit-identical with tracing disabled, monotonic, and manual.
//!
//! # Using a tracer
//!
//! A [`Tracer`] is a cheap-to-clone shared handle (clones share the ring,
//! the event log, and the id counter), so one tracer can be handed to a
//! runtime, its node, and a supervisor and every span lands in one buffer:
//!
//! ```
//! use etsc_core::metrics::Clock;
//! use etsc_core::trace::{SpanKind, Tracer, TracerConfig};
//!
//! let clock = Clock::manual();
//! let tracer = Tracer::new(TracerConfig {
//!     clock: clock.clone(),
//!     ..TracerConfig::default()
//! });
//!
//! // A root span and a child under it.
//! let trace_id = tracer.new_trace_id();
//! let t0 = tracer.start();
//! clock.advance_ns(500);
//! let root = tracer.span(SpanKind::ClientIngest, trace_id, 0, t0, 0);
//! let t1 = tracer.start();
//! clock.advance_ns(200);
//! tracer.span(SpanKind::ShardEnqueue, trace_id, root, t1, 42);
//!
//! let spans = tracer.spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[1].parent_id, root);
//! assert_eq!(spans[1].dur_ns, 200);
//! ```

pub mod context;
pub mod event;
pub mod export;
pub mod ring;
pub mod span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::Clock;

pub use context::TraceContext;
pub use event::{Event, EventKind, EventLog, Severity};
pub use ring::SpanRing;
pub use span::{Span, SpanKind};

/// Construction parameters for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Span ring capacity (rounded up to a power of two). Default 4096.
    pub span_capacity: usize,
    /// Event log capacity (rounded up to a power of two). Default 1024.
    pub event_capacity: usize,
    /// First id the deterministic counter hands out (clamped to ≥ 1,
    /// because 0 means "no span"). Default 1.
    pub id_seed: u64,
    /// The clock every span timestamp and event time reads;
    /// [`Clock::disabled`] turns the whole tracer into a no-op. Default
    /// monotonic.
    pub clock: Clock,
    /// Events below this severity are discarded. Default
    /// [`Severity::Debug`] (keep everything).
    pub min_severity: Severity,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            span_capacity: 4096,
            event_capacity: 1024,
            id_seed: 1,
            clock: Clock::monotonic(),
            min_severity: Severity::Debug,
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    spans: SpanRing,
    events: EventLog,
    next_id: AtomicU64,
    clock: Clock,
}

/// The shared tracing handle: a span ring, an event log, a deterministic
/// id counter, and the injected clock, behind one `Arc`. Cloning shares
/// all four, so every layer of a process records into the same buffers.
///
/// All recording is `&self`, wait-free, and silently skipped when the
/// clock is disabled (see the [module docs](self) for the contract).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TracerConfig::default())
    }
}

impl Tracer {
    /// Build a tracer from `cfg`.
    pub fn new(cfg: TracerConfig) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                spans: SpanRing::new(cfg.span_capacity),
                events: EventLog::new(cfg.event_capacity, cfg.min_severity),
                next_id: AtomicU64::new(cfg.id_seed.max(1)),
                clock: cfg.clock,
            }),
        }
    }

    /// Whether this tracer records anything: true unless its clock is
    /// disabled. Sites hoist this check and skip their span bookkeeping
    /// entirely when it is false.
    pub fn enabled(&self) -> bool {
        !self.inner.clock.is_disabled()
    }

    /// The injected clock (shared with every clone).
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Current clock time in nanoseconds (0 when disabled) — the start
    /// timestamp for a span about to be measured.
    pub fn start(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Allocate a fresh trace id from the deterministic counter (same
    /// sequence as span ids — both are unique, nonzero, and monotone).
    pub fn new_trace_id(&self) -> u64 {
        self.next_id()
    }

    /// Pre-allocate a span id (0 when disabled) so it can be propagated —
    /// e.g. as a wire [`TraceContext`]'s parent — before the span itself
    /// is recorded with [`span_with_id`](Self::span_with_id) once its
    /// duration is known.
    pub fn alloc_span_id(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.next_id()
    }

    /// Record a span under an id from [`alloc_span_id`](Self::alloc_span_id),
    /// ending now. No-op when disabled or when `span_id` is 0 (the
    /// disabled-allocation sentinel), so the two calls compose without the
    /// caller re-checking enablement.
    pub fn span_with_id(
        &self,
        span_id: u64,
        kind: SpanKind,
        trace_id: u64,
        parent_id: u64,
        start_ns: u64,
        arg: u64,
    ) {
        if !self.enabled() || span_id == 0 {
            return;
        }
        let end_ns = self.inner.clock.now_ns();
        self.inner.spans.record(
            Span {
                trace_id,
                span_id,
                parent_id,
                kind,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                arg,
            }
            .pack(),
        );
    }

    fn next_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a span that started at `start_ns` (from [`start`](Self::start))
    /// and ends now. Returns the new span's id, or 0 (and records nothing)
    /// when the tracer is disabled.
    pub fn span(
        &self,
        kind: SpanKind,
        trace_id: u64,
        parent_id: u64,
        start_ns: u64,
        arg: u64,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let end = self.inner.clock.now_ns();
        self.span_at(kind, trace_id, parent_id, start_ns, end, arg)
    }

    /// Record a span with explicit start and end timestamps (end is
    /// clamped to start). Returns the new span's id, or 0 when disabled.
    pub fn span_at(
        &self,
        kind: SpanKind,
        trace_id: u64,
        parent_id: u64,
        start_ns: u64,
        end_ns: u64,
        arg: u64,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let span_id = self.next_id();
        self.inner.spans.record(
            Span {
                trace_id,
                span_id,
                parent_id,
                kind,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                arg,
            }
            .pack(),
        );
        span_id
    }

    /// Log one event at the current clock time (no-op when disabled or
    /// below the log's severity floor).
    pub fn event(&self, severity: Severity, kind: EventKind, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.events.log(Event {
            time_ns: self.inner.clock.now_ns(),
            severity,
            kind,
            a,
            b,
        });
    }

    /// Every retained span, oldest first (record order).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .spans
            .snapshot()
            .iter()
            .filter_map(|(_, words)| Span::unpack(words))
            .collect()
    }

    /// Every retained event, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.events()
    }

    /// Spans evicted from the ring (drop-oldest plus contention drops).
    pub fn dropped_spans(&self) -> u64 {
        self.inner.spans.dropped()
    }

    /// Events evicted from the event log.
    pub fn dropped_events(&self) -> u64 {
        self.inner.events.dropped()
    }

    /// Render the retained spans as Chrome `trace_event` JSON, stamped
    /// with `process` (see [`export::chrome_trace_json`]).
    pub fn export_chrome(&self, process: &str) -> String {
        export::chrome_trace_json(process, &self.spans(), self.dropped_spans())
    }

    /// Render the retained events as human text, one line per event.
    pub fn events_text(&self) -> String {
        self.inner.events.render_text()
    }

    /// Render the retained events as JSON lines.
    pub fn events_json_lines(&self) -> String {
        self.inner.events.render_json_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disabled_tracer_records_nothing_and_returns_zero_ids() {
        let tracer = Tracer::new(TracerConfig {
            clock: Clock::disabled(),
            ..TracerConfig::default()
        });
        assert!(!tracer.enabled());
        let id = tracer.span(SpanKind::ClientIngest, 1, 0, 0, 0);
        assert_eq!(id, 0);
        tracer.event(Severity::Error, EventKind::FailoverDeclared, 1, 1);
        assert!(tracer.spans().is_empty());
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn clones_share_ring_ids_and_clock() {
        let clock = Clock::manual();
        let tracer = Tracer::new(TracerConfig {
            clock: clock.clone(),
            id_seed: 100,
            ..TracerConfig::default()
        });
        let twin = tracer.clone();
        let trace = tracer.new_trace_id();
        assert_eq!(trace, 100);
        let t0 = twin.start();
        clock.advance_ns(50);
        let root = twin.span(SpanKind::NodeIngest, trace, 0, t0, 7);
        assert_eq!(root, 101);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span_id, root);
        assert_eq!(spans[0].dur_ns, 50);
        assert_eq!(spans[0].arg, 7);
    }

    #[test]
    fn preallocated_span_ids_record_later_and_disable_cleanly() {
        let clock = Clock::manual();
        let tracer = Tracer::new(TracerConfig {
            clock: clock.clone(),
            ..TracerConfig::default()
        });
        let trace = tracer.new_trace_id();
        let id = tracer.alloc_span_id();
        assert_ne!(id, 0);
        let t0 = tracer.start();
        clock.advance_ns(30);
        // The child can reference the parent id before the parent span is
        // recorded — that is the whole point of pre-allocation.
        let child = tracer.span(SpanKind::ShardEnqueue, trace, id, t0, 0);
        tracer.span_with_id(id, SpanKind::NodeIngest, trace, 0, t0, 9);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.span_id == id && s.dur_ns == 30));
        assert!(spans
            .iter()
            .any(|s| s.span_id == child && s.parent_id == id));

        let off = Tracer::new(TracerConfig {
            clock: Clock::disabled(),
            ..TracerConfig::default()
        });
        assert_eq!(off.alloc_span_id(), 0);
        off.span_with_id(0, SpanKind::NodeIngest, 1, 0, 0, 0);
        assert!(off.spans().is_empty());
    }

    #[test]
    fn id_seed_zero_still_hands_out_nonzero_ids() {
        let tracer = Tracer::new(TracerConfig {
            id_seed: 0,
            ..TracerConfig::default()
        });
        assert_eq!(tracer.new_trace_id(), 1);
    }

    #[test]
    fn export_includes_every_span_and_the_drop_counter() {
        let clock = Clock::manual();
        let tracer = Tracer::new(TracerConfig {
            span_capacity: 2,
            clock: clock.clone(),
            ..TracerConfig::default()
        });
        let trace = tracer.new_trace_id();
        for shard in 0..5u64 {
            let t0 = tracer.start();
            clock.advance_ns(10);
            tracer.span(SpanKind::ShardDrain, trace, 0, t0, shard);
        }
        assert_eq!(tracer.dropped_spans(), 3);
        let json = tracer.export_chrome("test");
        assert!(json.contains("\"dropped_spans\":3"));
        assert_eq!(json.matches("\"name\":\"shard_drain\"").count(), 2);
    }
}
