//! Dynamic Time Warping with a Sakoe–Chiba band, plus the LB_Kim and
//! LB_Keogh lower bounds used to accelerate 1NN-DTW.
//!
//! DTW is the companion measure to Euclidean distance throughout the UCR/TSC
//! literature; the paper's normalization argument (Section 4, Appendix B Q4)
//! applies to both, so the classifiers crate exposes 1NN under either.

use crate::error::{CoreError, Result};

/// DTW distance (not squared) between two series under a Sakoe–Chiba band.
///
/// `band` is the maximum allowed index offset `|i - j|`; `None` means
/// unconstrained. Uses an O(band) rolling-row implementation.
pub fn dtw(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    dtw_sq(a, b, band).sqrt()
}

/// Squared DTW distance (sum of squared pointwise costs along the optimal
/// warping path).
pub fn dtw_sq(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let n = a.len();
    let m = b.len();
    // The band must be at least |n - m| for a path to exist.
    let w = band.unwrap_or(n.max(m)).max(n.abs_diff(m));

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW with early abandoning: returns `None` once every cell of a row
/// exceeds `cutoff_sq` (a squared distance), meaning the final distance must
/// exceed the cutoff.
pub fn dtw_sq_early_abandon(
    a: &[f64],
    b: &[f64],
    band: Option<usize>,
    cutoff_sq: f64,
) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        let v = if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        };
        return (v <= cutoff_sq).then_some(v);
    }
    let n = a.len();
    let m = b.len();
    let w = band.unwrap_or(n.max(m)).max(n.abs_diff(m));

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        let mut row_min = f64::INFINITY;
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
            row_min = row_min.min(curr[j]);
        }
        if row_min > cutoff_sq {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    (prev[m] <= cutoff_sq).then_some(prev[m])
}

/// The upper/lower warping envelope of a series for LB_Keogh.
///
/// `upper[i] = max(b[i-w ..= i+w])`, `lower[i] = min(...)`. O(n·w) direct
/// scan — window sizes in this workspace are small relative to series length.
pub fn envelope(b: &[f64], band: usize) -> (Vec<f64>, Vec<f64>) {
    let n = b.len();
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band + 1).min(n);
        let mut mx = f64::NEG_INFINITY;
        let mut mn = f64::INFINITY;
        for &v in &b[lo..hi] {
            mx = mx.max(v);
            mn = mn.min(v);
        }
        upper[i] = mx;
        lower[i] = mn;
    }
    (upper, lower)
}

/// LB_Keogh lower bound (squared) of `dtw_sq(a, b, band)` given `b`'s
/// envelope. Requires `a.len() == envelope len`.
pub fn lb_keogh_sq(a: &[f64], upper: &[f64], lower: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), upper.len());
    debug_assert_eq!(a.len(), lower.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        let x = a[i];
        if x > upper[i] {
            let d = x - upper[i];
            acc += d * d;
        } else if x < lower[i] {
            let d = lower[i] - x;
            acc += d * d;
        }
    }
    acc
}

/// LB_Kim (squared): cheap constant-time bound from the first and last
/// points. Valid because any warping path must align the endpoints.
pub fn lb_kim_sq(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let d0 = a[0] - b[0];
    let dn = a[a.len() - 1] - b[b.len() - 1];
    d0 * d0 + dn * dn
}

/// Checked DTW for library users: errors on empty input.
pub fn try_dtw(a: &[f64], b: &[f64], band: Option<usize>) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(CoreError::EmptySeries);
    }
    Ok(dtw(a, b, band))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_euclidean;

    #[test]
    fn dtw_identical_series_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&a, &a, None), 0.0);
        assert_eq!(dtw(&a, &a, Some(1)), 0.0);
    }

    #[test]
    fn dtw_equals_euclidean_with_zero_band() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [2.0, 1.0, 2.0, 4.0];
        let d = dtw_sq(&a, &b, Some(0));
        assert!((d - squared_euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn dtw_never_exceeds_euclidean() {
        let a = [0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        let b = [0.0, 0.0, 1.0, 2.0, 3.0, 2.0, 1.0];
        assert!(dtw_sq(&a, &b, None) <= squared_euclidean(&a, &b) + 1e-12);
    }

    #[test]
    fn dtw_aligns_shifted_pattern() {
        // b is a one-step shifted copy of a; DTW should be near zero.
        let a = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0];
        let ed = squared_euclidean(&a, &b);
        let dt = dtw_sq(&a, &b, Some(2));
        assert!(dt < ed * 0.1, "dtw {dt} vs ed {ed}");
        assert_eq!(dt, 0.0);
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = [0.0, 1.0, 2.0, 1.0, 0.0];
        let b = [0.0, 1.0, 1.0, 2.0, 2.0, 1.0, 0.0];
        let d = dtw(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 1.0, "warping should absorb the stretch, got {d}");
    }

    #[test]
    fn dtw_band_widens_to_length_difference() {
        let a = [1.0; 10];
        let b = [1.0; 4];
        // band 0 is infeasible for unequal lengths; implementation widens it.
        assert!(dtw(&a, &b, Some(0)).is_finite());
    }

    #[test]
    fn dtw_symmetry() {
        let a = [0.2, 1.5, -0.3, 2.2, 0.0];
        let b = [1.0, 0.0, 0.5, 2.0, 1.0];
        assert!((dtw_sq(&a, &b, Some(2)) - dtw_sq(&b, &a, Some(2))).abs() < 1e-12);
    }

    #[test]
    fn early_abandon_agrees_with_full() {
        let a = [0.3, 1.2, 2.2, 0.4, -1.0, 0.0];
        let b = [1.3, 0.2, 1.8, 1.4, 0.0, -0.5];
        let full = dtw_sq(&a, &b, Some(2));
        assert_eq!(
            dtw_sq_early_abandon(&a, &b, Some(2), full + 0.1),
            Some(full)
        );
        assert_eq!(dtw_sq_early_abandon(&a, &b, Some(2), full * 0.5), None);
    }

    #[test]
    fn envelope_bounds_series() {
        let b = [0.0, 3.0, 1.0, -2.0, 5.0];
        let (u, l) = envelope(&b, 1);
        for i in 0..b.len() {
            assert!(l[i] <= b[i] && b[i] <= u[i]);
        }
        assert_eq!(u[1], 3.0);
        assert_eq!(l[3], -2.0);
        assert_eq!(u[3], 5.0);
    }

    #[test]
    fn lb_keogh_is_a_lower_bound() {
        let a = [0.1, 2.0, -1.0, 0.5, 1.5, -0.2, 0.0, 1.0];
        let b = [1.1, 0.0, -0.5, 1.5, 0.5, 0.8, -1.0, 0.3];
        for band in [1usize, 2, 3] {
            let (u, l) = envelope(&b, band);
            let lb = lb_keogh_sq(&a, &u, &l);
            let d = dtw_sq(&a, &b, Some(band));
            assert!(lb <= d + 1e-9, "band {band}: lb {lb} > dtw {d}");
        }
    }

    #[test]
    fn lb_kim_is_a_lower_bound() {
        let a = [2.0, 0.0, 1.0, 3.0];
        let b = [0.0, 1.0, 1.0, 1.0];
        assert!(lb_kim_sq(&a, &b) <= dtw_sq(&a, &b, None) + 1e-12);
    }

    #[test]
    fn try_dtw_rejects_empty() {
        assert!(try_dtw(&[], &[1.0], None).is_err());
    }
}
