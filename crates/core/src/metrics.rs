//! Lock-free telemetry for the serving stack: atomic counters and gauges,
//! log₂-bucket latency histograms, a deterministic [`Clock`], a typed
//! [`Registry`], and the shared Prometheus text-exposition helpers every
//! layer renders through.
//!
//! # Design
//!
//! * **Zero dependencies, zero locks on the hot path.** Every metric is
//!   plain `std` atomics; recording is wait-free and `&self`, so shard
//!   workers and connection threads share one metric without
//!   coordination. (The [`Registry`] takes a mutex at *registration*
//!   time only — reads and writes of the metrics themselves never lock.)
//! * **Histograms are mergeable.** [`HistogramSnapshot::merge`] is
//!   associative and commutative, so per-shard/per-client histograms
//!   aggregate in any order — see [`histogram`] for bucket layout and the
//!   quantile error bound.
//! * **Time is injected.** Instrumented code reads a [`Clock`] handed to
//!   it: monotonic in production, manually stepped in deterministic
//!   tests, disabled when a bench wants the uninstrumented baseline. The
//!   etsc-lint `determinism` rule pins [`clock`] as the workspace's only
//!   ambient-clock call site.
//! * **One exposition dialect.** [`push_scalar`], [`push_histogram`], and
//!   [`push_histogram_series`] are the only code that formats Prometheus
//!   text (version 0.0.4); `etsc-serve` and `etsc-net` both delegate here,
//!   so `_bucket`/`_sum`/`_count` and `# HELP`/`# TYPE` stay
//!   format-identical across every layer.
//!
//! Histogram exposition is cumulative, as Prometheus requires: each
//! `_bucket{le="N"}` sample counts observations ≤ N, bucket lines stop at
//! the highest non-empty bucket, and a final `le="+Inf"` line always
//! equals `_count`.

pub mod clock;
pub mod histogram;

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use clock::Clock;
pub use histogram::{
    BucketLayout, Histogram, HistogramSnapshot, LayoutMismatch, BUCKETS, LOG_LINEAR4_BUCKETS,
};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can move both ways (queue depth, live
/// streams), plus a high-water helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is higher (high-water tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared handle type a [`Registry`] hands out.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A typed metric registry: register once, record everywhere, render all.
///
/// Registration is idempotent — asking for a name that already exists
/// returns a handle to the *same* metric (so two subsystems can share
/// `"requests_total"` without coordinating), provided the kinds agree; a
/// kind mismatch returns a fresh detached metric that records fine but is
/// not rendered, so a naming collision degrades to a missing series
/// rather than a panic or corrupted exposition.
///
/// Handles are `Arc`s: recording never touches the registry (or its
/// registration mutex) again.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn find(&self, name: &str) -> Option<Metric> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.metric.clone())
    }

    fn insert(&self, name: &str, help: &str, metric: Metric) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Register (or look up) a counter named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.find(name) {
            Some(Metric::Counter(c)) => c,
            Some(_) => Arc::new(Counter::new()),
            None => {
                let c = Arc::new(Counter::new());
                self.insert(name, help, Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Register (or look up) a gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.find(name) {
            Some(Metric::Gauge(g)) => g,
            Some(_) => Arc::new(Gauge::new()),
            None => {
                let g = Arc::new(Gauge::new());
                self.insert(name, help, Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Register (or look up) a histogram named `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.find(name) {
            Some(Metric::Histogram(h)) => h,
            Some(_) => Arc::new(Histogram::new()),
            None => {
                let h = Arc::new(Histogram::new());
                self.insert(name, help, Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Render every registered metric in Prometheus text exposition
    /// format, in registration order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => push_scalar(&mut out, &e.name, &e.help, "counter", c.get()),
                Metric::Gauge(g) => push_scalar(&mut out, &e.name, &e.help, "gauge", g.get()),
                Metric::Histogram(h) => push_histogram(&mut out, &e.name, &e.help, &h.snapshot()),
            }
        }
        out
    }
}

/// Append one scalar metric — a `# HELP`/`# TYPE` preamble plus an
/// unlabelled sample — in Prometheus text exposition format. `kind` is
/// the exposition type (`"counter"` or `"gauge"`). The single formatting
/// path behind `etsc-serve`'s `push_counter`/`push_gauge` and everything
/// that renders through them.
pub fn push_scalar(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Append one unlabelled histogram family (`_bucket` lines with
/// cumulative counts and `le` labels, then `_sum` and `_count`) in
/// Prometheus text exposition format.
pub fn push_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    push_histogram_series(out, name, help, &[("", snap)]);
}

/// Append one histogram family with one sample set per labelled series.
///
/// Each element of `series` is `(labels, snapshot)` where `labels` is
/// either empty (an unlabelled series) or a pre-rendered label list such
/// as `msg="Drain"` — the helper appends the `le` label after it. Bucket
/// lines are cumulative, stop at the series' highest non-empty bucket,
/// and always end with an `le="+Inf"` line equal to `_count`, so any
/// Prometheus-compatible scraper can derive quantiles with
/// `histogram_quantile`.
pub fn push_histogram_series(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(&str, &HistogramSnapshot)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, snap) in series {
        let prefix = if labels.is_empty() {
            String::new()
        } else {
            format!("{labels},")
        };
        let mut cumulative = 0u64;
        if let Some(highest) = snap.highest_bucket() {
            for (i, &c) in snap.buckets.iter().enumerate().take(highest + 1) {
                cumulative = cumulative.saturating_add(c);
                let ub = snap.upper_bound(i);
                let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{ub}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {cumulative}");
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {cumulative}");
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum);
            let _ = writeln!(out, "{name}_count{{{labels}}} {cumulative}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_idempotent_and_renders_in_registration_order() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "Requests served.");
        let c2 = reg.counter("requests_total", "Requests served.");
        c.add(3);
        c2.inc();
        assert_eq!(c.get(), 4, "both handles hit the same counter");
        let g = reg.gauge("depth", "Queue depth.");
        g.set(7);
        g.record_max(5);
        assert_eq!(g.get(), 7);
        let h = reg.histogram("latency_ns", "Latency.");
        h.record(900);
        let text = reg.render_prometheus();
        let c_at = text.find("requests_total 4").expect("counter sample");
        let g_at = text.find("depth 7").expect("gauge sample");
        let h_at = text.find("latency_ns_count 1").expect("histogram count");
        assert!(c_at < g_at && g_at < h_at, "registration order:\n{text}");
    }

    #[test]
    fn kind_mismatch_degrades_to_a_detached_metric() {
        let reg = Registry::new();
        let c = reg.counter("m", "help");
        c.inc();
        let g = reg.gauge("m", "help");
        g.set(99);
        let text = reg.render_prometheus();
        assert!(text.contains("m 1"), "original counter still rendered");
        assert!(!text.contains("m 99"), "detached gauge not rendered");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_capped_by_inf() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(5);
        let mut out = String::new();
        push_histogram(&mut out, "lat_ns", "Latency.", &h.snapshot());
        let expected = "# HELP lat_ns Latency.\n\
                        # TYPE lat_ns histogram\n\
                        lat_ns_bucket{le=\"0\"} 1\n\
                        lat_ns_bucket{le=\"1\"} 3\n\
                        lat_ns_bucket{le=\"3\"} 3\n\
                        lat_ns_bucket{le=\"7\"} 4\n\
                        lat_ns_bucket{le=\"+Inf\"} 4\n\
                        lat_ns_sum 7\n\
                        lat_ns_count 4\n";
        assert_eq!(out, expected);
    }

    #[test]
    fn labelled_series_share_one_family_preamble() {
        let a = Histogram::new();
        a.record(2);
        let b = Histogram::new();
        b.record(1000);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut out = String::new();
        push_histogram_series(
            &mut out,
            "rtt_ns",
            "RTT.",
            &[("msg=\"Ping\"", &sa), ("msg=\"Drain\"", &sb)],
        );
        assert_eq!(out.matches("# TYPE rtt_ns histogram").count(), 1);
        assert!(out.contains("rtt_ns_bucket{msg=\"Ping\",le=\"3\"} 1"));
        assert!(out.contains("rtt_ns_bucket{msg=\"Drain\",le=\"+Inf\"} 1"));
        assert!(out.contains("rtt_ns_sum{msg=\"Drain\"} 1000"));
        assert!(out.contains("rtt_ns_count{msg=\"Ping\"} 1"));
    }

    #[test]
    fn empty_histogram_still_exposes_a_valid_family() {
        let mut out = String::new();
        push_histogram(
            &mut out,
            "idle_ns",
            "Never recorded.",
            &Histogram::new().snapshot(),
        );
        assert!(out.contains("idle_ns_bucket{le=\"+Inf\"} 0"));
        assert!(out.contains("idle_ns_sum 0"));
        assert!(out.contains("idle_ns_count 0"));
    }
}
