//! The structured event log: a bounded ring of typed operational events
//! (failovers, fault injections, retries, migrations, checkpoints,
//! rejections) with a severity filter, rendered as human text or JSON
//! lines.
//!
//! Events are the *discrete* complement to spans: a span measures a
//! stretch of work, an event marks that something happened. Both share
//! the same wait-free ring machinery ([`SpanRing`](super::ring::SpanRing))
//! and the same injected clock, so a disabled clock silences the event
//! log exactly as it silences span recording.

use super::ring::{SpanRing, SLOT_WORDS};

/// How loud an event is; the log drops anything below its configured
/// minimum before touching the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Severity {
    /// Fine-grained operational detail (retries scheduled, backoff waits).
    Debug = 0,
    /// Normal lifecycle marks (checkpoints, migrations).
    Info = 1,
    /// Something degraded but handled (queue-full rejection, fault fired).
    Warn = 2,
    /// A node was declared dead or an operation failed over.
    Error = 3,
}

impl Severity {
    /// Stable lowercase name (used in both text and JSON renderings).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    fn from_code(code: u64) -> Option<Severity> {
        Some(match code {
            0 => Severity::Debug,
            1 => Severity::Info,
            2 => Severity::Warn,
            3 => Severity::Error,
            _ => return None,
        })
    }
}

/// What happened. Each kind carries two `u64` payload fields whose
/// meanings are documented per variant and surfaced by
/// [`field_names`](EventKind::field_names), so renderings stay typed
/// without per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A supervisor declared a node dead. Fields: node index, missed
    /// probe count.
    FailoverDeclared = 0,
    /// A failover finished. Fields: node index, streams moved.
    FailoverCompleted = 1,
    /// A scripted fault injection fired. Fields: fault code, operation
    /// index.
    FaultInjected = 2,
    /// A client retried a request. Fields: message kind slot, attempt
    /// number.
    Retry = 3,
    /// A client backed off before a retry. Fields: message kind slot,
    /// backoff nanoseconds.
    Backoff = 4,
    /// Streams migrated between shards or nodes. Fields: stream count,
    /// destination index.
    Migration = 5,
    /// A checkpoint began. Fields: stream count, 0.
    CheckpointBegin = 6,
    /// A checkpoint finished. Fields: encoded bytes, 0.
    CheckpointEnd = 7,
    /// An ingest batch was rejected because a queue was full. Fields:
    /// shard index, queued depth at rejection.
    QueueFull = 8,
}

impl EventKind {
    /// Stable snake_case name (used in both text and JSON renderings).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FailoverDeclared => "failover_declared",
            EventKind::FailoverCompleted => "failover_completed",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Retry => "retry",
            EventKind::Backoff => "backoff",
            EventKind::Migration => "migration",
            EventKind::CheckpointBegin => "checkpoint_begin",
            EventKind::CheckpointEnd => "checkpoint_end",
            EventKind::QueueFull => "queue_full",
        }
    }

    /// The names of the two payload fields, in order.
    pub fn field_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::FailoverDeclared => ("node", "missed"),
            EventKind::FailoverCompleted => ("node", "moved"),
            EventKind::FaultInjected => ("fault", "op"),
            EventKind::Retry => ("msg", "attempt"),
            EventKind::Backoff => ("msg", "delay_ns"),
            EventKind::Migration => ("streams", "dest"),
            EventKind::CheckpointBegin => ("streams", "unused"),
            EventKind::CheckpointEnd => ("bytes", "unused"),
            EventKind::QueueFull => ("shard", "depth"),
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::FailoverDeclared,
            1 => EventKind::FailoverCompleted,
            2 => EventKind::FaultInjected,
            3 => EventKind::Retry,
            4 => EventKind::Backoff,
            5 => EventKind::Migration,
            6 => EventKind::CheckpointBegin,
            7 => EventKind::CheckpointEnd,
            8 => EventKind::QueueFull,
            _ => return None,
        })
    }
}

/// One logged event: when, how loud, what, and two kind-specific fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Clock nanoseconds at which the event was logged.
    pub time_ns: u64,
    /// Loudness (see [`Severity`]).
    pub severity: Severity,
    /// What happened (see [`EventKind`]).
    pub kind: EventKind,
    /// First payload field (meaning per [`EventKind::field_names`]).
    pub a: u64,
    /// Second payload field (meaning per [`EventKind::field_names`]).
    pub b: u64,
}

impl Event {
    fn pack(&self) -> [u64; SLOT_WORDS] {
        [
            self.time_ns,
            (self.severity as u64) | ((self.kind as u64) << 8),
            self.a,
            self.b,
            0,
            0,
            0,
        ]
    }

    fn unpack(words: &[u64; SLOT_WORDS]) -> Option<Event> {
        Some(Event {
            time_ns: words[0],
            severity: Severity::from_code(words[1] & 0xFF)?,
            kind: EventKind::from_code(words[1] >> 8)?,
            a: words[2],
            b: words[3],
        })
    }

    /// One human-readable line: `[       123ns] warn  queue_full shard=1 depth=64`.
    pub fn render_text(&self) -> String {
        let (fa, fb) = self.kind.field_names();
        format!(
            "[{:>12}ns] {:<5} {} {fa}={} {fb}={}",
            self.time_ns,
            self.severity.name(),
            self.kind.name(),
            self.a,
            self.b,
        )
    }

    /// One JSON object (no trailing newline): stable keys `t`, `sev`,
    /// `kind`, plus the two kind-specific field names.
    pub fn render_json(&self) -> String {
        let (fa, fb) = self.kind.field_names();
        format!(
            "{{\"t\":{},\"sev\":\"{}\",\"kind\":\"{}\",\"{fa}\":{},\"{fb}\":{}}}",
            self.time_ns,
            self.severity.name(),
            self.kind.name(),
            self.a,
            self.b,
        )
    }
}

/// A bounded, wait-free event log with a severity floor. Shares the
/// drop-oldest ring semantics of [`SpanRing`](super::ring::SpanRing):
/// `dropped()` counts evicted events, never silently.
#[derive(Debug)]
pub struct EventLog {
    ring: SpanRing,
    min_severity: Severity,
}

impl EventLog {
    /// A log holding at most `capacity` events (rounded up to a power of
    /// two) at or above `min_severity`.
    pub fn new(capacity: usize, min_severity: Severity) -> Self {
        Self {
            ring: SpanRing::new(capacity),
            min_severity,
        }
    }

    /// The configured severity floor.
    pub fn min_severity(&self) -> Severity {
        self.min_severity
    }

    /// Log one event; events below the severity floor are discarded
    /// without touching the ring (and without counting as dropped).
    pub fn log(&self, event: Event) {
        if event.severity >= self.min_severity {
            self.ring.record(event.pack());
        }
    }

    /// Events evicted by drop-oldest overwrite (severity-filtered events
    /// never count — they were refused, not lost).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Every retained event, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .snapshot()
            .iter()
            .filter_map(|(_, words)| Event::unpack(words))
            .collect()
    }

    /// Render the retained events as human text, one line per event.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.render_text());
            out.push('\n');
        }
        out
    }

    /// Render the retained events as JSON lines (one object per line —
    /// each line parses on its own).
    pub fn render_json_lines(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.render_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sev: Severity, kind: EventKind, a: u64, b: u64) -> Event {
        Event {
            time_ns: 42,
            severity: sev,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn severity_floor_filters_without_counting_drops() {
        let log = EventLog::new(8, Severity::Warn);
        log.log(ev(Severity::Debug, EventKind::Retry, 1, 2));
        log.log(ev(Severity::Info, EventKind::Migration, 3, 0));
        log.log(ev(Severity::Warn, EventKind::QueueFull, 1, 64));
        log.log(ev(Severity::Error, EventKind::FailoverDeclared, 0, 3));
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(log.dropped(), 0);
        assert_eq!(events[0].kind, EventKind::QueueFull);
        assert_eq!(events[1].kind, EventKind::FailoverDeclared);
    }

    #[test]
    fn renders_text_and_json_lines_with_typed_field_names() {
        let log = EventLog::new(4, Severity::Debug);
        log.log(ev(Severity::Warn, EventKind::QueueFull, 1, 64));
        let text = log.render_text();
        assert!(text.contains("queue_full shard=1 depth=64"), "{text}");
        let json = log.render_json_lines();
        assert_eq!(
            json,
            "{\"t\":42,\"sev\":\"warn\",\"kind\":\"queue_full\",\"shard\":1,\"depth\":64}\n"
        );
    }

    #[test]
    fn event_pack_unpack_round_trips_every_kind() {
        for code in 0..9u64 {
            let kind = EventKind::from_code(code).expect("known kind");
            let e = ev(Severity::Info, kind, 7, 9);
            assert_eq!(Event::unpack(&e.pack()), Some(e));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_code(9), None);
    }
}
