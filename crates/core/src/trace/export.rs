//! Chrome `trace_event` export: render a span set as the JSON the
//! `chrome://tracing` / Perfetto viewers load directly.
//!
//! The output is one JSON object with a `traceEvents` array of complete
//! (`"ph":"X"`) events — `ts`/`dur` in microseconds as the format
//! requires, span/trace/parent ids carried in `args` so causal links
//! survive the round trip — plus an `otherData` block naming the exporting
//! process and the drop counter, so a truncated ring is visible in the
//! viewer rather than silently partial.
//!
//! # The one sanctioned wall-clock site
//!
//! Span timestamps are deterministic clock nanoseconds; the export
//! envelope additionally stamps `exported_unix_ms` from the system clock
//! so archived traces can be correlated with external logs. That read is
//! presentation-only — it happens after every span was recorded and can
//! never reach alarm bytes — and this module is the etsc-lint
//! `determinism` allowlist's only trace-side entry (see
//! `crates/lint/src/rules.rs`); wall-clock reads anywhere else in the
//! trace plane are still violations.

use std::time::{SystemTime, UNIX_EPOCH};

use super::span::Span;

/// Milliseconds since the Unix epoch at export time (0 if the system
/// clock is before the epoch). Presentation metadata only — see the
/// [module docs](self) for why this wall-clock read is sanctioned.
fn exported_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `spans` as a Chrome `trace_event` JSON document.
///
/// `process` names the exporting process (a node address, `"client"`, …)
/// and becomes both the `pid` metadata and part of `otherData`;
/// `dropped_spans` is the ring's eviction counter at export time. The
/// output parses with any JSON reader (the e2e suite uses the workspace's
/// own `etsc_bench::json`) and loads in `chrome://tracing` unmodified.
pub fn chrome_trace_json(process: &str, spans: &[Span], dropped_spans: u64) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{");
    out.push_str(&format!(
        "\"process\":\"{}\",\"dropped_spans\":{dropped_spans},\"exported_unix_ms\":{}",
        escape_json(process),
        exported_unix_ms()
    ));
    out.push_str("},\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // ts/dur are microseconds in the trace_event format; keep
        // nanosecond precision with three decimal places.
        let ts_us = span.start_ns as f64 / 1_000.0;
        let dur_us = span.dur_ns as f64 / 1_000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"etsc\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"pid\":\"{}\",\"tid\":\"trace-{}\",\"args\":{{\
             \"trace_id\":{},\"span_id\":{},\"parent_id\":{},\"arg\":{}}}}}",
            span.kind.name(),
            escape_json(process),
            span.trace_id,
            span.trace_id,
            span.span_id,
            span.parent_id,
            span.arg,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::span::SpanKind;
    use super::*;

    fn span(id: u64, parent: u64, kind: SpanKind) -> Span {
        Span {
            trace_id: 7,
            span_id: id,
            parent_id: parent,
            kind,
            start_ns: 1_500,
            dur_ns: 250,
            arg: 3,
        }
    }

    #[test]
    fn renders_complete_events_with_causal_args() {
        let spans = [
            span(1, 0, SpanKind::ClientIngest),
            span(2, 1, SpanKind::NodeIngest),
        ];
        let json = chrome_trace_json("node0", &spans, 4);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"client_ingest\""));
        assert!(json.contains("\"name\":\"node_ingest\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":0.250"));
        assert!(json.contains("\"span_id\":2,\"parent_id\":1"));
        assert!(json.contains("\"dropped_spans\":4"));
        assert!(json.contains("\"process\":\"node0\""));
        assert!(json.contains("\"exported_unix_ms\":"));
    }

    #[test]
    fn empty_export_is_still_a_complete_document() {
        let json = chrome_trace_json("client", &[], 0);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn process_names_are_escaped() {
        let json = chrome_trace_json("a\"b\\c", &[], 0);
        assert!(json.contains("\"process\":\"a\\\"b\\\\c\""));
    }
}
