//! The span vocabulary: the causally-linked unit of work a trace is made
//! of, and the closed set of stages a record passes through on its way
//! from a client batch to an emitted alarm.

use super::ring::SLOT_WORDS;

/// The stage of the serving pipeline a [`Span`] covers. The set is closed
/// on purpose: every stage a record can traverse — client send, node
/// decode, shard enqueue, drain, alarm emission, plus the checkpoint /
/// migration / failover machinery that can interpose — has exactly one
/// kind, so traces from different nodes splice without a name registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Client-side root of one traced ingest (one per `ingest` call).
    ClientIngest = 0,
    /// One sub-batch sent to one node (cluster fan-out under the root).
    ClientSend = 1,
    /// A node decoded an `IngestBatch` and applied it to its runtime.
    NodeIngest = 2,
    /// A batch's records were queued on one shard.
    ShardEnqueue = 3,
    /// A shard's queue was serviced for a traced stream.
    ShardDrain = 4,
    /// An alarm left the runtime for a traced stream.
    AlarmEmit = 5,
    /// A runtime checkpoint pause.
    Checkpoint = 6,
    /// A stream migration (local rebalance or cross-node move).
    Migration = 7,
    /// Supervisor failover re-delivered checkpointed alarms.
    Redelivery = 8,
}

impl SpanKind {
    /// Stable display name (also the Chrome `trace_event` event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientIngest => "client_ingest",
            SpanKind::ClientSend => "client_send",
            SpanKind::NodeIngest => "node_ingest",
            SpanKind::ShardEnqueue => "shard_enqueue",
            SpanKind::ShardDrain => "shard_drain",
            SpanKind::AlarmEmit => "alarm_emit",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Migration => "migration",
            SpanKind::Redelivery => "redelivery",
        }
    }

    /// Decode a packed discriminant (the inverse of `kind as u64`).
    pub fn from_code(code: u64) -> Option<SpanKind> {
        Some(match code {
            0 => SpanKind::ClientIngest,
            1 => SpanKind::ClientSend,
            2 => SpanKind::NodeIngest,
            3 => SpanKind::ShardEnqueue,
            4 => SpanKind::ShardDrain,
            5 => SpanKind::AlarmEmit,
            6 => SpanKind::Checkpoint,
            7 => SpanKind::Migration,
            8 => SpanKind::Redelivery,
            _ => return None,
        })
    }
}

/// One completed unit of traced work: which trace it belongs to, its own
/// id, its parent's id (0 = root), when it started, how long it took, and
/// one kind-specific argument (stream id, shard index, node index, …).
///
/// Ids are allocated from the owning tracer's deterministic seeded
/// counter, so they are unique and monotone per tracer; `parent_id == 0`
/// marks a trace root. Timestamps come from the injected
/// [`Clock`](crate::metrics::Clock) — under a disabled clock no span is
/// recorded at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique, monotone per tracer; never 0).
    pub span_id: u64,
    /// The causal parent's span id, 0 for a trace root.
    pub parent_id: u64,
    /// Pipeline stage.
    pub kind: SpanKind,
    /// Start time in clock nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (saturating).
    pub dur_ns: u64,
    /// Kind-specific argument: stream id for enqueue/drain/alarm spans,
    /// shard or node index for the others, 0 when unused.
    pub arg: u64,
}

impl Span {
    /// Pack into ring payload words (inverse of [`unpack`](Self::unpack)).
    pub fn pack(&self) -> [u64; SLOT_WORDS] {
        [
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.kind as u64,
            self.start_ns,
            self.dur_ns,
            self.arg,
        ]
    }

    /// Unpack ring payload words; `None` for an unknown kind discriminant
    /// (possible only if the ring held bytes from a newer vocabulary).
    pub fn unpack(words: &[u64; SLOT_WORDS]) -> Option<Span> {
        Some(Span {
            trace_id: words[0],
            span_id: words[1],
            parent_id: words[2],
            kind: SpanKind::from_code(words[3])?,
            start_ns: words[4],
            dur_ns: words[5],
            arg: words[6],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        let s = Span {
            trace_id: 0xDEAD_BEEF,
            span_id: 42,
            parent_id: 41,
            kind: SpanKind::ShardDrain,
            start_ns: 1_000,
            dur_ns: 250,
            arg: 99_991,
        };
        assert_eq!(Span::unpack(&s.pack()), Some(s));
    }

    #[test]
    fn every_kind_round_trips_and_has_a_name() {
        for code in 0..9u64 {
            let kind = SpanKind::from_code(code).expect("known code");
            assert_eq!(kind as u64, code);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(SpanKind::from_code(9), None);
    }
}
