//! Bounded lock-free span storage: fixed-size slots, wait-free recording,
//! drop-oldest overwrite with exact drop accounting.
//!
//! # Design
//!
//! A [`SpanRing`] is a power-of-two array of slots. Recording claims a
//! global sequence number with one `fetch_add` and writes the span into
//! slot `seq & mask` under a per-slot version word (a seqlock): the
//! version goes odd while the write is in flight and even (and larger)
//! when it lands. Readers snapshot without blocking writers — a slot whose
//! version is odd, or changes between the first and second read, is simply
//! skipped as in-flight. Nothing ever waits.
//!
//! Overwriting is the drop policy: once the ring wraps, each new span
//! evicts the oldest surviving one, and the eviction is counted, so
//! `recorded() == snapshot().len() + dropped()` holds exactly whenever no
//! writer is mid-flight (the span proptests pin this at 1, 2, and 7
//! threads). The pathological case — a writer lapped by a full ring's
//! worth of newer claims while still inside its slot — is handled by the
//! claim CAS: the late writer loses the slot and its span is counted
//! dropped rather than torn.
//!
//! Every field of every slot is a plain atomic (no `unsafe`), so the worst
//! concurrent interleaving is a skipped slot in a snapshot, never undefined
//! behavior.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of payload words a slot carries; [`SpanRing`] stores anything
/// that packs into this many `u64`s (spans use 7, events pack into 4 and
/// leave the rest zero).
pub const SLOT_WORDS: usize = 7;

/// One seqlock-guarded slot: a version word, the claim sequence, and the
/// packed payload.
#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd = write in flight; even ≥ 2 = stable.
    ver: AtomicU64,
    /// The global claim sequence of the record stored here.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            ver: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; SLOT_WORDS],
        }
    }
}

/// A bounded, wait-free, drop-oldest ring of packed records. See the
/// [module docs](self) for the concurrency story.
#[derive(Debug)]
pub struct SpanRing {
    slots: Vec<Slot>,
    mask: u64,
    /// Total records claimed (== total `record` calls).
    head: AtomicU64,
    /// Records that evicted an older stable record (drop-oldest).
    overwritten: AtomicU64,
    /// Records dropped because their slot was mid-write (a writer lapped
    /// by a full ring of newer claims).
    contended: AtomicU64,
}

impl SpanRing {
    /// A ring holding at most `capacity` records (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Slot count (the most records a snapshot can return).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one packed payload. Wait-free: one `fetch_add` to claim a
    /// sequence, one CAS to claim the slot; on CAS failure the record is
    /// counted dropped instead of waiting.
    pub fn record(&self, words: [u64; SLOT_WORDS]) {
        let seq = self.head.fetch_add(1, Ordering::SeqCst);
        let Some(slot) = self.slots.get((seq & self.mask) as usize) else {
            return; // unreachable: mask < len
        };
        let ver = slot.ver.load(Ordering::SeqCst);
        if ver & 1 == 1
            || slot
                .ver
                .compare_exchange(ver, ver + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            self.contended.fetch_add(1, Ordering::SeqCst);
            return;
        }
        if ver > 0 {
            // The slot held a stable older record; this write evicts it.
            self.overwritten.fetch_add(1, Ordering::SeqCst);
        }
        slot.seq.store(seq, Ordering::SeqCst);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::SeqCst);
        }
        slot.ver.store(ver + 2, Ordering::SeqCst);
    }

    /// Total records ever claimed by `record` calls.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Records no longer retrievable: evicted by drop-oldest overwrite
    /// plus the (rare) slot-contention drops. With no writer in flight,
    /// `recorded() == snapshot().len() as u64 + dropped()`.
    pub fn dropped(&self) -> u64 {
        self.overwritten
            .load(Ordering::SeqCst)
            .saturating_add(self.contended.load(Ordering::SeqCst))
    }

    /// Collect every stable record, oldest first (by claim sequence).
    /// Never blocks writers; slots mid-write are skipped.
    pub fn snapshot(&self) -> Vec<(u64, [u64; SLOT_WORDS])> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.ver.load(Ordering::SeqCst);
            if v1 == 0 || v1 & 1 == 1 {
                continue; // never written, or write in flight
            }
            let seq = slot.seq.load(Ordering::SeqCst);
            let mut words = [0u64; SLOT_WORDS];
            for (w, v) in words.iter_mut().zip(&slot.words) {
                *w = v.load(Ordering::SeqCst);
            }
            if slot.ver.load(Ordering::SeqCst) != v1 {
                continue; // torn by a concurrent overwrite
            }
            out.push((seq, words));
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }
}

/// Merge per-thread (or per-ring) snapshots into one record-ordered list:
/// the union of all entries, sorted by claim sequence (ties broken by
/// payload words so the merge is total and deterministic).
pub fn merge_snapshots(parts: &[Vec<(u64, [u64; SLOT_WORDS])>]) -> Vec<(u64, [u64; SLOT_WORDS])> {
    let mut all: Vec<(u64, [u64; SLOT_WORDS])> =
        parts.iter().flat_map(|p| p.iter().copied()).collect();
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(tag: u64) -> [u64; SLOT_WORDS] {
        let mut w = [0u64; SLOT_WORDS];
        w[0] = tag;
        w
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SpanRing::new(0).capacity(), 2);
        assert_eq!(SpanRing::new(5).capacity(), 8);
        assert_eq!(SpanRing::new(8).capacity(), 8);
    }

    #[test]
    fn under_capacity_everything_survives_in_order() {
        let ring = SpanRing::new(8);
        for i in 0..5u64 {
            ring.record(words(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(ring.dropped(), 0);
        for (i, (seq, w)) in snap.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(w[0], i as u64);
        }
    }

    #[test]
    fn wrap_drops_oldest_and_counts_exactly() {
        let ring = SpanRing::new(4);
        for i in 0..11u64 {
            ring.record(words(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4, "ring retains exactly its capacity");
        assert_eq!(ring.dropped(), 7, "11 recorded, 4 retained");
        assert_eq!(ring.recorded(), snap.len() as u64 + ring.dropped());
        // The survivors are the newest four, oldest first.
        let tags: Vec<u64> = snap.iter().map(|(_, w)| w[0]).collect();
        assert_eq!(tags, vec![7, 8, 9, 10]);
    }

    #[test]
    fn concurrent_recording_accounts_for_every_claim() {
        let ring = SpanRing::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..500u64 {
                        ring.record(words(t * 1_000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 2_000);
        let snap = ring.snapshot();
        assert_eq!(snap.len() as u64 + ring.dropped(), 2_000);
        // Snapshot is strictly ordered by claim sequence.
        for pair in snap.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn merge_unions_and_orders_per_thread_rings() {
        let a = SpanRing::new(8);
        let b = SpanRing::new(8);
        a.record(words(10));
        b.record(words(20));
        a.record(words(11));
        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.len(), 3);
        let tags: Vec<u64> = merged.iter().map(|(_, w)| w[0]).collect();
        // Per-ring sequences both start at 0; ties break on payload.
        assert_eq!(tags, vec![10, 20, 11]);
    }
}
