//! The trace context: the 16 bytes that carry a trace across a process
//! boundary.
//!
//! A [`TraceContext`] names the trace a request belongs to and the span
//! that caused it; the receiving side parents its own spans under
//! `parent_span` and keeps propagating. On the wire it is an *optional
//! trailing* field — a traced request appends exactly
//! [`WIRE_LEN`](TraceContext::WIRE_LEN) little-endian bytes, an untraced
//! request appends nothing, so tracing-off traffic is byte-identical to
//! protocol v2 payloads (inside the v3 frame).

/// A trace id plus the sending side's span id — everything a downstream
/// process needs to keep a trace connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every propagated span joins.
    pub trace_id: u64,
    /// The span on the sending side that caused this request; receivers
    /// parent their spans under it.
    pub parent_span: u64,
}

impl TraceContext {
    /// Encoded size in bytes: two little-endian `u64`s.
    pub const WIRE_LEN: usize = 16;

    /// Serialize as 16 little-endian bytes (trace id, then parent span).
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    /// Deserialize 16 little-endian bytes (inverse of
    /// [`to_bytes`](Self::to_bytes)); `None` if `bytes` is the wrong size.
    pub fn from_bytes(bytes: &[u8]) -> Option<TraceContext> {
        let trace: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        let parent: [u8; 8] = bytes.get(8..16)?.try_into().ok()?;
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_le_bytes(trace),
            parent_span: u64::from_le_bytes(parent),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_wrong_sizes() {
        let ctx = TraceContext {
            trace_id: u64::MAX - 7,
            parent_span: 12_345,
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::from_bytes(&bytes), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&bytes[..15]), None);
        assert_eq!(TraceContext::from_bytes(&[0u8; 17]), None);
    }
}
