//! Error type shared across the workspace's foundation layer.

use std::fmt;

/// Errors produced by `etsc-core` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Two series that must have equal length did not.
    LengthMismatch {
        /// Length of the first operand.
        expected: usize,
        /// Length of the offending operand.
        actual: usize,
    },
    /// An operation that requires a non-empty series received an empty one.
    EmptySeries,
    /// A dataset invariant (equal lengths, non-empty, label present) failed.
    InvalidDataset(String),
    /// A parameter was outside its documented domain.
    InvalidParameter(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            CoreError::EmptySeries => write!(f, "operation requires a non-empty series"),
            CoreError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::LengthMismatch {
            expected: 10,
            actual: 7,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("7"));
        assert!(CoreError::EmptySeries.to_string().contains("non-empty"));
        assert!(CoreError::InvalidDataset("x".into())
            .to_string()
            .contains('x'));
        assert!(CoreError::InvalidParameter("p".into())
            .to_string()
            .contains('p'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
