//! Zero-dependency data parallelism on scoped OS threads.
//!
//! The workspace's hot paths — the subsequence-search engine ([`crate::nn`]),
//! the O(n²L) ECTS fit, TEASER's per-snapshot training, batch evaluation,
//! multi-anchor stream monitoring — are all embarrassingly parallel over
//! independent items. This module gives them one shared substrate built on
//! [`std::thread::scope`] (no rayon: the build environment is offline, and
//! the shims philosophy of `crates/shims` is to stand on std), with three
//! guarantees every caller relies on:
//!
//! 1. **Deterministic results.** Work is split into *contiguous* chunks,
//!    each chunk is processed in order by one worker, and outputs are
//!    stitched back together in input order. A parallel `map` returns
//!    bit-identical results to the serial `map` — per item, the same
//!    floating-point operations run in the same order; only *which thread*
//!    runs them changes. No atomics, no work stealing, no reduction-order
//!    nondeterminism.
//! 2. **One switch.** [`num_threads`] honors the `ETSC_THREADS` environment
//!    variable (any integer ≥ 1), falling back to
//!    [`std::thread::available_parallelism`]. `ETSC_THREADS=1` makes every
//!    call site serial again.
//! 3. **Graceful degradation.** With one thread (or one item) nothing is
//!    spawned and nothing is allocated beyond the output — the serial path
//!    is the plain loop it replaced.
//!
//! Call sites that run per *sample* (the stream monitor's anchor fan-out)
//! gate on a minimum amount of work before going parallel — see [`gate`] —
//! because a scoped spawn costs on the order of ten microseconds, which only
//! amortizes over enough independent work.
//!
//! Worker panics propagate to the caller (the scope joins every worker; the
//! first panic is re-raised).
//!
//! ```
//! use etsc_core::parallel;
//!
//! let xs: Vec<u64> = (0..1000).collect();
//! let doubled = parallel::map(&xs, |&x| x * 2);
//! assert_eq!(doubled, parallel::map_with(7, &xs, |&x| x * 2));
//! assert_eq!(doubled[999], 1998);
//! ```

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Test/benchmark override for [`num_threads`], set by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count every parallel entry point uses by default.
///
/// Resolution order: the [`with_threads`] override (scoped, thread-local,
/// used by tests and benches), then the `ETSC_THREADS` environment variable
/// (parsed as an integer ≥ 1; unparsable values are ignored), then
/// [`std::thread::available_parallelism`], then 1.
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("ETSC_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with [`num_threads`] pinned to `n` on the current thread.
///
/// This is how the property tests assert parallel ≡ serial at specific
/// worker counts (1, 2, 7) without mutating the process environment, which
/// would race under the multi-threaded test harness. The override is
/// thread-local and restored on exit (panic included, via a drop guard);
/// worker threads spawned *inside* `f` see the ambient default, which is
/// fine — every entry point resolves its worker count on the calling thread.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// [`num_threads`] if `work` meets `min_work`, else 1.
///
/// The idiom for per-sample call sites: spawning threads costs ~10µs, so a
/// loop over 8 cheap items must stay serial even when `ETSC_THREADS=16`.
#[inline]
pub fn gate(work: usize, min_work: usize) -> usize {
    if work >= min_work {
        num_threads()
    } else {
        1
    }
}

/// Split `0..len` into at most `chunks` contiguous ranges of near-equal
/// size, in order, covering every index exactly once. Empty when `len == 0`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len);
    if chunks == 0 {
        return Vec::new();
    }
    let size = len.div_ceil(chunks);
    (0..chunks)
        .map(|c| c * size..((c + 1) * size).min(len))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parallel `(0..n).map(f)` with results in index order.
///
/// The workhorse primitive: everything else here is sugar over it. Uses
/// [`num_threads`] workers; see [`map_range_with`] for an explicit count.
pub fn map_range<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    map_range_with(num_threads(), n, f)
}

/// [`map_range`] with an explicit worker count.
pub fn map_range_with<R: Send>(threads: usize, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = chunk_ranges(n, threads);
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(move || r.map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Parallel `items.iter().map(f)` with results in input order.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    map_with(num_threads(), items, f)
}

/// [`map`] with an explicit worker count.
pub fn map_with<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    map_range_with(threads, items.len(), |i| f(&items[i]))
}

/// Parallel mutate-and-collect over a mutable slice, results in input order.
///
/// Each item is visited exactly once by exactly one worker; chunks are
/// contiguous, so per-item work is identical to the serial loop.
pub fn map_mut<T: Send, R: Send>(items: &mut [T], f: impl Fn(&mut T) -> R + Sync) -> Vec<R> {
    map_mut_with(num_threads(), items, f)
}

/// [`map_mut`] with an explicit worker count.
pub fn map_mut_with<T: Send, R: Send>(
    threads: usize,
    items: &mut [T],
    f: impl Fn(&mut T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let size = n.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(size)
            .map(|chunk| s.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Parallel `for x in items { f(x) }` over a mutable slice.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    for_each_mut_with(num_threads(), items, f)
}

/// [`for_each_mut`] with an explicit worker count.
pub fn for_each_mut_with<T: Send>(threads: usize, items: &mut [T], f: impl Fn(&mut T) + Sync) {
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let size = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for chunk in items.chunks_mut(size) {
            s.spawn(move || chunk.iter_mut().for_each(f));
        }
    });
}

/// Parallel visit of contiguous sub-slices with their global offset:
/// `f(offset, chunk)` where `chunk == &mut items[offset..offset + chunk.len()]`.
///
/// For kernels that index a parallel read-only array by global position
/// (e.g. the ECTS pairwise-distance update, which looks up the exemplar pair
/// behind each accumulator).
pub fn for_each_slice_mut_with<T: Send>(
    threads: usize,
    items: &mut [T],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        f(0, items);
        return;
    }
    let size = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut offset = 0;
        for chunk in items.chunks_mut(size) {
            let len = chunk.len();
            s.spawn(move || f(offset, chunk));
            offset += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_at_many_thread_counts() {
        let xs: Vec<f64> = (0..257).map(|i| (i as f64) * 0.37 - 40.0).collect();
        let serial: Vec<f64> = xs.iter().map(|&x| x * x + 1.0).collect();
        for t in [1, 2, 3, 7, 64, 1000] {
            assert_eq!(map_with(t, &xs, |&x| x * x + 1.0), serial, "threads {t}");
        }
    }

    #[test]
    fn map_range_on_empty_and_single() {
        assert!(map_range_with(4, 0, |i| i).is_empty());
        assert_eq!(map_range_with(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (len, chunks) in [
            (0, 3),
            (1, 3),
            (10, 3),
            (10, 1),
            (10, 10),
            (10, 100),
            (97, 8),
        ] {
            let rs = chunk_ranges(len, chunks);
            let mut seen = vec![false; len];
            for r in &rs {
                for i in r.clone() {
                    assert!(!seen[i], "index {i} covered twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "len {len} chunks {chunks}");
            assert!(rs.len() <= chunks.max(1));
        }
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut xs = vec![0u64; 100];
        for_each_mut_with(7, &mut xs, |x| *x += 1);
        assert!(xs.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_slice_mut_offsets_are_global() {
        let mut xs = vec![0usize; 53];
        for_each_slice_mut_with(4, &mut xs, |off, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = off + k;
            }
        });
        let expect: Vec<usize> = (0..53).collect();
        assert_eq!(xs, expect);
    }

    #[test]
    fn map_mut_returns_in_order_and_mutates() {
        let mut xs: Vec<i64> = (0..40).collect();
        let before = map_mut_with(3, &mut xs, |x| {
            let old = *x;
            *x *= 10;
            old
        });
        assert_eq!(before, (0..40).collect::<Vec<i64>>());
        assert_eq!(xs[7], 70);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = num_threads();
        let inside = with_threads(5, num_threads);
        assert_eq!(inside, 5);
        assert_eq!(num_threads(), ambient);
        // Nested overrides: innermost wins, outer restored.
        with_threads(2, || {
            assert_eq!(num_threads(), 2);
            with_threads(3, || assert_eq!(num_threads(), 3));
            assert_eq!(num_threads(), 2);
        });
    }

    #[test]
    fn gate_stays_serial_below_threshold() {
        with_threads(8, || {
            assert_eq!(gate(10, 100), 1);
            assert_eq!(gate(100, 100), 8);
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_range_with(2, 10, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
