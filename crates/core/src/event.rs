//! Ground-truth events in a stream.
//!
//! Generators annotate synthetic streams with the true occurrences of each
//! class; the streaming scorer matches alarms against these intervals. The
//! type lives in `etsc-core` because both the data layer and the deployment
//! layer speak it.

use crate::dataset::ClassLabel;

/// A labeled ground-truth occurrence: the target pattern occupies
/// `[start, end)` in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// First sample index of the occurrence.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Class of the occurrence.
    pub label: ClassLabel,
}

impl Event {
    /// Construct, checking `start < end`.
    pub fn new(start: usize, end: usize, label: ClassLabel) -> Self {
        assert!(start < end, "event must have positive duration");
        Self { start, end, label }
    }

    /// Number of samples the event spans.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Events always have positive duration; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does `t` fall inside the event, widened by `tolerance` samples on each
    /// side? Alarm matching uses a tolerance so that a detection slightly
    /// before the annotated onset still counts.
    pub fn contains_with_tolerance(&self, t: usize, tolerance: usize) -> bool {
        let lo = self.start.saturating_sub(tolerance);
        let hi = self.end + tolerance;
        (lo..hi).contains(&t)
    }
}

/// A stream paired with its ground-truth events.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedStream {
    /// Raw (un-normalized) samples.
    pub data: Vec<f64>,
    /// Ground-truth occurrences, sorted by start.
    pub events: Vec<Event>,
}

impl AnnotatedStream {
    /// Construct and sort events by start index.
    pub fn new(data: Vec<f64>, mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.start);
        debug_assert!(events.iter().all(|e| e.end <= data.len()));
        Self { data, events }
    }

    /// Events of one class only.
    pub fn events_of(&self, label: ClassLabel) -> Vec<Event> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.label == label)
            .collect()
    }

    /// Total samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the stream holds no samples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_basic() {
        let e = Event::new(10, 20, 1);
        assert_eq!(e.len(), 10);
        assert!(!e.is_empty());
        assert!(e.contains_with_tolerance(10, 0));
        assert!(e.contains_with_tolerance(19, 0));
        assert!(!e.contains_with_tolerance(20, 0));
        assert!(e.contains_with_tolerance(22, 3));
        assert!(e.contains_with_tolerance(8, 3));
        assert!(!e.contains_with_tolerance(5, 3));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn event_rejects_empty_interval() {
        let _ = Event::new(5, 5, 0);
    }

    #[test]
    fn annotated_stream_sorts_events() {
        let s = AnnotatedStream::new(
            vec![0.0; 100],
            vec![Event::new(50, 60, 0), Event::new(10, 20, 1)],
        );
        assert_eq!(s.events[0].start, 10);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.events_of(1).len(), 1);
        assert_eq!(s.events_of(0)[0].start, 50);
    }
}
