//! Summary statistics and running (streaming) statistics.
//!
//! The UCR archive z-normalizes with the *population* standard deviation
//! (divide by `n`, not `n - 1`); every function here follows that convention
//! so that accuracy numbers are comparable with the ETSC literature.

/// Arithmetic mean. Returns 0.0 for an empty slice (documented convention:
/// callers that care must check emptiness themselves; the generators and
/// classifiers in this workspace never pass empty slices).
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`).
#[inline]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (divides by `n`, UCR convention).
#[inline]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Mean and population standard deviation in one pass.
#[inline]
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for &x in xs {
        sum += x;
        sumsq += x * x;
    }
    let m = sum / n;
    // Guard against tiny negative values from cancellation.
    let var = (sumsq / n - m * m).max(0.0);
    (m, var.sqrt())
}

/// Cumulative sums of values and of squares: `(c1, c2)` with
/// `c1[l]` = Σ of the first `l` values and `c2[l]` = Σ of their squares
/// (both length `xs.len() + 1`, starting at 0).
///
/// Streaming sessions use these to evaluate z-normalized distances against
/// stored reference series from running sums (mean and variance of any
/// prefix follow directly: `μ = c1[l]/l`, `σ² = c2[l]/l − μ²`).
pub fn prefix_value_and_square_sums(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = Vec::with_capacity(xs.len() + 1);
    let mut c2 = Vec::with_capacity(xs.len() + 1);
    let (mut a, mut b) = (0.0, 0.0);
    c1.push(0.0);
    c2.push(0.0);
    for &v in xs {
        a += v;
        b += v * v;
        c1.push(a);
        c2.push(b);
    }
    (c1, c2)
}

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// Used by streaming normalizers and by the MASS-style z-normalized distance,
/// where per-window statistics must be maintained incrementally.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporate one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0.0 before any observation).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance (0.0 before any observation).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Running population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw accumulator state `(count, mean, m2)` — what a checkpoint
    /// must capture for a restored accumulator to continue bit-identically.
    pub fn state(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from [`RunningStats::state`] output.
    pub fn from_state(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }
}

/// A past-only ("causal") normalizer for streaming data.
///
/// This is the *only* normalization a deployed system can actually perform:
/// it standardizes each incoming point using statistics of the data seen so
/// far (optionally over a trailing window). Contrast with
/// [`crate::znorm::znormalize`], which needs the whole series and therefore
/// cannot be computed until the pattern has fully arrived — the "peeking into
/// the future" flaw of Section 4 of the paper.
#[derive(Debug, Clone)]
pub struct CausalNormalizer {
    window: Option<usize>,
    buf: Vec<f64>,
    stats: RunningStats,
}

impl CausalNormalizer {
    /// Normalizer over the entire past.
    pub fn cumulative() -> Self {
        Self {
            window: None,
            buf: Vec::new(),
            stats: RunningStats::new(),
        }
    }

    /// Normalizer over a trailing window of `len` points (`len >= 2`).
    pub fn windowed(len: usize) -> Self {
        assert!(len >= 2, "causal window must hold at least 2 points");
        Self {
            window: Some(len),
            buf: Vec::with_capacity(len),
            stats: RunningStats::new(),
        }
    }

    /// Feed one raw point; returns the point standardized by *past* data only
    /// (the current point is included in the statistics, as is standard for
    /// sliding-window z-normalization).
    pub fn push(&mut self, x: f64) -> f64 {
        match self.window {
            None => {
                self.stats.push(x);
                let sd = self.stats.std_dev();
                if sd > f64::EPSILON {
                    (x - self.stats.mean()) / sd
                } else {
                    0.0
                }
            }
            Some(w) => {
                self.buf.push(x);
                if self.buf.len() > w {
                    self.buf.remove(0);
                }
                let (m, sd) = mean_std(&self.buf);
                if sd > f64::EPSILON {
                    (x - m) / sd
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn mean_of_known_values() {
        approx(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        approx(mean(&[]), 0.0);
        approx(std_dev(&[]), 0.0);
    }

    #[test]
    fn population_variance_divides_by_n() {
        // Sample variance of [1,2,3] would be 1.0; population is 2/3.
        approx(variance(&[1.0, 2.0, 3.0]), 2.0 / 3.0);
    }

    #[test]
    fn mean_std_matches_two_pass() {
        let xs = [0.3, -1.2, 4.5, 2.2, -0.7, 9.1];
        let (m, s) = mean_std(&xs);
        approx(m, mean(&xs));
        approx(s, std_dev(&xs));
    }

    #[test]
    fn constant_series_has_zero_std() {
        approx(std_dev(&[5.0; 32]), 0.0);
    }

    #[test]
    fn prefix_sums_recover_mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let (c1, c2) = prefix_value_and_square_sums(&xs);
        assert_eq!(c1, vec![0.0, 1.0, 3.0, 6.0, 10.0]);
        assert_eq!(c2, vec![0.0, 1.0, 5.0, 14.0, 30.0]);
        for l in 1..=xs.len() {
            let mu = c1[l] / l as f64;
            let var = c2[l] / l as f64 - mu * mu;
            approx(mu, mean(&xs[..l]));
            approx(var, variance(&xs[..l]));
        }
        let (e1, e2) = prefix_value_and_square_sums(&[]);
        assert_eq!(e1, vec![0.0]);
        assert_eq!(e2, vec![0.0]);
    }

    #[test]
    fn running_stats_agree_with_batch() {
        let xs = [1.5, 2.5, -3.0, 0.0, 10.0, -2.2, 7.7];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        approx(rs.mean(), mean(&xs));
        approx(rs.std_dev(), std_dev(&xs));
        assert_eq!(rs.count(), xs.len() as u64);
    }

    #[test]
    fn running_stats_empty() {
        let rs = RunningStats::new();
        approx(rs.mean(), 0.0);
        approx(rs.variance(), 0.0);
    }

    #[test]
    fn causal_cumulative_first_point_is_zero() {
        let mut cn = CausalNormalizer::cumulative();
        approx(cn.push(42.0), 0.0); // one point: sd == 0
    }

    #[test]
    fn causal_windowed_tracks_local_level() {
        // A large level shift: windowed normalizer adapts, so outputs stay
        // bounded after the window fills with post-shift data.
        let mut cn = CausalNormalizer::windowed(8);
        let mut last = 0.0;
        for i in 0..100 {
            let x = if i < 50 { 0.0 } else { 100.0 } + (i % 2) as f64;
            last = cn.push(x);
        }
        assert!(
            last.abs() < 3.0,
            "windowed normalizer should re-center, got {last}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn causal_windowed_rejects_tiny_window() {
        let _ = CausalNormalizer::windowed(1);
    }

    #[test]
    fn causal_cumulative_standardizes_stationary_stream() {
        let mut cn = CausalNormalizer::cumulative();
        let mut out = Vec::new();
        for i in 0..1000 {
            // deterministic pseudo-noise around mean 10
            let x = 10.0 + ((i * 2654435761_u64 % 1000) as f64 / 1000.0 - 0.5);
            out.push(cn.push(x));
        }
        let tail = &out[500..];
        let (m, s) = mean_std(tail);
        assert!(m.abs() < 0.3, "tail mean {m}");
        assert!((s - 1.0).abs() < 0.5, "tail std {s}");
    }
}
