//! Euclidean distances, early abandoning, and the z-normalized distance used
//! for subsequence search.

use crate::error::{CoreError, Result};
use crate::stats::mean_std;
use crate::znorm::CONSTANT_EPS;

/// Squared Euclidean distance between equal-length slices.
///
/// Computed with four independent accumulators (see [`dot_product`] for the
/// rationale); `tests::unrolled_kernels_match_naive_sum` pins agreement with
/// the naive left-to-right sum to 1e-12.
///
/// Panics in debug builds on length mismatch; use [`try_squared_euclidean`]
/// for checked input.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let (ra, rb) = (chunks_a.remainder(), chunks_b.remainder());
    let mut acc = [0.0f64; 4];
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for k in 0..4 {
            let d = ca[k] - cb[k];
            acc[k] += d * d;
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in ra.iter().zip(rb) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product of equal-length slices with four independent accumulators.
///
/// The naive `zip().map().sum()` forms one serial add chain, so the CPU
/// retires one fused multiply-add per ~4-cycle latency. Four accumulators
/// break the chain (instruction-level parallelism) and give the
/// autovectorizer independent lanes; this is the innermost kernel of the
/// subsequence-search engine ([`crate::nn`]), where it runs once per window
/// of a millions-sample haystack.
///
/// Summation order differs from the naive sum only in association, which
/// `tests::unrolled_kernels_match_naive_sum` pins to 1e-12 agreement on
/// O(1)-magnitude data.
#[inline]
pub fn dot_product(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let (ra, rb) = (chunks_a.remainder(), chunks_b.remainder());
    let mut acc = [0.0f64; 4];
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for k in 0..4 {
            acc[k] += ca[k] * cb[k];
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean distance between equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Checked squared Euclidean distance.
pub fn try_squared_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(CoreError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(squared_euclidean(a, b))
}

/// Squared Euclidean distance with early abandoning: returns `None` as soon
/// as the partial sum exceeds `cutoff` (a squared distance).
///
/// This is the standard optimization for 1NN search; on UCR-style data it
/// prunes the large majority of candidate comparisons.
#[inline]
pub fn squared_euclidean_early_abandon(a: &[f64], b: &[f64], cutoff: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        if acc > cutoff {
            return None;
        }
    }
    Some(acc)
}

/// Z-normalized Euclidean distance between a **pre-z-normalized** query `q`
/// and a **raw** window `x` of the same length.
///
/// Uses the dot-product identity (the kernel inside MASS): with `q` having
/// mean 0 and population std 1, and `x` having mean `mu` and std `sd`,
///
/// ```text
/// d^2(q, znorm(x)) = 2 * ( m  -  ( q . x ) / sd )
/// ```
///
/// because `sum(q) = 0` and `sum(q_i^2) = m`. Windows that are constant
/// (sd ~ 0) normalize to all zeros, giving `d^2 = m`.
pub fn znormalized_sq_dist(q_znormed: &[f64], x_raw: &[f64]) -> f64 {
    debug_assert_eq!(q_znormed.len(), x_raw.len());
    let m = q_znormed.len() as f64;
    let (_, sd) = mean_std(x_raw);
    if sd <= CONSTANT_EPS {
        return m;
    }
    let dot = dot_product(q_znormed, x_raw);
    (2.0 * (m - dot / sd)).max(0.0)
}

/// Z-normalized Euclidean distance (see [`znormalized_sq_dist`]).
#[inline]
pub fn znormalized_dist(q_znormed: &[f64], x_raw: &[f64]) -> f64 {
    znormalized_sq_dist(q_znormed, x_raw).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::znormalize;

    #[test]
    fn squared_euclidean_known_value() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [1.0, -2.0, 3.5];
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn checked_variant_rejects_mismatch() {
        let e = try_squared_euclidean(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            e,
            CoreError::LengthMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn early_abandon_matches_full_when_under_cutoff() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 3.0];
        let full = squared_euclidean(&a, &b);
        assert_eq!(
            squared_euclidean_early_abandon(&a, &b, full + 1.0),
            Some(full)
        );
    }

    #[test]
    fn early_abandon_prunes_over_cutoff() {
        let a = [0.0; 8];
        let b = [10.0; 8];
        assert_eq!(squared_euclidean_early_abandon(&a, &b, 50.0), None);
    }

    /// The unrolled 4-accumulator kernels only reassociate the naive
    /// left-to-right sums; on O(1)-magnitude data of every length mod 4 the
    /// results must agree to 1e-12.
    #[test]
    fn unrolled_kernels_match_naive_sum() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 150, 257] {
            let a: Vec<f64> = (0..len).map(|i| ((i as f64) * 0.61).sin() * 2.0).collect();
            let b: Vec<f64> = (0..len).map(|i| ((i as f64) * 1.13).cos() - 0.4).collect();
            let naive_dot: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            let naive_sq: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            let dot = dot_product(&a, &b);
            let sq = squared_euclidean(&a, &b);
            assert!(
                (dot - naive_dot).abs() < 1e-12,
                "len {len}: dot {dot} vs naive {naive_dot}"
            );
            assert!(
                (sq - naive_sq).abs() < 1e-12,
                "len {len}: sq {sq} vs naive {naive_sq}"
            );
        }
    }

    #[test]
    fn znormalized_dist_matches_naive() {
        let q_raw = [0.3, 1.8, -0.2, 0.9, 2.4, -1.1];
        let x_raw = [10.0, 14.0, 9.0, 12.0, 16.0, 7.5];
        let q = znormalize(&q_raw);
        let naive = euclidean(&q, &znormalize(&x_raw));
        let fast = znormalized_dist(&q, &x_raw);
        assert!((naive - fast).abs() < 1e-9, "{naive} vs {fast}");
    }

    #[test]
    fn znormalized_dist_constant_window() {
        let q = znormalize(&[1.0, 2.0, 3.0, 4.0]);
        // Constant window normalizes to zeros => d^2 = sum(q^2) = m.
        let d2 = znormalized_sq_dist(&q, &[5.0; 4]);
        assert!((d2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn znormalized_dist_is_shift_scale_invariant_in_x() {
        let q = znormalize(&[0.1, 0.5, -0.9, 1.4, 0.2]);
        let x = [3.0, 8.0, 1.0, 9.0, 4.0];
        let x2: Vec<f64> = x.iter().map(|&v| -7.0 + 3.0 * v).collect();
        let d1 = znormalized_dist(&q, &x);
        let d2 = znormalized_dist(&q, &x2);
        assert!((d1 - d2).abs() < 1e-9);
    }
}
