//! Sliding-window views over long streams.
//!
//! The streaming experiments (Figs 2, 5, 8 and Appendix B) all reduce to
//! scanning every subsequence of a long recording. These helpers keep that
//! code allocation-free.

/// Iterator over all length-`len` windows of `data` with the given `stride`.
///
/// Yields `(start_index, window_slice)`.
pub fn sliding_windows(
    data: &[f64],
    len: usize,
    stride: usize,
) -> impl Iterator<Item = (usize, &[f64])> {
    assert!(len > 0, "window length must be positive");
    assert!(stride > 0, "stride must be positive");
    let last = data.len().saturating_sub(len);
    (0..=last)
        .step_by(stride)
        .filter(move |_| data.len() >= len)
        .map(move |i| (i, &data[i..i + len]))
}

/// Number of windows [`sliding_windows`] will yield.
pub fn window_count(data_len: usize, len: usize, stride: usize) -> usize {
    if data_len < len || len == 0 || stride == 0 {
        return 0;
    }
    (data_len - len) / stride + 1
}

/// A growable prefix buffer that mimics incrementally arriving data.
///
/// Early classifiers are fed prefixes `x[..1], x[..2], ...`; this type holds
/// the arrived points and hands out the current prefix, making test and
/// deployment code share one shape.
#[derive(Debug, Clone, Default)]
pub struct PrefixBuffer {
    data: Vec<f64>,
}

impl PrefixBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer pre-sized for an expected full length.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append the next arriving point.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
    }

    /// The prefix seen so far.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of points seen so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True before any point has arrived.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Discard all points (e.g. after an alarm fires and the monitor resets).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_all_positions() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ws: Vec<_> = sliding_windows(&data, 2, 1).collect();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0], (0, &data[0..2]));
        assert_eq!(ws[3], (3, &data[3..5]));
    }

    #[test]
    fn windows_respect_stride() {
        let data = [0.0; 10];
        let starts: Vec<usize> = sliding_windows(&data, 3, 4).map(|(i, _)| i).collect();
        assert_eq!(starts, vec![0, 4]);
    }

    #[test]
    fn window_len_equal_to_data_yields_one() {
        let data = [1.0, 2.0, 3.0];
        let ws: Vec<_> = sliding_windows(&data, 3, 1).collect();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].0, 0);
    }

    #[test]
    fn window_longer_than_data_yields_none() {
        let data = [1.0, 2.0];
        assert_eq!(sliding_windows(&data, 3, 1).count(), 0);
        assert_eq!(window_count(2, 3, 1), 0);
    }

    #[test]
    fn window_count_matches_iterator() {
        for (n, len, stride) in [(10, 3, 1), (10, 3, 4), (7, 7, 2), (100, 10, 7)] {
            let data = vec![0.0; n];
            assert_eq!(
                window_count(n, len, stride),
                sliding_windows(&data, len, stride).count(),
                "n={n} len={len} stride={stride}"
            );
        }
    }

    #[test]
    fn prefix_buffer_accumulates() {
        let mut pb = PrefixBuffer::with_capacity(4);
        assert!(pb.is_empty());
        pb.push(1.0);
        pb.push(2.0);
        assert_eq!(pb.as_slice(), &[1.0, 2.0]);
        assert_eq!(pb.len(), 2);
        pb.clear();
        assert!(pb.is_empty());
    }
}
