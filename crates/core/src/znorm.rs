//! Whole-series z-normalization (the UCR convention) and its streaming
//! impossibility.
//!
//! Every dataset in the UCR archive is z-normalized: each exemplar has mean 0
//! and population standard deviation 1. Distance measures on shapes are
//! meaningless without it (Rakthanmanon et al. 2013). The catch, central to
//! the paper, is that z-normalizing a *prefix* of an oncoming pattern
//! requires statistics of points that have not arrived yet. This module
//! provides the batch operation plus helpers to make the assumption explicit
//! at call sites.

use crate::stats::mean_std;

/// Threshold below which a series is treated as constant and mapped to all
/// zeros instead of being divided by a vanishing standard deviation.
pub const CONSTANT_EPS: f64 = 1e-12;

/// Z-normalize into a fresh vector: `(x - mean) / population_std`.
///
/// Constant (or empty) series map to all zeros, matching the convention used
/// by the UCR archive tooling.
pub fn znormalize(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// Z-normalize a buffer in place. See [`znormalize`].
pub fn znormalize_in_place(xs: &mut [f64]) {
    let (m, sd) = mean_std(xs);
    if sd <= CONSTANT_EPS {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        let inv = 1.0 / sd;
        xs.iter_mut().for_each(|x| *x = (*x - m) * inv);
    }
}

/// Z-normalize each prefix of `xs` independently and call `f(len, prefix)`.
///
/// This is what an *oracle* early classifier implicitly does when it is
/// evaluated on pre-normalized UCR data: the prefix of a normalized exemplar
/// is NOT the normalization of the raw prefix. This helper computes the
/// honest per-prefix normalization so experiments can compare both.
pub fn for_each_znormalized_prefix<F: FnMut(usize, &[f64])>(xs: &[f64], min_len: usize, mut f: F) {
    let mut buf = Vec::with_capacity(xs.len());
    for len in min_len..=xs.len() {
        buf.clear();
        buf.extend_from_slice(&xs[..len]);
        znormalize_in_place(&mut buf);
        f(len, &buf);
    }
}

/// Is this series already z-normalized (to tolerance)?
pub fn is_znormalized(xs: &[f64], tol: f64) -> bool {
    if xs.is_empty() {
        return true;
    }
    let (m, sd) = mean_std(xs);
    // All-zero series (the convention for constants) also count.
    m.abs() <= tol && ((sd - 1.0).abs() <= tol || sd <= CONSTANT_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn znorm_produces_zero_mean_unit_std() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let z = znormalize(&xs);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_constant_series_is_all_zeros() {
        let z = znormalize(&[7.0; 16]);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znorm_empty_is_empty() {
        assert!(znormalize(&[]).is_empty());
    }

    #[test]
    fn znorm_is_idempotent() {
        let xs = [0.5, -2.0, 3.5, 1.0, 0.0];
        let once = znormalize(&xs);
        let twice = znormalize(&once);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn znorm_removes_shift_and_scale() {
        let xs = [0.1, 0.9, -0.4, 2.2, 1.1, -3.0];
        let shifted: Vec<f64> = xs.iter().map(|&x| 5.0 + 2.5 * x).collect();
        let a = znormalize(&xs);
        let b = znormalize(&shifted);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn prefix_normalization_differs_from_sliced_normalization() {
        // The crux of Section 4: znorm(prefix) != prefix of znorm(full).
        let xs = [0.0, 0.0, 0.0, 0.0, 10.0, 20.0, 30.0, 40.0];
        let full = znormalize(&xs);
        let prefix = znormalize(&xs[..4]);
        // Full-series normalization makes the flat head strongly negative;
        // honest prefix normalization maps the constant head to zeros.
        assert!(prefix.iter().all(|&v| v == 0.0));
        assert!(full[..4].iter().all(|&v| v < -0.5));
    }

    #[test]
    fn for_each_prefix_visits_each_length() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut lens = Vec::new();
        for_each_znormalized_prefix(&xs, 2, |len, p| {
            assert_eq!(p.len(), len);
            assert!(mean(p).abs() < 1e-9);
            lens.push(len);
        });
        assert_eq!(lens, vec![2, 3, 4, 5]);
    }

    #[test]
    fn is_znormalized_detects_both_cases() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!(!is_znormalized(&xs, 1e-6));
        assert!(is_znormalized(&znormalize(&xs), 1e-6));
        assert!(is_znormalized(&[0.0; 8], 1e-6)); // constant convention
        assert!(is_znormalized(&[], 1e-6));
    }
}
