//! Fixed-bucket log₂-scale histograms: lock-free O(1) recording, cheap
//! quantile readout, and associative merging across shards and threads.
//!
//! # Bucket layout
//!
//! A [`Histogram`] has [`BUCKETS`] (= 64) slots. Bucket 0 holds the value
//! `0`; bucket `i` (for `1 ≤ i < 63`) holds the values whose highest set
//! bit is bit `i - 1`, i.e. the half-open power-of-two range
//! `[2^(i-1), 2^i)`; the last bucket is the **overflow bucket**, holding
//! everything from `2^62` up to `u64::MAX`. A value lands in its bucket
//! with one `leading_zeros` instruction — recording is O(1), branch-light,
//! and touches exactly two relaxed atomics (bucket slot and sum).
//!
//! The inclusive upper bound of bucket `i` is therefore `2^i - 1`
//! (`u64::MAX` for the overflow bucket) — see
//! [`HistogramSnapshot::bucket_upper_bound`]. Quantiles read from a
//! snapshot return the upper bound of the bucket containing the requested
//! rank, so a reported quantile is an upper bound on the true value with
//! at most 2× relative error — the standard log₂-histogram trade: fixed
//! memory (one cache line of buckets per histogram) and wait-free writes
//! in exchange for coarse (but monotone) quantiles.
//!
//! # Merge semantics
//!
//! [`HistogramSnapshot::merge`] adds bucket counts and sums element-wise
//! with saturating arithmetic. Saturating addition of non-negative counts
//! is associative **and** commutative (`min(MAX, a+b+c)` regardless of
//! grouping), so per-shard or per-thread histograms can be merged in any
//! order — or tree-reduced — and produce the same totals. The property
//! suite in `crates/core/tests/proptests.rs` pins this down.
//!
//! The live `sum` is a relaxed `fetch_add` and therefore *wraps* if the
//! running total ever exceeds `u64::MAX` — unreachable in the intended
//! regime (a `u64` of nanoseconds is ~584 years; a `u64` of bytes is
//! 16 EiB), so recording stays a single wait-free instruction. Snapshot
//! merging saturates instead, because merged totals aggregate many
//! sources and defensive arithmetic there costs nothing per observation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bucket slots in a [`Histogram`] (one per power of two of a
/// `u64`, plus the zero bucket folded into slot 0 and the overflow values
/// folded into the last slot).
pub const BUCKETS: usize = 64;

/// A lock-free fixed-bucket log₂ histogram of `u64` observations
/// (typically nanoseconds or bytes). See the [module docs](self) for the
/// bucket layout.
///
/// All methods take `&self`; recording from many threads concurrently is
/// the intended use (the serve runtime's shard workers all record into one
/// histogram during a parallel drain). Reads ([`snapshot`](Self::snapshot))
/// are relaxed and not atomic *across* slots — a snapshot taken while
/// writers are active may be mid-update by a few counts, which is the
/// usual (and documented) telemetry trade.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`,
    /// clamped into the overflow bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one observation. O(1), wait-free, two relaxed atomic adds.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(slot) = self.buckets.get(Self::bucket_index(value)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// A plain-data copy of the current state, for quantile readout,
    /// merging, and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, slot) in buckets.iter_mut().zip(&self.buckets) {
            *out = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain data, comparable,
/// mergeable, and serializable into Prometheus exposition by
/// [`push_histogram`](super::push_histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see the [module docs](self) for
    /// which values land where).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (saturating).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (what a fresh histogram would produce).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total observations in this snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Inclusive upper bound of bucket `i`: `0` for bucket 0, `2^i - 1`
    /// for the middle buckets, `u64::MAX` for the overflow bucket.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Fold `other` into `self`: element-wise saturating adds. Saturating
    /// addition of counts is associative and commutative, so merge order
    /// (shard-by-shard, tree-reduced, any permutation) never changes the
    /// result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The merged copy of two snapshots (see [`merge`](Self::merge)).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the bucket containing the rank-`⌈q·count⌉` observation, or 0 for an
    /// empty snapshot. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total), as a rank in 1..=total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median upper bound (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Index of the highest non-empty bucket, or `None` when empty (used
    /// by the exposition helpers to stop emitting bucket lines early).
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_land_in_distinct_buckets() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 101_106);
        // p50 of 6 values → rank 3 → the bucket holding 3 → upper bound 3.
        assert_eq!(s.p50(), 3);
        // p99 → rank 6 → the bucket holding 100_000 → 2^17 - 1.
        assert_eq!(s.p99(), (1 << 17) - 1);
        assert!(s.p999() >= s.p99());
    }

    #[test]
    fn overflow_values_saturate_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 17 + i % 1024);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.highest_bucket(), None);
    }
}
