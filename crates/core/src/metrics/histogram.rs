//! Fixed-bucket latency histograms: lock-free O(1) recording, cheap
//! quantile readout, and associative merging across shards and threads —
//! in two bucket layouts, coarse log₂ (the default) and SLO-grade
//! log-linear.
//!
//! # Bucket layouts
//!
//! **[`BucketLayout::Log2`]** (default): [`BUCKETS`] (= 64) slots. Bucket
//! 0 holds the value `0`; bucket `i` (for `1 ≤ i < 63`) holds the values
//! whose highest set bit is bit `i - 1`, i.e. the half-open power-of-two
//! range `[2^(i-1), 2^i)`; the last bucket is the **overflow bucket**,
//! holding everything from `2^62` up to `u64::MAX`. A value lands in its
//! bucket with one `leading_zeros` instruction — recording is O(1),
//! branch-light, and touches exactly two relaxed atomics (bucket slot and
//! sum). A reported quantile is the upper bound of the bucket holding the
//! rank, so it never understates and overshoots by at most 2×.
//!
//! **[`BucketLayout::LogLinear4`]** (opt-in, via
//! [`Histogram::with_layout`]): every octave is split into 4 linear
//! sub-buckets (250 slots total), cutting the worst-case quantile
//! overshoot from 2× to 1.25× — ≈1.19× (2^¼) in the geometric mean across
//! a sub-bucket — at the cost of ~4× the (still fixed, still small)
//! bucket memory. Recording stays O(1): one `leading_zeros` plus two
//! shifts. Use it for SLO-grade series where the 2× log₂ error is
//! dashboard-visible; the default stays log₂ everywhere.
//!
//! # Merge semantics
//!
//! [`HistogramSnapshot::merge`] adds bucket counts and sums element-wise
//! with saturating arithmetic. Saturating addition of non-negative counts
//! is associative **and** commutative (`min(MAX, a+b+c)` regardless of
//! grouping), so per-shard or per-thread histograms can be merged in any
//! order — or tree-reduced — and produce the same totals. The property
//! suite in `crates/core/tests/proptests.rs` pins this down.
//!
//! Merging is only defined between snapshots of the **same layout**:
//! bucket `i` means different value ranges under different layouts, so
//! cross-layout addition would silently corrupt quantiles. `merge`
//! therefore refuses layout mismatches with a typed
//! [`LayoutMismatch`] error instead of guessing.
//!
//! The live `sum` is a relaxed `fetch_add` and therefore *wraps* if the
//! running total ever exceeds `u64::MAX` — unreachable in the intended
//! regime (a `u64` of nanoseconds is ~584 years; a `u64` of bytes is
//! 16 EiB), so recording stays a single wait-free instruction. Snapshot
//! merging saturates instead, because merged totals aggregate many
//! sources and defensive arithmetic there costs nothing per observation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bucket slots in a [`BucketLayout::Log2`] histogram (one per
/// power of two of a `u64`, plus the zero bucket folded into slot 0 and
/// the overflow values folded into the last slot).
pub const BUCKETS: usize = 64;

/// Slots in a [`BucketLayout::LogLinear4`] histogram: the zero bucket,
/// 4 linear sub-buckets for each of the 62 middle octaves, and the
/// overflow bucket.
pub const LOG_LINEAR4_BUCKETS: usize = 1 + 62 * 4 + 1;

/// How a [`Histogram`] maps values to bucket slots. See the
/// [module docs](self) for both layouts and their quantile error bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BucketLayout {
    /// One bucket per power of two — 64 slots, ≤2× quantile overshoot.
    /// The workspace default.
    #[default]
    Log2,
    /// Four linear sub-buckets per octave — 250 slots, ≤1.25× worst-case
    /// (~1.19× geometric-mean) quantile overshoot. Opt-in for SLO-grade
    /// series.
    LogLinear4,
}

impl BucketLayout {
    /// Stable lowercase name (for error messages and report labels).
    pub fn name(self) -> &'static str {
        match self {
            BucketLayout::Log2 => "log2",
            BucketLayout::LogLinear4 => "log_linear4",
        }
    }

    /// Number of bucket slots this layout uses.
    pub const fn bucket_count(self) -> usize {
        match self {
            BucketLayout::Log2 => BUCKETS,
            BucketLayout::LogLinear4 => LOG_LINEAR4_BUCKETS,
        }
    }

    /// Bucket index for a value under this layout. O(1): a
    /// `leading_zeros` plus (for log-linear) two shifts.
    #[inline]
    pub fn bucket_index(self, value: u64) -> usize {
        match self {
            BucketLayout::Log2 => {
                if value == 0 {
                    0
                } else {
                    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
                }
            }
            BucketLayout::LogLinear4 => {
                if value == 0 {
                    return 0;
                }
                let octave = (64 - value.leading_zeros()) as usize;
                if octave > 62 {
                    return LOG_LINEAR4_BUCKETS - 1;
                }
                let lo = 1u64 << (octave - 1);
                let off = value - lo;
                // floor(4·off / lo) without division: off < lo = 2^(o-1).
                let sub = if octave >= 3 {
                    (off >> (octave - 3)) as usize
                } else {
                    (off << (3 - octave)) as usize
                }
                .min(3);
                1 + (octave - 1) * 4 + sub
            }
        }
    }

    /// Inclusive upper bound of bucket `i` under this layout (the value a
    /// quantile readout reports for a rank landing in that bucket).
    /// Monotone in `i`; the overflow bucket reports `u64::MAX`.
    pub fn upper_bound(self, i: usize) -> u64 {
        match self {
            BucketLayout::Log2 => match i {
                0 => 0,
                _ if i >= BUCKETS - 1 => u64::MAX,
                _ => (1u64 << i) - 1,
            },
            BucketLayout::LogLinear4 => {
                if i == 0 {
                    return 0;
                }
                if i >= LOG_LINEAR4_BUCKETS - 1 {
                    return u64::MAX;
                }
                let octave = (i - 1) / 4 + 1;
                let sub = ((i - 1) % 4) as u64;
                let lo = 1u64 << (octave - 1);
                // lo - 1 + ceil((sub+1)·lo / 4); no overflow: lo ≤ 2^61.
                lo - 1 + ((sub + 1) * lo).div_ceil(4)
            }
        }
    }
}

/// A lock-free fixed-bucket histogram of `u64` observations (typically
/// nanoseconds or bytes). See the [module docs](self) for the bucket
/// layouts; [`Histogram::new`] is log₂, [`Histogram::with_layout`] opts
/// into log-linear.
///
/// All methods take `&self`; recording from many threads concurrently is
/// the intended use (the serve runtime's shard workers all record into one
/// histogram during a parallel drain). Reads ([`snapshot`](Self::snapshot))
/// are relaxed and not atomic *across* slots — a snapshot taken while
/// writers are active may be mid-update by a few counts, which is the
/// usual (and documented) telemetry trade.
#[derive(Debug)]
pub struct Histogram {
    layout: BucketLayout,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram in the default log₂ layout.
    pub fn new() -> Self {
        Self::with_layout(BucketLayout::Log2)
    }

    /// An empty histogram in the given layout.
    pub fn with_layout(layout: BucketLayout) -> Self {
        Self {
            layout,
            buckets: (0..layout.bucket_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket layout this histogram records into.
    pub fn layout(&self) -> BucketLayout {
        self.layout
    }

    /// Bucket index for a value in the **log₂** layout: 0 for 0, else
    /// `64 - leading_zeros`, clamped into the overflow bucket. (Layout
    /// method form: [`BucketLayout::bucket_index`].)
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        BucketLayout::Log2.bucket_index(value)
    }

    /// Record one observation. O(1), wait-free, two relaxed atomic adds.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(slot) = self.buckets.get(self.layout.bucket_index(value)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// A plain-data copy of the current state, for quantile readout,
    /// merging, and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            layout: self.layout,
            buckets: self
                .buckets
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// The typed refusal returned when [`HistogramSnapshot::merge`] is asked
/// to combine snapshots with different bucket layouts (bucket `i` means a
/// different value range in each, so addition would corrupt quantiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutMismatch {
    /// Layout of the snapshot being merged into.
    pub left: BucketLayout,
    /// Layout of the snapshot being merged from.
    pub right: BucketLayout,
}

impl std::fmt::Display for LayoutMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram layout mismatch: cannot merge {} into {}",
            self.right.name(),
            self.left.name()
        )
    }
}

impl std::error::Error for LayoutMismatch {}

/// A point-in-time copy of a [`Histogram`]: plain data, comparable,
/// mergeable (same layout only), and serializable into Prometheus
/// exposition by [`push_histogram`](super::push_histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The bucket layout the counts were recorded under.
    pub layout: BucketLayout,
    /// Per-bucket observation counts (`layout.bucket_count()` entries;
    /// see the [module docs](self) for which values land where).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty_with(BucketLayout::Log2)
    }
}

impl HistogramSnapshot {
    /// An empty log₂ snapshot (what a fresh [`Histogram::new`] produces).
    pub fn empty() -> Self {
        Self::default()
    }

    /// An empty snapshot in the given layout.
    pub fn empty_with(layout: BucketLayout) -> Self {
        Self {
            layout,
            buckets: vec![0; layout.bucket_count()],
            sum: 0,
        }
    }

    /// Total observations in this snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Inclusive upper bound of bucket `i` in the **log₂** layout: `0`
    /// for bucket 0, `2^i - 1` for the middle buckets, `u64::MAX` for the
    /// overflow bucket. For a layout-aware readout use
    /// [`upper_bound`](Self::upper_bound).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        BucketLayout::Log2.upper_bound(i)
    }

    /// Inclusive upper bound of this snapshot's bucket `i` under its own
    /// layout.
    pub fn upper_bound(&self, i: usize) -> u64 {
        self.layout.upper_bound(i)
    }

    /// Fold `other` into `self`: element-wise saturating adds. Saturating
    /// addition of counts is associative and commutative, so merge order
    /// (shard-by-shard, tree-reduced, any permutation) never changes the
    /// result.
    ///
    /// Refuses snapshots of unequal layouts with a typed
    /// [`LayoutMismatch`] — on `Err`, `self` is unchanged.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), LayoutMismatch> {
        if self.layout != other.layout {
            return Err(LayoutMismatch {
                left: self.layout,
                right: other.layout,
            });
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }

    /// The merged copy of two snapshots (see [`merge`](Self::merge)).
    pub fn merged(&self, other: &HistogramSnapshot) -> Result<HistogramSnapshot, LayoutMismatch> {
        let mut out = self.clone();
        out.merge(other)?;
        Ok(out)
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the bucket containing the rank-`⌈q·count⌉` observation, or 0 for an
    /// empty snapshot. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total), as a rank in 1..=total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return self.upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median upper bound (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Index of the highest non-empty bucket, or `None` when empty (used
    /// by the exposition helpers to stop emitting bucket lines early).
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_land_in_distinct_buckets() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.layout(), BucketLayout::Log2, "default stays log2");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 101_106);
        // p50 of 6 values → rank 3 → the bucket holding 3 → upper bound 3.
        assert_eq!(s.p50(), 3);
        // p99 → rank 6 → the bucket holding 100_000 → 2^17 - 1.
        assert_eq!(s.p99(), (1 << 17) - 1);
        assert!(s.p999() >= s.p99());
    }

    #[test]
    fn overflow_values_saturate_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 17 + i % 1024);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.highest_bucket(), None);
    }

    #[test]
    fn log_linear_brackets_every_value_tightly() {
        let layout = BucketLayout::LogLinear4;
        // Exhaustive at the small end, boundary-probing above.
        let mut values: Vec<u64> = (0..=4096).collect();
        for k in 12..63u32 {
            for d in [0i64, 1, -1, 3, -3] {
                values.push(((1u64 << k) as i64 + d) as u64);
            }
        }
        values.push(u64::MAX);
        for &v in &values {
            let i = layout.bucket_index(v);
            assert!(v <= layout.upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(
                    v > layout.upper_bound(i - 1),
                    "v={v} not above bucket {}'s bound {}",
                    i - 1,
                    layout.upper_bound(i - 1)
                );
            }
        }
        // Upper bounds are strictly monotone over the middle buckets.
        for i in 1..LOG_LINEAR4_BUCKETS - 1 {
            assert!(
                layout.upper_bound(i) >= layout.upper_bound(i - 1),
                "bucket {i}"
            );
        }
    }

    #[test]
    fn log_linear_cuts_quantile_overshoot_to_a_quarter_octave() {
        // Every value ≥ 4 overshoots by at most 25% under log-linear
        // (vs up to ~100% under log2).
        let layout = BucketLayout::LogLinear4;
        for &v in &[4u64, 5, 9, 100, 1_000, 123_456, 1 << 40, (1 << 45) + 12_345] {
            let ub = layout.upper_bound(layout.bucket_index(v));
            assert!(
                (ub as f64) <= v as f64 * 1.25,
                "v={v}: upper bound {ub} overshoots by more than 25%"
            );
        }
        // Concretely better than log2 on a mid-octave value.
        let h = Histogram::with_layout(BucketLayout::LogLinear4);
        let h2 = Histogram::new();
        for _ in 0..100 {
            h.record(1_050); // just above 2^10
            h2.record(1_050);
        }
        assert!(h.snapshot().p99() <= 1_050 * 5 / 4);
        assert_eq!(h2.snapshot().p99(), 2_047);
    }

    #[test]
    fn unequal_layouts_refuse_to_merge_with_a_typed_error() {
        let mut log2 = Histogram::new().snapshot();
        let ll4 = Histogram::with_layout(BucketLayout::LogLinear4).snapshot();
        let before = log2.clone();
        let err = log2.merge(&ll4).expect_err("layouts differ");
        assert_eq!(err.left, BucketLayout::Log2);
        assert_eq!(err.right, BucketLayout::LogLinear4);
        assert!(err.to_string().contains("log_linear4"));
        assert_eq!(log2, before, "failed merge leaves the target unchanged");
        assert!(log2.merged(&ll4).is_err());
        // Same layouts still merge fine, either way.
        let mut a = HistogramSnapshot::empty_with(BucketLayout::LogLinear4);
        assert!(a.merge(&ll4).is_ok());
        assert!(HistogramSnapshot::empty().merge(&before).is_ok());
    }

    #[test]
    fn log_linear_small_octaves_are_exact() {
        let layout = BucketLayout::LogLinear4;
        // Values 0..4 each get their own effective bucket.
        for v in 0..4u64 {
            let ub = layout.upper_bound(layout.bucket_index(v));
            assert_eq!(ub, v, "small values are exact");
        }
    }
}
