//! The workspace's clock policy, as a type.
//!
//! Every timing read in the stack goes through a [`Clock`] handed in by
//! the caller — never through an ambient `Instant::now()` call site of its
//! own. That keeps latency instrumentation compatible with the two
//! invariants the e2e suites enforce:
//!
//! * **Determinism** — alarm *content* never consumes a clock value, and
//!   the etsc-lint `determinism` rule bans ambient clocks everywhere
//!   except this module: `Clock::monotonic()` is the single sanctioned
//!   `Instant::now` site in the workspace. Tests and fault-injection
//!   harnesses use [`Clock::manual`], stepping time explicitly, so a
//!   timing-instrumented run replays bit-identically.
//! * **Zero interference** — [`Clock::disabled`] turns every `now_ns`
//!   read into a constant, letting benches A/B the cost of the
//!   instrumentation itself (the serve bench asserts it under 5%).
//!
//! Cloning is cheap and shares the underlying time source: clones of a
//! manual clock all see the same [`advance_ns`](Clock::advance_ns) steps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A nanosecond clock: monotonic in production, manually stepped in
/// tests, or disabled for overhead measurement. See the
/// [module docs](self) for the policy.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Real elapsed time since the clock was built.
    Monotonic { origin: Instant },
    /// Logical time, shared across clones, advanced explicitly.
    Manual { now_ns: Arc<AtomicU64> },
    /// Every read returns 0; timing-gated instrumentation skips its reads.
    Disabled,
}

impl Default for Clock {
    fn default() -> Self {
        Self::monotonic()
    }
}

impl Clock {
    /// A monotonic production clock reading real elapsed nanoseconds.
    ///
    /// This constructor is the workspace's one sanctioned ambient-clock
    /// call site (see the [module docs](self)).
    pub fn monotonic() -> Self {
        Self {
            inner: Inner::Monotonic {
                origin: Instant::now(),
            },
        }
    }

    /// A manual clock starting at 0 ns. Clones share the time source:
    /// advancing any clone advances them all, so a test can hand a runtime
    /// a clock and step it from outside.
    pub fn manual() -> Self {
        Self {
            inner: Inner::Manual {
                now_ns: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// A clock whose reads all return 0. Instrumentation gates its timing
    /// reads on [`is_disabled`](Self::is_disabled), so a disabled clock
    /// measures the *uninstrumented* hot path — the baseline half of the
    /// overhead A/B in `bench_serve`.
    pub fn disabled() -> Self {
        Self {
            inner: Inner::Disabled,
        }
    }

    /// True for a [`disabled`](Self::disabled) clock — hoist this check
    /// out of hot loops and skip the paired `now_ns` reads entirely.
    pub fn is_disabled(&self) -> bool {
        matches!(self.inner, Inner::Disabled)
    }

    /// Current time in nanoseconds: elapsed-since-construction
    /// (monotonic), the stepped logical time (manual), or 0 (disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Inner::Monotonic { origin } => {
                u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Inner::Manual { now_ns } => now_ns.load(Ordering::Relaxed),
            Inner::Disabled => 0,
        }
    }

    /// Step a [`manual`](Self::manual) clock forward by `ns` (shared with
    /// every clone); returns `false` (and does nothing) on monotonic and
    /// disabled clocks.
    pub fn advance_ns(&self, ns: u64) -> bool {
        match &self.inner {
            Inner::Manual { now_ns } => {
                now_ns.fetch_add(ns, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Step a manual clock forward by a [`Duration`] (convenience wrapper
    /// over [`advance_ns`](Self::advance_ns)).
    pub fn advance(&self, by: Duration) -> bool {
        self.advance_ns(u64::try_from(by.as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let clock = Clock::manual();
        let twin = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        assert!(clock.advance_ns(250));
        assert_eq!(twin.now_ns(), 250);
        assert!(twin.advance(Duration::from_nanos(50)));
        assert_eq!(clock.now_ns(), 300);
    }

    #[test]
    fn disabled_clock_reads_zero_and_refuses_advances() {
        let clock = Clock::disabled();
        assert!(clock.is_disabled());
        assert_eq!(clock.now_ns(), 0);
        assert!(!clock.advance_ns(100));
        assert_eq!(clock.now_ns(), 0);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let clock = Clock::monotonic();
        assert!(!clock.is_disabled());
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        assert!(!clock.advance_ns(1), "real time cannot be stepped");
    }
}
