#![warn(missing_docs)]

//! # etsc-core
//!
//! Foundation crate of the `etsc` workspace: the time-series data model,
//! normalization, distance measures, and nearest-neighbor search used by the
//! reproduction of *"When is Early Classification of Time Series
//! Meaningful?"* (Wu, Der & Keogh).
//!
//! The design deliberately separates two worlds the paper contrasts:
//!
//! * the **UCR format** ([`dataset::UcrDataset`]): equal-length, aligned,
//!   z-normalized exemplars — the setting in which published early
//!   classifiers are trained and evaluated, and
//! * the **streaming world** ([`window`], [`nn`]): unbounded, un-normalized
//!   data in which those classifiers must actually run.
//!
//! Normalization is explicit everywhere. [`stats::CausalNormalizer`] only
//! uses the past; [`znorm::znormalize`] uses the whole series and therefore
//! "peeks into the future" when applied to a growing prefix — exactly the
//! flaw Section 4 of the paper identifies. Keeping both in one crate lets
//! higher layers state *which* assumption they make.

pub mod dataset;
pub mod distance;
pub mod dtw;
pub mod error;
pub mod event;
pub mod hash;
pub mod metrics;
pub mod nn;
pub mod parallel;
pub mod stats;
pub mod trace;
pub mod window;
pub mod znorm;

pub use dataset::{ClassLabel, UcrDataset};
pub use error::{CoreError, Result};
pub use event::{AnnotatedStream, Event};
