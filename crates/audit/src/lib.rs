#![warn(missing_docs)]

//! # etsc-audit
//!
//! Meaningfulness audits for early time series classification — the paper's
//! Section 6 recommendations turned into a library. Before anyone deploys an
//! early classifier, these audits quantify the four things the paper says a
//! concrete, falsifiable ETSC problem definition must consider:
//!
//! 1. **Costs** — the cost of a false positive for the actionable class vs.
//!    the cost of a false negative ([`report`], via
//!    [`etsc_stream::CostModel`]).
//! 2. **Confusability** — the probability that the domain contains
//!    *prefixes* ([`prefix`]), *inclusions* ([`inclusion`]), and
//!    *homophones* ([`homophone`]) that resemble the actionable class.
//! 3. **Prior** — the prior probability of seeing a member of the
//!    actionable class at all ([`report`]).
//! 4. **Normalization** — whether the domain tolerates the normalization
//!    assumptions the model silently makes ([`normalization`]).
//!
//! [`report::MeaningfulnessReport`] combines all four into a reproducible
//! verdict with per-criterion evidence.

pub mod homophone;
pub mod inclusion;
pub mod lexicon;
pub mod normalization;
pub mod prefix;
pub mod report;

pub use lexicon::PatternLexicon;
pub use report::{Assessment, MeaningfulnessReport};
