//! The inclusion audit (Section 3.2 of the paper).
//!
//! "The inclusion problem is the assumption that the pattern to be early
//! classified is not comprised of smaller atomic units that are frequently
//! observed on their own" — and, conversely, that the pattern does not occur
//! *inside* other patterns (*point* inside *disappointing*, *gun* inside
//! *burgundy*). By Zipf's law the containing patterns can be vastly more
//! common than the target itself.
//!
//! Given targets and a lexicon, this audit finds every lexicon entry that
//! *contains* a target anywhere (not just at the head — that case is the
//! prefix audit).

use etsc_core::distance::znormalized_sq_dist;
use etsc_core::znorm::znormalize;

use crate::lexicon::PatternLexicon;

/// One inclusion collision.
#[derive(Debug, Clone, PartialEq)]
pub struct InclusionFinding {
    /// Target pattern name.
    pub target: String,
    /// Containing lexicon pattern.
    pub confuser: String,
    /// Best-match distance (length-normalized, z-normalized).
    pub dist: f64,
    /// Offset in the confuser where the best match starts.
    pub position: usize,
}

/// Best (minimum) length-normalized z-distance of `target` over all windows
/// of `container`, with the matching offset. `None` if the container is
/// shorter than the target.
pub fn inclusion_distance(target: &[f64], container: &[f64]) -> Option<(f64, usize)> {
    let m = target.len();
    if container.len() < m || m == 0 {
        return None;
    }
    let t = znormalize(target);
    let mut best = (f64::INFINITY, 0usize);
    for start in 0..=(container.len() - m) {
        let d2 = znormalized_sq_dist(&t, &container[start..start + m]);
        if d2 < best.0 {
            best = (d2, start);
        }
    }
    Some((best.0.sqrt() / (m as f64).sqrt(), best.1))
}

/// Find every lexicon entry containing one of the `targets` within
/// `tolerance`. Entries that *are* the target (same length, distance ~0) are
/// reported too — deciding whether an exact standalone occurrence is a
/// confuser is the caller's domain knowledge, not the audit's.
pub fn inclusion_audit(
    targets: &PatternLexicon,
    lexicon: &PatternLexicon,
    tolerance: f64,
) -> Vec<InclusionFinding> {
    let mut findings = Vec::new();
    for (tname, tpat) in targets.iter() {
        for (cname, cpat) in lexicon.iter() {
            if let Some((dist, position)) = inclusion_distance(tpat, cpat) {
                if dist <= tolerance {
                    findings.push(InclusionFinding {
                        target: tname.to_string(),
                        confuser: cname.to_string(),
                        dist,
                        position,
                    });
                }
            }
        }
    }
    findings.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_embedded_target() {
        let target = vec![0.0, 3.0, 1.0, 4.0, 1.0, 5.0];
        let mut container = vec![9.0, 8.0, 7.0];
        container.extend(target.iter().map(|&v| v * 2.0 + 10.0)); // affine copy
        container.extend([0.0, 1.0]);
        let (d, pos) = inclusion_distance(&target, &container).unwrap();
        assert!(d < 1e-6, "affine-embedded target must match, d={d}");
        assert_eq!(pos, 3);
    }

    #[test]
    fn requires_container_at_least_target_length() {
        let t = vec![1.0, 2.0, 3.0];
        assert!(inclusion_distance(&t, &[1.0, 2.0]).is_none());
        assert!(inclusion_distance(&t, &[1.0, 2.0, 3.0]).is_some());
    }

    #[test]
    fn audit_reports_positions() {
        let targets = PatternLexicon::new().with("gun", vec![0.0, 5.0, 2.0, 6.0]);
        let mut burgundy = vec![1.0, 1.2, 0.8];
        burgundy.extend([0.0, 5.0, 2.0, 6.0]);
        burgundy.extend([3.0, 3.3]);
        let lexicon = PatternLexicon::new()
            .with("burgundy", burgundy)
            .with("flat", vec![0.0; 10]);
        let f = inclusion_audit(&targets, &lexicon, 0.2);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].confuser, "burgundy");
        assert_eq!(f[0].position, 3);
    }

    #[test]
    fn prefix_findings_are_a_subset_of_inclusion_findings() {
        // Anything the prefix audit flags, the inclusion audit also flags
        // (at position 0) — inclusion is the weaker (more inclusive) notion.
        let target = vec![0.0, 1.0, 0.5, 2.0, 1.5];
        let mut confuser = target.clone();
        confuser.extend([9.0, -3.0]);
        let targets = PatternLexicon::new().with("t", target);
        let lexicon = PatternLexicon::new().with("c", confuser);
        let pf = crate::prefix::prefix_audit(&targets, &lexicon, 0.2);
        let inf = inclusion_audit(&targets, &lexicon, 0.2);
        assert_eq!(pf.len(), 1);
        assert_eq!(inf.len(), 1);
        assert_eq!(inf[0].position, 0);
    }
}
