//! The prefix audit (Section 3.1 of the paper).
//!
//! "The prefix problem is the assumption that the pattern to be early
//! classified is not a prefix of a longer innocuous pattern." Eighty-eight
//! English words begin with *gun*; an early classifier trained to fire on
//! the first 40% of *gun* will fire on all of them.
//!
//! Given target patterns and a lexicon of other patterns the domain
//! produces, this audit finds every lexicon entry whose *beginning* is
//! within tolerance of a target — each one is a guaranteed false positive
//! for a deployed early classifier.

use etsc_core::distance::euclidean;
use etsc_core::znorm::znormalize;

use crate::lexicon::PatternLexicon;

/// One prefix collision.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixFinding {
    /// Target pattern name.
    pub target: String,
    /// The longer lexicon pattern whose head matches the target.
    pub confuser: String,
    /// Length-normalized z-normalized Euclidean distance between the target
    /// and the confuser's head.
    pub dist: f64,
    /// Length of the compared region (= target length).
    pub compared_len: usize,
}

/// Compare a target against the head of a longer pattern:
/// length-normalized distance between the z-normalized target and the
/// z-normalized equal-length head of the confuser.
pub fn prefix_distance(target: &[f64], longer: &[f64]) -> Option<f64> {
    let m = target.len();
    if longer.len() <= m || m == 0 {
        return None; // not strictly longer: no prefix relationship
    }
    let t = znormalize(target);
    let head = znormalize(&longer[..m]);
    Some(euclidean(&t, &head) / (m as f64).sqrt())
}

/// Find every lexicon entry that begins like one of the `targets`.
///
/// `tolerance` is in length-normalized z-distance units; z-normalized white
/// noise pairs sit around √2 ≈ 1.41, identical shapes at 0. Values near
/// 0.3–0.5 mean "a deployed matcher will not tell these apart".
pub fn prefix_audit(
    targets: &PatternLexicon,
    lexicon: &PatternLexicon,
    tolerance: f64,
) -> Vec<PrefixFinding> {
    let mut findings = Vec::new();
    for (tname, tpat) in targets.iter() {
        for (cname, cpat) in lexicon.iter() {
            if let Some(dist) = prefix_distance(tpat, cpat) {
                if dist <= tolerance {
                    findings.push(PrefixFinding {
                        target: tname.to_string(),
                        confuser: cname.to_string(),
                        dist,
                        compared_len: tpat.len(),
                    });
                }
            }
        }
    }
    findings.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<f64> {
        (0..len).map(|i| i as f64).collect()
    }

    #[test]
    fn detects_literal_prefix() {
        let target = ramp(10);
        let mut longer = ramp(10);
        longer.extend([9.0, 5.0, 0.0, 2.0, 7.0]); // continues differently
        let d = prefix_distance(&target, &longer).unwrap();
        assert!(d < 1e-9, "literal prefix must be distance ~0, got {d}");
    }

    #[test]
    fn prefix_distance_requires_strictly_longer() {
        let t = ramp(10);
        assert!(prefix_distance(&t, &ramp(10)).is_none());
        assert!(prefix_distance(&t, &ramp(5)).is_none());
        assert!(prefix_distance(&t, &ramp(11)).is_some());
    }

    #[test]
    fn audit_finds_planted_confusers() {
        let targets = PatternLexicon::new().with("cat", vec![0.0, 1.0, 0.5, -0.5, 0.0, 1.5]);
        let mut catalog = vec![0.0, 1.0, 0.5, -0.5, 0.0, 1.5];
        catalog.extend([2.0, -1.0, 0.3, 0.9]);
        let unrelated: Vec<f64> = (0..12).map(|i| ((i * i) as f64).sin() * 3.0).collect();
        let lexicon = PatternLexicon::new()
            .with("catalog", catalog)
            .with("zebra", unrelated);
        let findings = prefix_audit(&targets, &lexicon, 0.3);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].confuser, "catalog");
        assert_eq!(findings[0].target, "cat");
        assert_eq!(findings[0].compared_len, 6);
    }

    #[test]
    fn findings_sorted_by_distance() {
        let targets = PatternLexicon::new().with("t", vec![0.0, 1.0, 2.0, 3.0]);
        let lexicon = PatternLexicon::new()
            .with("near", vec![0.0, 1.0, 2.0, 3.1, 9.0])
            .with("exact", vec![0.0, 1.0, 2.0, 3.0, 9.0]);
        let f = prefix_audit(&targets, &lexicon, 1.0);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].confuser, "exact");
        assert!(f[0].dist <= f[1].dist);
    }

    #[test]
    fn shift_invariance_of_the_audit() {
        // The confuser is a shifted/scaled copy of the target plus a tail —
        // the audit works on shape, so it must still fire.
        let target = vec![0.0, 2.0, 1.0, 3.0, 0.5, 2.5];
        let mut confuser: Vec<f64> = target.iter().map(|&v| 100.0 + 7.0 * v).collect();
        confuser.extend([120.0, 90.0]);
        let targets = PatternLexicon::new().with("t", target);
        let lexicon = PatternLexicon::new().with("c", confuser);
        assert_eq!(prefix_audit(&targets, &lexicon, 0.1).len(), 1);
    }
}
