//! The combined meaningfulness report — Section 6's checklist as a value.
//!
//! "Any such definition would, at a minimum, have to consider: (1) the cost
//! of a false positive … vs. the cost of a false negative; (2) the
//! probability that the domain … contains prefixes, inclusions, and
//! homophones that resemble the actionable class(es); (3) the prior
//! probability of seeing a member of the actionable class(es); (4) the
//! appropriateness of the normalization assumptions for the domain."

use std::fmt;

use etsc_stream::CostModel;

use crate::homophone::HomophoneFinding;
use crate::inclusion::InclusionFinding;
use crate::normalization::SensitivityReport;
use crate::prefix::PrefixFinding;

/// Per-criterion verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assessment {
    /// No evidence of a problem.
    Pass,
    /// Evidence of risk; deployment demands further domain analysis.
    Caution,
    /// The criterion rules out meaningful deployment as posed.
    Fail,
}

impl fmt::Display for Assessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Assessment::Pass => "PASS",
            Assessment::Caution => "CAUTION",
            Assessment::Fail => "FAIL",
        };
        write!(f, "{s}")
    }
}

/// Inputs for criterion 1 (costs) and 3 (prior).
#[derive(Debug, Clone, Copy)]
pub struct DeploymentAssumptions {
    /// The intervention economics.
    pub cost_model: CostModel,
    /// Expected target-class events per million samples of stream.
    pub events_per_million: f64,
    /// Expected false positives per million samples (from a pilot run or
    /// the confusability audits).
    pub expected_fp_per_million: f64,
}

/// The combined report.
#[derive(Debug, Clone)]
pub struct MeaningfulnessReport {
    /// Criterion 1 inputs.
    pub assumptions: DeploymentAssumptions,
    /// Criterion 2 evidence.
    pub prefix_findings: Vec<PrefixFinding>,
    /// Criterion 2 evidence.
    pub inclusion_findings: Vec<InclusionFinding>,
    /// Criterion 2 evidence.
    pub homophone_findings: Vec<HomophoneFinding>,
    /// Criterion 4 evidence.
    pub sensitivity: SensitivityReport,
}

impl MeaningfulnessReport {
    /// Criterion 1: can the deployment break even at the expected FP rate?
    pub fn cost_assessment(&self) -> Assessment {
        let a = &self.assumptions;
        if a.events_per_million <= 0.0 {
            return Assessment::Fail; // nothing to detect
        }
        let fp_per_tp = a.expected_fp_per_million / a.events_per_million;
        let break_even = a.cost_model.break_even_fp_per_tp();
        if fp_per_tp <= break_even * 0.5 {
            Assessment::Pass
        } else if fp_per_tp <= break_even {
            Assessment::Caution
        } else {
            Assessment::Fail
        }
    }

    /// Criterion 2: how confusable is the target class?
    pub fn confusability_assessment(&self) -> Assessment {
        let n_collisions = self.prefix_findings.len() + self.inclusion_findings.len();
        let n_homophones = self
            .homophone_findings
            .iter()
            .filter(|f| f.has_homophone())
            .count();
        if n_collisions == 0 && n_homophones == 0 {
            Assessment::Pass
        } else if n_homophones == 0 && n_collisions <= 2 {
            Assessment::Caution
        } else {
            Assessment::Fail
        }
    }

    /// Criterion 3: is the class prior workable? With extremely rare events
    /// even a tiny per-window FP probability swamps the true positives.
    pub fn prior_assessment(&self) -> Assessment {
        let e = self.assumptions.events_per_million;
        if e <= 0.0 {
            Assessment::Fail
        } else if e < 1.0 {
            Assessment::Caution
        } else {
            Assessment::Pass
        }
    }

    /// Criterion 4: does accuracy survive denormalization?
    pub fn normalization_assessment(&self) -> Assessment {
        let drop = self.sensitivity.max_drop();
        if drop <= 0.05 {
            Assessment::Pass
        } else if drop <= 0.15 {
            Assessment::Caution
        } else {
            Assessment::Fail
        }
    }

    /// Overall verdict: the worst of the four criteria.
    pub fn overall(&self) -> Assessment {
        [
            self.cost_assessment(),
            self.confusability_assessment(),
            self.prior_assessment(),
            self.normalization_assessment(),
        ]
        .into_iter()
        .max_by_key(|a| match a {
            Assessment::Pass => 0,
            Assessment::Caution => 1,
            Assessment::Fail => 2,
        })
        .expect("four criteria")
    }

    /// Human-readable rendering for experiment logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Meaningfulness audit (Wu, Der & Keogh, Section 6)\n");
        out.push_str(&format!(
            "  [1] costs:         {}  (break-even {:.1} FP/TP, expected {:.1} FP/TP)\n",
            self.cost_assessment(),
            self.assumptions.cost_model.break_even_fp_per_tp(),
            if self.assumptions.events_per_million > 0.0 {
                self.assumptions.expected_fp_per_million / self.assumptions.events_per_million
            } else {
                f64::INFINITY
            },
        ));
        out.push_str(&format!(
            "  [2] confusability: {}  ({} prefix, {} inclusion, {} homophone findings)\n",
            self.confusability_assessment(),
            self.prefix_findings.len(),
            self.inclusion_findings.len(),
            self.homophone_findings
                .iter()
                .filter(|f| f.has_homophone())
                .count(),
        ));
        out.push_str(&format!(
            "  [3] prior:         {}  ({:.2} events per million samples)\n",
            self.prior_assessment(),
            self.assumptions.events_per_million,
        ));
        out.push_str(&format!(
            "  [4] normalization: {}  (max accuracy drop {:.1}%)\n",
            self.normalization_assessment(),
            self.sensitivity.max_drop() * 100.0,
        ));
        out.push_str(&format!("  overall:           {}\n", self.overall()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalization::SweepPoint;

    fn clean_report() -> MeaningfulnessReport {
        MeaningfulnessReport {
            assumptions: DeploymentAssumptions {
                cost_model: CostModel::appendix_b(),
                events_per_million: 100.0,
                expected_fp_per_million: 50.0,
            },
            prefix_findings: vec![],
            inclusion_findings: vec![],
            homophone_findings: vec![],
            sensitivity: SensitivityReport {
                sweep: vec![
                    SweepPoint {
                        offset: 0.0,
                        accuracy: 0.95,
                        earliness: 0.4,
                    },
                    SweepPoint {
                        offset: 1.0,
                        accuracy: 0.93,
                        earliness: 0.4,
                    },
                ],
            },
        }
    }

    #[test]
    fn clean_domain_passes() {
        let r = clean_report();
        assert_eq!(r.cost_assessment(), Assessment::Pass);
        assert_eq!(r.confusability_assessment(), Assessment::Pass);
        assert_eq!(r.prior_assessment(), Assessment::Pass);
        assert_eq!(r.normalization_assessment(), Assessment::Pass);
        assert_eq!(r.overall(), Assessment::Pass);
    }

    #[test]
    fn fp_flood_fails_costs() {
        let mut r = clean_report();
        r.assumptions.expected_fp_per_million = 10_000.0;
        assert_eq!(r.cost_assessment(), Assessment::Fail);
        assert_eq!(r.overall(), Assessment::Fail);
    }

    #[test]
    fn homophones_fail_confusability() {
        let mut r = clean_report();
        r.homophone_findings.push(HomophoneFinding {
            probe_index: 0,
            background: "eog".into(),
            in_class_nn_dist: 2.0,
            background_nn_dist: 1.0,
            background_nn_start: 10,
        });
        assert_eq!(r.confusability_assessment(), Assessment::Fail);
    }

    #[test]
    fn few_prefix_collisions_are_caution() {
        let mut r = clean_report();
        r.prefix_findings.push(PrefixFinding {
            target: "cat".into(),
            confuser: "catalog".into(),
            dist: 0.1,
            compared_len: 10,
        });
        assert_eq!(r.confusability_assessment(), Assessment::Caution);
        assert_eq!(r.overall(), Assessment::Caution);
    }

    #[test]
    fn rare_events_are_cautioned_or_failed() {
        let mut r = clean_report();
        r.assumptions.events_per_million = 0.5;
        r.assumptions.expected_fp_per_million = 0.1;
        assert_eq!(r.prior_assessment(), Assessment::Caution);
        r.assumptions.events_per_million = 0.0;
        assert_eq!(r.prior_assessment(), Assessment::Fail);
    }

    #[test]
    fn normalization_fragility_fails() {
        let mut r = clean_report();
        r.sensitivity.sweep[1].accuracy = 0.6; // 35-point drop
        assert_eq!(r.normalization_assessment(), Assessment::Fail);
    }

    #[test]
    fn render_mentions_all_criteria() {
        let text = clean_report().render();
        for needle in [
            "costs",
            "confusability",
            "prior",
            "normalization",
            "overall",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn assessment_display() {
        assert_eq!(Assessment::Pass.to_string(), "PASS");
        assert_eq!(Assessment::Caution.to_string(), "CAUTION");
        assert_eq!(Assessment::Fail.to_string(), "FAIL");
    }
}
