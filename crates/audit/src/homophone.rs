//! The homophone audit (Section 3.3, Fig 5 of the paper).
//!
//! "The homophone problem is the assumption that two semantically different
//! events will have different shapes in the time series representation."
//! Fig 5 takes random GunPoint exemplars and finds their nearest neighbors
//! inside eye-movement data, a smoothed random walk, and insect behavior —
//! in every case the gesture's nearest neighbor in *gesture-free* data is
//! closer than the other exemplar of its own class.
//!
//! This audit reproduces that measurement: for each probe exemplar, compare
//! its in-class nearest-neighbor distance against its nearest-neighbor
//! distance inside an out-of-domain background stream. A **homophone ratio**
//! below 1 means the background contains better matches than the class
//! itself — streaming deployment will be flooded with false positives.

use etsc_core::distance::euclidean;
use etsc_core::nn::{top_k_neighbors, BatchProfile, Match};
use etsc_core::znorm::znormalize;
use etsc_core::UcrDataset;

/// The homophone measurement for one probe exemplar against one background.
#[derive(Debug, Clone, PartialEq)]
pub struct HomophoneFinding {
    /// Index of the probe exemplar in the probe dataset.
    pub probe_index: usize,
    /// Name of the background stream searched.
    pub background: String,
    /// Distance to the nearest same-class exemplar (z-normalized ED).
    pub in_class_nn_dist: f64,
    /// Distance to the nearest subsequence of the background.
    pub background_nn_dist: f64,
    /// Offset of the background match.
    pub background_nn_start: usize,
}

impl HomophoneFinding {
    /// `background_nn_dist / in_class_nn_dist`; < 1 ⇒ a homophone exists.
    pub fn ratio(&self) -> f64 {
        if self.in_class_nn_dist <= 0.0 {
            f64::INFINITY
        } else {
            self.background_nn_dist / self.in_class_nn_dist
        }
    }

    /// Does gesture-free data beat the probe's own class?
    pub fn has_homophone(&self) -> bool {
        self.background_nn_dist < self.in_class_nn_dist
    }
}

/// Distance from probe `i` to its nearest same-class neighbor in `data`
/// (both z-normalized — the shape comparison convention).
pub fn in_class_nn_dist(data: &UcrDataset, i: usize) -> f64 {
    let probe = znormalize(data.series(i));
    let mut best = f64::INFINITY;
    for j in 0..data.len() {
        if j != i && data.label(j) == data.label(i) {
            let d = euclidean(&probe, &znormalize(data.series(j)));
            best = best.min(d);
        }
    }
    best
}

/// Run the Fig 5 measurement: for each probe index, search each named
/// background stream for the probe's nearest subsequence and compare with
/// the probe's in-class nearest neighbor.
///
/// Every probe queries the same backgrounds, so each background's
/// [`BatchProfile`] engine is built once (one cumulative-statistics pass)
/// and reused across all probes — the multi-query shape this engine exists
/// for.
pub fn homophone_audit(
    probes: &UcrDataset,
    probe_indices: &[usize],
    backgrounds: &[(&str, &[f64])],
) -> Vec<HomophoneFinding> {
    let engines: Vec<(&str, BatchProfile<'_>)> = backgrounds
        .iter()
        .map(|&(name, stream)| (name, BatchProfile::new(stream)))
        .collect();
    let mut findings = Vec::new();
    for &i in probe_indices {
        let in_class = in_class_nn_dist(probes, i);
        for (name, engine) in &engines {
            if let Some(Match { start, dist }) = engine.nearest(probes.series(i)) {
                findings.push(HomophoneFinding {
                    probe_index: i,
                    background: name.to_string(),
                    in_class_nn_dist: in_class,
                    background_nn_dist: dist,
                    background_nn_start: start,
                });
            }
        }
    }
    findings
}

/// The k nearest background subsequences of one probe (Fig 5 clusters each
/// probe with its three nearest background neighbors).
pub fn background_neighbors(probe: &[f64], background: &[f64], k: usize) -> Vec<Match> {
    top_k_neighbors(probe, background, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-class probe set: distinctive double-bump vs single-ramp shapes.
    fn probes() -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..3 {
                let jitter = i as f64 * 0.05;
                data.push(
                    (0..32)
                        .map(|j| {
                            let t = j as f64 / 32.0;
                            if c == 0 {
                                (std::f64::consts::TAU * 2.0 * t).sin() + jitter * t
                            } else {
                                t * 2.0 + jitter
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn planted_copy_in_background_gives_ratio_below_one() {
        let p = probes();
        // Background: noise plus an exact copy of probe 0.
        let mut bg: Vec<f64> = (0..500).map(|i| ((i * 37) % 97) as f64 / 10.0).collect();
        let probe0: Vec<f64> = p.series(0).to_vec();
        bg.extend(probe0.iter().map(|&v| 50.0 + 3.0 * v));
        let f = homophone_audit(&p, &[0], &[("noise+copy", &bg)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].has_homophone(), "planted copy is a perfect homophone");
        assert!(f[0].ratio() < 0.5);
        assert!(f[0].background_nn_start >= 490);
    }

    #[test]
    fn in_class_distance_uses_same_class_only() {
        let p = probes();
        let d = in_class_nn_dist(&p, 0);
        // Probe 0's same-class neighbors are jittered copies: close.
        assert!(d < 2.0, "in-class NN should be close, got {d}");
        // All probes have at least one same-class neighbor.
        for i in 0..p.len() {
            assert!(in_class_nn_dist(&p, i).is_finite());
        }
    }

    #[test]
    fn audit_covers_all_probe_background_pairs() {
        let p = probes();
        let bg1: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let bg2: Vec<f64> = (0..200).map(|i| (i as f64 * 0.02).cos()).collect();
        let f = homophone_audit(&p, &[0, 3], &[("a", &bg1), ("b", &bg2)]);
        assert_eq!(f.len(), 4);
        let names: Vec<&str> = f.iter().map(|x| x.background.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn ratio_handles_degenerate_in_class_distance() {
        let f = HomophoneFinding {
            probe_index: 0,
            background: "x".into(),
            in_class_nn_dist: 0.0,
            background_nn_dist: 1.0,
            background_nn_start: 0,
        };
        assert_eq!(f.ratio(), f64::INFINITY);
        assert!(!f.has_homophone());
    }

    #[test]
    fn short_background_yields_no_findings() {
        let p = probes();
        let tiny = [1.0, 2.0];
        let f = homophone_audit(&p, &[0], &[("tiny", &tiny[..])]);
        assert!(f.is_empty());
    }
}
