//! The normalization sensitivity audit (Section 4, Table 1, Fig 6).
//!
//! ETSC models trained and tested on UCR-format data silently assume every
//! incoming prefix is z-normalized with statistics of data that does not
//! exist yet. This audit measures how much accuracy an early classifier
//! loses when test exemplars are shifted/scaled by amounts that are
//! physically trivial (Fig 6: a camera tilt of ~1.9°, an actor in heels).

use etsc_core::UcrDataset;
use etsc_early::metrics::{evaluate, PrefixPolicy};
use etsc_early::EarlyClassifier;

/// One point of the sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Maximum absolute offset applied (uniform in `[-offset, offset]`).
    pub offset: f64,
    /// Accuracy at this perturbation level.
    pub accuracy: f64,
    /// Mean earliness at this perturbation level.
    pub earliness: f64,
}

/// Result of the normalization sensitivity audit.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// Accuracy/earliness at each offset level, ascending.
    pub sweep: Vec<SweepPoint>,
}

impl SensitivityReport {
    /// Accuracy on unperturbed data (offset 0), if it was swept.
    pub fn baseline_accuracy(&self) -> Option<f64> {
        self.sweep
            .iter()
            .find(|p| p.offset == 0.0)
            .map(|p| p.accuracy)
    }

    /// Largest accuracy drop from the baseline across the sweep.
    pub fn max_drop(&self) -> f64 {
        match self.baseline_accuracy() {
            None => 0.0,
            Some(base) => self
                .sweep
                .iter()
                .map(|p| base - p.accuracy)
                .fold(0.0, f64::max),
        }
    }

    /// Is the model robust to denormalization (max drop below `tol`)?
    pub fn is_robust(&self, tol: f64) -> bool {
        self.max_drop() <= tol
    }
}

/// Sweep accuracy of a fitted early classifier over increasing
/// denormalization offsets. `test` should be in the form the classifier was
/// evaluated on originally (z-normalized for UCR-style models); `policy`
/// controls the prefix convention during evaluation.
pub fn sensitivity_sweep<C: EarlyClassifier + ?Sized>(
    clf: &C,
    test: &UcrDataset,
    offsets: &[f64],
    policy: PrefixPolicy,
    seed: u64,
) -> SensitivityReport {
    let mut sweep: Vec<SweepPoint> = offsets
        .iter()
        .map(|&offset| {
            let perturbed = if offset == 0.0 {
                test.clone()
            } else {
                shift_dataset(test, offset, seed)
            };
            let ev = evaluate(clf, &perturbed, policy);
            SweepPoint {
                offset,
                accuracy: ev.accuracy(),
                earliness: ev.earliness(),
            }
        })
        .collect();
    sweep.sort_by(|a, b| a.offset.partial_cmp(&b.offset).unwrap());
    SensitivityReport { sweep }
}

/// Small internal shim: apply a per-exemplar uniform shift without dragging
/// the full datasets crate in as a dependency (audit must stay usable on
/// user-provided data).
mod rand_like {
    use etsc_core::UcrDataset;

    /// Deterministic splitmix64 — enough randomness for offset draws and
    /// keeps `etsc-audit` free of the `rand` dependency.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Shift every exemplar by an offset drawn uniformly from
    /// `[-max_offset, max_offset]`.
    pub fn shift_dataset(data: &UcrDataset, max_offset: f64, seed: u64) -> UcrDataset {
        let mut state = seed;
        let mut out = data.clone();
        out.map_series(|_, s| {
            let u = splitmix64(&mut state) as f64 / u64::MAX as f64; // [0, 1]
            let offset = (2.0 * u - 1.0) * max_offset;
            s.iter_mut().for_each(|x| *x += offset);
        });
        out
    }
}

pub use rand_like::shift_dataset;

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::ClassLabel;
    use etsc_early::Decision;

    /// A deliberately offset-fragile classifier: thresholds the raw mean of
    /// the first few points (an absolute-value model, like an ETSC model
    /// that believes its inputs are pre-normalized).
    struct RawLevelClassifier;

    impl EarlyClassifier for RawLevelClassifier {
        fn n_classes(&self) -> usize {
            2
        }
        fn series_len(&self) -> usize {
            16
        }
        fn min_prefix(&self) -> usize {
            4
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() < 4 {
                return Decision::Wait;
            }
            let m = prefix[..4].iter().sum::<f64>() / 4.0;
            Decision::Predict {
                label: usize::from(m > 0.5),
                confidence: 1.0,
            }
        }
        fn predict_full(&self, s: &[f64]) -> ClassLabel {
            usize::from(s.iter().sum::<f64>() / s.len() as f64 > 0.5)
        }
    }

    fn test_set() -> UcrDataset {
        // Class 0 at level ~0, class 1 at level ~1: margin 0.5 to the
        // threshold, so offsets beyond 0.5 flip labels. Enough exemplars
        // that a ±2.0 uniform offset sweep flips some with overwhelming
        // probability regardless of seed.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            data.push(vec![0.01 * i as f64; 16]);
            labels.push(0);
            data.push(vec![1.0 - 0.01 * i as f64; 16]);
            labels.push(1);
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn fragile_classifier_degrades_with_offset() {
        let report = sensitivity_sweep(
            &RawLevelClassifier,
            &test_set(),
            &[0.0, 0.25, 2.0],
            PrefixPolicy::Raw,
            7,
        );
        assert_eq!(report.baseline_accuracy(), Some(1.0));
        let acc_at = |o: f64| {
            report
                .sweep
                .iter()
                .find(|p| p.offset == o)
                .unwrap()
                .accuracy
        };
        assert!(
            acc_at(2.0) < 1.0,
            "large offsets must hurt a raw-level model"
        );
        assert!(report.max_drop() > 0.0);
        assert!(!report.is_robust(0.01));
    }

    #[test]
    fn sweep_is_sorted_by_offset() {
        let report = sensitivity_sweep(
            &RawLevelClassifier,
            &test_set(),
            &[1.0, 0.0, 0.5],
            PrefixPolicy::Raw,
            1,
        );
        let offsets: Vec<f64> = report.sweep.iter().map(|p| p.offset).collect();
        assert_eq!(offsets, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn shift_dataset_is_deterministic_and_bounded() {
        let d = test_set();
        let a = shift_dataset(&d, 1.0, 42);
        let b = shift_dataset(&d, 1.0, 42);
        assert_eq!(a, b);
        for i in 0..d.len() {
            let delta = a.series(i)[0] - d.series(i)[0];
            assert!(delta.abs() <= 1.0 + 1e-12);
            // Shift is constant within an exemplar.
            for j in 0..d.series_len() {
                assert!((a.series(i)[j] - d.series(i)[j] - delta).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_offset_point_reproduces_baseline() {
        let report = sensitivity_sweep(
            &RawLevelClassifier,
            &test_set(),
            &[0.0],
            PrefixPolicy::Raw,
            3,
        );
        assert_eq!(report.sweep.len(), 1);
        assert_eq!(report.max_drop(), 0.0);
        assert!(report.is_robust(0.0));
    }
}
