//! A named collection of patterns — the "vocabulary" of a domain.
//!
//! The prefix and inclusion audits reason over the *universe of patterns a
//! deployment will encounter*, not just the classes the model was trained
//! on. A lexicon holds that universe: named templates for every behavior /
//! word / event shape known to occur in the domain.

/// A named pattern dictionary.
#[derive(Debug, Clone, Default)]
pub struct PatternLexicon {
    entries: Vec<(String, Vec<f64>)>,
}

impl PatternLexicon {
    /// Empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named pattern. Names need not be unique (multiple renditions of
    /// the same word are fine); empty patterns are rejected.
    pub fn add(&mut self, name: impl Into<String>, pattern: Vec<f64>) {
        assert!(!pattern.is_empty(), "lexicon patterns must be non-empty");
        self.entries.push((name.into(), pattern));
    }

    /// Builder-style [`add`](Self::add).
    pub fn with(mut self, name: impl Into<String>, pattern: Vec<f64>) -> Self {
        self.add(name, pattern);
        self
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.entries.iter().map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    /// Look up all patterns with the given name.
    pub fn get(&self, name: &str) -> Vec<&[f64]> {
        self.entries
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_iterate() {
        let lex = PatternLexicon::new()
            .with("cat", vec![1.0, 2.0])
            .with("dog", vec![3.0]);
        assert_eq!(lex.len(), 2);
        assert!(!lex.is_empty());
        let names: Vec<&str> = lex.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["cat", "dog"]);
    }

    #[test]
    fn duplicate_names_allowed() {
        let mut lex = PatternLexicon::new();
        lex.add("cat", vec![1.0]);
        lex.add("cat", vec![2.0]);
        assert_eq!(lex.get("cat").len(), 2);
        assert!(lex.get("bird").is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_pattern() {
        PatternLexicon::new().add("x", vec![]);
    }
}
