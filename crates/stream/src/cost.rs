//! The intervention cost model of Appendix B.
//!
//! "Say the target event is the undesirable foaming of a distillation
//! column. Assume it costs $1000 to clean out the apparatus after such an
//! event. \[If\] we get early notice … we can warn an engineer to throttle
//! some valve, and stop the damage. This action must also have some cost,
//! let us say $200. Thus, in order for an ETSC model to be said to work, it
//! must at least break even, producing at least one true positive for every
//! five false positives."

use crate::scoring::AlarmScore;

/// Costs of outcomes, in arbitrary currency units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of the event when it is missed (FN) — e.g. cleaning the column.
    pub event_cost: f64,
    /// Cost of taking the early action (paid on every alarm, true or false).
    pub action_cost: f64,
    /// Residual event cost when the action is taken in time (0 = the action
    /// fully prevents the damage).
    pub residual_event_cost: f64,
}

impl CostModel {
    /// The Appendix B example: $1000 event, $200 action, full prevention.
    pub fn appendix_b() -> Self {
        Self {
            event_cost: 1000.0,
            action_cost: 200.0,
            residual_event_cost: 0.0,
        }
    }

    /// Maximum false positives per true positive at which the system still
    /// breaks even against doing nothing.
    pub fn break_even_fp_per_tp(&self) -> f64 {
        let saved = self.event_cost - self.residual_event_cost - self.action_cost;
        if saved <= 0.0 {
            0.0
        } else {
            saved / self.action_cost
        }
    }

    /// Evaluate a deployment's alarm performance under this cost model.
    pub fn evaluate(&self, score: &AlarmScore) -> CostReport {
        let tp = score.true_positives as f64;
        let fp = score.false_positives as f64;
        let fneg = score.false_negatives as f64;
        let dup = score.duplicates as f64;
        let n_events = tp + fneg;

        // Doing nothing: every event costs its full price.
        let without_system = n_events * self.event_cost;
        // With the system: every alarm pays the action; prevented events pay
        // the residual; missed events pay full price.
        let with_system = (tp + fp + dup) * self.action_cost
            + tp * self.residual_event_cost
            + fneg * self.event_cost;
        CostReport {
            without_system,
            with_system,
            net_benefit: without_system - with_system,
            break_even_fp_per_tp: self.break_even_fp_per_tp(),
            observed_fp_per_tp: score.fp_to_tp_ratio(),
        }
    }
}

/// The verdict of a cost evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total cost if no detection system were deployed.
    pub without_system: f64,
    /// Total cost with the detection system and its interventions.
    pub with_system: f64,
    /// `without_system - with_system` (positive = the system pays off).
    pub net_benefit: f64,
    /// The break-even FP:TP ratio of the cost model.
    pub break_even_fp_per_tp: f64,
    /// The observed FP:TP ratio.
    pub observed_fp_per_tp: f64,
}

impl CostReport {
    /// Does the system at least break even?
    pub fn worth_deploying(&self) -> bool {
        self.net_benefit >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(tp: usize, fp: usize, fneg: usize) -> AlarmScore {
        AlarmScore {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fneg,
            duplicates: 0,
            stream_len: 100_000,
        }
    }

    #[test]
    fn appendix_b_break_even_is_four_to_one() {
        // Saved per TP = 1000 - 200 = 800; each FP costs 200 → 4 FPs per TP
        // break even exactly; "one TP per five FPs" in the paper's rounding
        // (1 TP + 5 FP = 6 actions × 200 = 1200 > 1000 loses; the paper's
        // phrasing treats the TP's action as free).
        let m = CostModel::appendix_b();
        assert!((m.break_even_fp_per_tp() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exactly_break_even_at_ratio() {
        let m = CostModel::appendix_b();
        // 1 TP (action 200, saves 1000) + 4 FP (800) = 1000 spent, 1000 saved.
        let r = m.evaluate(&score(1, 4, 0));
        assert!((r.net_benefit - 0.0).abs() < 1e-9);
        assert!(r.worth_deploying());
    }

    #[test]
    fn alarm_flood_loses_money() {
        let m = CostModel::appendix_b();
        let r = m.evaluate(&score(1, 1000, 0));
        assert!(!r.worth_deploying());
        assert!(r.net_benefit < -190_000.0);
        assert!(r.observed_fp_per_tp > r.break_even_fp_per_tp);
    }

    #[test]
    fn missed_events_cost_full_price() {
        let m = CostModel::appendix_b();
        let r = m.evaluate(&score(0, 0, 10));
        assert!((r.without_system - 10_000.0).abs() < 1e-9);
        assert!((r.with_system - 10_000.0).abs() < 1e-9);
        assert!((r.net_benefit - 0.0).abs() < 1e-9);
    }

    #[test]
    fn residual_cost_reduces_savings() {
        let m = CostModel {
            event_cost: 1000.0,
            action_cost: 200.0,
            residual_event_cost: 500.0,
        };
        // Saved per TP = 1000 - 500 - 200 = 300 → 1.5 FPs per TP.
        assert!((m.break_even_fp_per_tp() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn worthless_action_never_breaks_even() {
        let m = CostModel {
            event_cost: 100.0,
            action_cost: 200.0,
            residual_event_cost: 0.0,
        };
        assert_eq!(m.break_even_fp_per_tp(), 0.0);
    }
}
