//! Appendix A: the *other* "early classification" problems — the ones that
//! are actually well-posed.
//!
//! The paper is careful to scope its critique: several monitoring tasks get
//! called "early classification" but act on the **value**, **envelope**, or
//! **frequency** of a signal rather than the shape of a pattern prefix, and
//! those are perfectly meaningful:
//!
//! * [`ValueThresholdMonitor`] — "a boiler is rated for at most 200 psi. If
//!   a sensor detects increasing pressure readings: 180, 181, 182, …, it
//!   would make perfect sense to sound an early warning." Only the value
//!   matters, plus a linear trend forecast for the *early* part.
//! * [`GoldenBatchMonitor`] — "monitoring of batch processes … at every
//!   time point in a single run (plus or minus some wiggle room) we know
//!   what range of values are acceptable." A reference trajectory with a
//!   tolerance envelope; drifting outside raises the alarm.
//! * [`FrequencyMonitor`] — "a chicken engaging in dustbathing more than 40
//!   times a day is required to be culled … If we detect 10 bouts one day
//!   and 25 the next, we may want to take some early intervention." Counts
//!   of *fully observed* events per period, with a rate-trigger.

/// Early warning when a monitored value approaches a hard limit.
///
/// Fires when the current value crosses `warn_at`, or when the linear trend
/// over the last `trend_window` samples forecasts crossing `limit` within
/// `horizon` samples.
#[derive(Debug, Clone)]
pub struct ValueThresholdMonitor {
    limit: f64,
    warn_at: f64,
    trend_window: usize,
    horizon: f64,
    buf: Vec<f64>,
}

/// Why a value monitor fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueAlarm {
    /// The value itself crossed the warning level.
    LevelExceeded {
        /// The offending value.
        value: f64,
    },
    /// The trend forecasts crossing the hard limit within the horizon.
    TrendForecast {
        /// Forecast number of samples until the limit is crossed.
        samples_to_limit: f64,
    },
}

impl ValueThresholdMonitor {
    /// Create a monitor. `warn_at < limit`; `trend_window >= 2`.
    pub fn new(limit: f64, warn_at: f64, trend_window: usize, horizon: f64) -> Self {
        assert!(warn_at < limit, "warning level must sit below the limit");
        assert!(trend_window >= 2, "trend needs at least 2 samples");
        assert!(horizon > 0.0);
        Self {
            limit,
            warn_at,
            trend_window,
            horizon,
            buf: Vec::with_capacity(trend_window),
        }
    }

    /// Least-squares slope of the buffered window.
    fn slope(&self) -> f64 {
        let n = self.buf.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = self.buf.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in self.buf.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (y - mean_y);
            den += dx * dx;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Feed one reading; returns an alarm if warranted.
    pub fn push(&mut self, value: f64) -> Option<ValueAlarm> {
        self.buf.push(value);
        if self.buf.len() > self.trend_window {
            self.buf.remove(0);
        }
        if value >= self.warn_at {
            return Some(ValueAlarm::LevelExceeded { value });
        }
        if self.buf.len() == self.trend_window {
            let slope = self.slope();
            if slope > 0.0 {
                let samples_to_limit = (self.limit - value) / slope;
                if samples_to_limit <= self.horizon {
                    return Some(ValueAlarm::TrendForecast { samples_to_limit });
                }
            }
        }
        None
    }
}

/// Golden-batch monitoring: a reference trajectory with per-step wiggle
/// room. (The "wiggle room that can be modeled" of the paper's reference
/// \[25\] is a time tolerance: the observed value may match the reference
/// anywhere within ± `time_slack` steps — a bounded, amnestic warping.)
#[derive(Debug, Clone)]
pub struct GoldenBatchMonitor {
    reference: Vec<f64>,
    tolerance: f64,
    time_slack: usize,
    t: usize,
    /// Consecutive out-of-envelope steps so far.
    violations: usize,
    /// Violations required to alarm (debounces single-sample glitches).
    patience: usize,
}

impl GoldenBatchMonitor {
    /// Create a monitor around a reference run. `tolerance` is the allowed
    /// absolute deviation; `time_slack` the allowed time misalignment;
    /// `patience` the number of consecutive violations before alarming.
    pub fn new(reference: Vec<f64>, tolerance: f64, time_slack: usize, patience: usize) -> Self {
        assert!(!reference.is_empty(), "reference run must be non-empty");
        assert!(tolerance >= 0.0);
        Self {
            reference,
            tolerance,
            time_slack,
            t: 0,
            violations: 0,
            patience: patience.max(1),
        }
    }

    /// Feed the next sample of the running batch; returns `true` when the
    /// run has drifted out of the golden envelope.
    pub fn push(&mut self, value: f64) -> bool {
        let lo = self.t.saturating_sub(self.time_slack);
        let hi = (self.t + self.time_slack).min(self.reference.len() - 1);
        let in_envelope = (lo..=hi).any(|i| (value - self.reference[i]).abs() <= self.tolerance);
        self.t = (self.t + 1).min(self.reference.len() - 1);
        if in_envelope {
            self.violations = 0;
            false
        } else {
            self.violations += 1;
            self.violations >= self.patience
        }
    }

    /// Current position in the reference run.
    pub fn position(&self) -> usize {
        self.t
    }
}

/// Frequency monitoring: counts of fully observed events per period, with a
/// trigger on the count.
#[derive(Debug, Clone, Default)]
pub struct FrequencyMonitor {
    /// Completed-period counts.
    history: Vec<usize>,
    current: usize,
}

impl FrequencyMonitor {
    /// New, empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one fully observed event in the current period.
    pub fn record_event(&mut self) {
        self.current += 1;
    }

    /// Close the current period (e.g. a day) and start the next.
    pub fn end_period(&mut self) {
        self.history.push(self.current);
        self.current = 0;
    }

    /// Count in the still-open period.
    pub fn current_count(&self) -> usize {
        self.current
    }

    /// Counts of completed periods.
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// Does the trailing trend forecast exceeding `limit` next period?
    /// Uses the last two completed periods' linear extrapolation, the
    /// paper's "10 bouts one day and 25 the next" reasoning.
    pub fn forecast_exceeds(&self, limit: usize) -> bool {
        let n = self.history.len();
        if n == 0 {
            return false;
        }
        if self.history[n - 1] > limit {
            return true;
        }
        if n >= 2 {
            let last = self.history[n - 1] as f64;
            let prev = self.history[n - 2] as f64;
            let forecast = last + (last - prev);
            return forecast > limit as f64;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_monitor_warns_on_level() {
        let mut m = ValueThresholdMonitor::new(200.0, 195.0, 5, 20.0);
        assert_eq!(m.push(180.0), None);
        assert_eq!(
            m.push(196.0),
            Some(ValueAlarm::LevelExceeded { value: 196.0 })
        );
    }

    #[test]
    fn value_monitor_warns_on_trend() {
        let mut m = ValueThresholdMonitor::new(200.0, 199.0, 4, 25.0);
        // Steadily rising at 1 psi/sample from 180: limit 200 forecast in
        // ~17 samples < horizon 25 once the window fills.
        let mut alarm = None;
        for i in 0..6 {
            alarm = m.push(180.0 + i as f64);
            if alarm.is_some() {
                break;
            }
        }
        match alarm {
            Some(ValueAlarm::TrendForecast { samples_to_limit }) => {
                assert!(samples_to_limit < 25.0 && samples_to_limit > 0.0);
            }
            other => panic!("expected trend alarm, got {other:?}"),
        }
    }

    #[test]
    fn value_monitor_stays_quiet_on_flat_signal() {
        let mut m = ValueThresholdMonitor::new(200.0, 195.0, 5, 20.0);
        for _ in 0..50 {
            assert_eq!(m.push(180.0), None);
        }
    }

    #[test]
    fn golden_batch_accepts_reference_replay() {
        let reference: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut m = GoldenBatchMonitor::new(reference.clone(), 0.05, 2, 2);
        for &v in &reference {
            assert!(!m.push(v), "the golden run itself must pass");
        }
    }

    #[test]
    fn golden_batch_tolerates_small_time_shift() {
        let reference: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut m = GoldenBatchMonitor::new(reference.clone(), 0.05, 3, 2);
        // Replay shifted by 2 steps: within the slack.
        for i in 0..98 {
            assert!(!m.push(reference[i + 2]));
        }
    }

    #[test]
    fn golden_batch_alarms_on_drift() {
        let reference: Vec<f64> = vec![1.0; 50];
        let mut m = GoldenBatchMonitor::new(reference, 0.1, 1, 3);
        let mut alarmed = false;
        for i in 0..20 {
            if m.push(1.0 + 0.2 * i as f64) {
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "a drifting batch must trip the envelope");
    }

    #[test]
    fn golden_batch_patience_debounces_glitches() {
        let reference: Vec<f64> = vec![0.0; 50];
        let mut m = GoldenBatchMonitor::new(reference, 0.1, 0, 3);
        assert!(!m.push(5.0)); // one glitch
        assert!(!m.push(0.0)); // back in envelope: counter resets
        assert!(!m.push(5.0));
        assert!(!m.push(5.0));
        assert!(m.push(5.0)); // three in a row
    }

    #[test]
    fn frequency_monitor_counts_and_forecasts() {
        let mut m = FrequencyMonitor::new();
        for _ in 0..10 {
            m.record_event();
        }
        m.end_period();
        assert_eq!(m.history(), &[10]);
        assert!(!m.forecast_exceeds(40));
        for _ in 0..25 {
            m.record_event();
        }
        m.end_period();
        // 10 -> 25: linear forecast 40 ... not > 40.
        assert!(!m.forecast_exceeds(40));
        // But with limit 39 the forecast (40) exceeds.
        assert!(m.forecast_exceeds(39));
        // An actual count over the limit triggers immediately.
        for _ in 0..45 {
            m.record_event();
        }
        m.end_period();
        assert!(m.forecast_exceeds(40));
    }

    #[test]
    fn frequency_monitor_empty_never_fires() {
        let m = FrequencyMonitor::new();
        assert!(!m.forecast_exceeds(0));
        assert_eq!(m.current_count(), 0);
    }
}
