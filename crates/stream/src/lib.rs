#![warn(missing_docs)]

//! # etsc-stream
//!
//! Streaming deployment of early classifiers — the step the paper argues the
//! ETSC literature never takes, and where its failure modes live.
//!
//! * [`monitor`] — [`monitor::StreamMonitor`] slides candidate pattern
//!   anchors over an unbounded stream, feeds growing prefixes to any
//!   [`etsc_early::EarlyClassifier`], and emits alarms. The normalization
//!   applied to each prefix is an explicit, honest choice ([`monitor::StreamNorm`]):
//!   there is no "oracle" option because a deployment cannot normalize with
//!   statistics of data that has not arrived — that option only exists in
//!   UCR-style offline evaluation.
//! * [`scoring`] — matches alarms against ground-truth events
//!   ([`etsc_core::Event`]) with temporal tolerance: true/false positives,
//!   false negatives, false-alarm rates, FP:TP ratios.
//! * [`cost`] — the Appendix B intervention cost model ("the apparatus costs
//!   $1000 to clean; the early action costs $200; the system must produce at
//!   least one true positive per five false positives to break even").

pub mod alternatives;
pub mod cost;
pub mod monitor;
pub mod scoring;

pub use alternatives::{FrequencyMonitor, GoldenBatchMonitor, ValueThresholdMonitor};
pub use cost::{CostModel, CostReport};
pub use monitor::{Alarm, StreamMonitor, StreamMonitorConfig, StreamNorm};
pub use scoring::{score_alarms, AlarmScore, ScoringConfig};
