//! Scoring alarms against ground truth.
//!
//! An alarm is a **true positive** if it lands inside (or within a tolerance
//! of) a ground-truth event of the same class that has not yet been claimed
//! by an earlier alarm; otherwise it is a **false positive**. Events that no
//! alarm claims are **false negatives**. Repeated alarms inside one event
//! are counted separately as duplicates — they are not false positives (the
//! intervention already happened) but not extra credit either.

use etsc_core::Event;

use crate::monitor::Alarm;

/// Scoring parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScoringConfig {
    /// An alarm within this many samples of an event's span still counts.
    pub tolerance: usize,
    /// If true, alarms must match the event's label; if false, any event
    /// class accepts any alarm (single-detector setups).
    pub match_labels: bool,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        Self {
            tolerance: 0,
            match_labels: true,
        }
    }
}

/// Alarm/event match result.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmScore {
    /// Alarms that claimed an unclaimed matching event.
    pub true_positives: usize,
    /// Alarms matching no event.
    pub false_positives: usize,
    /// Events claimed by no alarm.
    pub false_negatives: usize,
    /// Extra alarms inside already-claimed events.
    pub duplicates: usize,
    /// Samples of stream scored (for rate computations).
    pub stream_len: usize,
}

impl AlarmScore {
    /// Precision = TP / (TP + FP). 0 when no alarms.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN). 0 when no events.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// False positives per `unit` samples (e.g. per hour at a known rate).
    pub fn fp_rate_per(&self, unit: usize) -> f64 {
        if self.stream_len == 0 {
            return 0.0;
        }
        self.false_positives as f64 * unit as f64 / self.stream_len as f64
    }

    /// Ratio of false to true positives; `inf` when TP = 0 and FP > 0.
    pub fn fp_to_tp_ratio(&self) -> f64 {
        if self.true_positives == 0 {
            if self.false_positives == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.false_positives as f64 / self.true_positives as f64
        }
    }
}

/// Score `alarms` (in time order) against `events`.
pub fn score_alarms(
    alarms: &[Alarm],
    events: &[Event],
    stream_len: usize,
    cfg: &ScoringConfig,
) -> AlarmScore {
    let mut claimed = vec![false; events.len()];
    let mut tp = 0;
    let mut fp = 0;
    let mut dup = 0;
    for alarm in alarms {
        // Find an event whose (tolerance-widened) span contains the alarm.
        let matching = events.iter().enumerate().find(|(_, e)| {
            (!cfg.match_labels || e.label == alarm.label)
                && e.contains_with_tolerance(alarm.time, cfg.tolerance)
        });
        match matching {
            Some((idx, _)) => {
                if claimed[idx] {
                    dup += 1;
                } else {
                    claimed[idx] = true;
                    tp += 1;
                }
            }
            None => fp += 1,
        }
    }
    let fneg = claimed.iter().filter(|&&c| !c).count();
    AlarmScore {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fneg,
        duplicates: dup,
        stream_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(time: usize, label: usize) -> Alarm {
        Alarm {
            time,
            anchor: time.saturating_sub(5),
            label,
            confidence: 1.0,
        }
    }

    #[test]
    fn perfect_detection() {
        let events = vec![Event::new(100, 150, 0), Event::new(300, 350, 0)];
        let alarms = vec![alarm(120, 0), alarm(310, 0)];
        let s = score_alarms(&alarms, &events, 1000, &ScoringConfig::default());
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.fp_to_tp_ratio(), 0.0);
    }

    #[test]
    fn false_positive_outside_events() {
        let events = vec![Event::new(100, 150, 0)];
        let alarms = vec![alarm(500, 0)];
        let s = score_alarms(&alarms, &events, 1000, &ScoringConfig::default());
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.fp_to_tp_ratio(), f64::INFINITY);
        assert!((s.fp_rate_per(100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn label_mismatch_is_false_positive() {
        let events = vec![Event::new(100, 150, 1)];
        let alarms = vec![alarm(120, 0)];
        let strict = score_alarms(&alarms, &events, 1000, &ScoringConfig::default());
        assert_eq!(strict.false_positives, 1);
        let lax = score_alarms(
            &alarms,
            &events,
            1000,
            &ScoringConfig {
                match_labels: false,
                ..Default::default()
            },
        );
        assert_eq!(lax.true_positives, 1);
    }

    #[test]
    fn duplicates_are_not_false_positives() {
        let events = vec![Event::new(100, 150, 0)];
        let alarms = vec![alarm(110, 0), alarm(120, 0), alarm(130, 0)];
        let s = score_alarms(&alarms, &events, 1000, &ScoringConfig::default());
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn tolerance_widens_matching() {
        let events = vec![Event::new(100, 150, 0)];
        let early_alarm = vec![alarm(95, 0)];
        let miss = score_alarms(&early_alarm, &events, 1000, &ScoringConfig::default());
        assert_eq!(miss.false_positives, 1);
        let hit = score_alarms(
            &early_alarm,
            &events,
            1000,
            &ScoringConfig {
                tolerance: 10,
                ..Default::default()
            },
        );
        assert_eq!(hit.true_positives, 1);
    }

    #[test]
    fn empty_inputs() {
        let s = score_alarms(&[], &[], 0, &ScoringConfig::default());
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.fp_rate_per(1000), 0.0);
        assert_eq!(s.fp_to_tp_ratio(), 0.0);
    }
}
