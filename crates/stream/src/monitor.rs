//! The stream monitor: running an early classifier on unbounded data.
//!
//! A UCR-format evaluation hands the classifier one perfectly segmented
//! exemplar at a time. A deployment does not know when (or whether) a
//! pattern starts. The monitor therefore keeps a set of candidate **anchors**
//! — recent positions at which a pattern might have begun — and feeds each
//! arriving sample to every anchor's incremental
//! [`DecisionSession`](etsc_early::DecisionSession). When a session commits,
//! an alarm fires (and a refractory period suppresses the alarm storm that
//! would otherwise follow from neighboring anchors).
//!
//! Each anchor costs one `push` per sample — amortized O(1) in the anchor's
//! age for the incremental session implementations — where the previous
//! design re-sliced every anchor's whole prefix and called the stateless
//! `decide` on it, doing O(prefix) work per anchor per sample (O(L²) over an
//! anchor's lifetime). Sessions are pooled and reused across anchors, so
//! steady-state monitoring does not allocate.
//!
//! Alarm semantics: at most one alarm fires per sample — the oldest
//! committed anchor, provided the monitor is outside its refractory period.
//! Anchors that commit while another fires stay live and fire on subsequent
//! samples; any commit still pending when the refractory period begins is
//! suppressed for good (the anchor retires silently — refractory
//! *suppresses* alarms, it does not defer them). Fired and expired anchors
//! are retired immediately; their sessions return to the pool.
//!
//! This design surfaces all three of the paper's streaming failure modes:
//! prefixes of longer innocuous patterns trigger anchors mid-word (the
//! prefix problem), contained atomic units trigger them inside larger events
//! (inclusion), and look-alike background shapes trigger them anywhere
//! (homophones).

use etsc_core::ClassLabel;
use etsc_early::{DecisionSession, EarlyClassifier, SessionNorm};
use etsc_persist::{Encoder, PersistError};

/// Envelope kind tag for [`StreamMonitor::snapshot_anchors`] state.
pub const MONITOR_STATE_KIND: &str = "StreamMonitorAnchors";

/// Minimum live-anchor count before the per-sample fan-out is worth worker
/// threads. The spawn round paid on *every* sample costs ~10µs per worker
/// against single-digit-microsecond pushes (O(1) bookkeeping once a session
/// latches), so only dense anchor populations — small strides over long
/// patterns — clear it.
const PAR_MIN_ANCHORS: usize = 512;

/// Normalization applied to each anchored prefix before classification.
///
/// Deliberately **no oracle option**: a deployment cannot standardize a
/// prefix with statistics of data that has not arrived yet (Section 4 of
/// the paper). To see what happens when a model trained on z-normalized
/// exemplars meets a stream, run `Raw` (the mismatch the paper predicts
/// floods the model with false negatives) and `PerPrefix` (the honest best
/// effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamNorm {
    /// Feed raw samples unchanged.
    Raw,
    /// Honest per-prefix normalization: sessions z-normalize the data each
    /// decision consumes using only already-arrived samples (running
    /// statistics; see [`SessionNorm::PerPrefix`]).
    PerPrefix,
}

impl From<StreamNorm> for SessionNorm {
    fn from(norm: StreamNorm) -> Self {
        match norm {
            StreamNorm::Raw => SessionNorm::Raw,
            StreamNorm::PerPrefix => SessionNorm::PerPrefix,
        }
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMonitorConfig {
    /// Spacing between candidate anchors, in samples. 1 = an anchor at every
    /// position (exhaustive; cost scales inversely).
    pub anchor_stride: usize,
    /// Normalization policy for anchored prefixes.
    pub norm: StreamNorm,
    /// Samples after an alarm during which no further alarm may fire.
    pub refractory: usize,
}

impl Default for StreamMonitorConfig {
    fn default() -> Self {
        Self {
            anchor_stride: 4,
            norm: StreamNorm::PerPrefix,
            refractory: 0,
        }
    }
}

/// An alarm emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// Sample index at which the classifier committed.
    pub time: usize,
    /// Anchor (hypothesized pattern onset) that produced the alarm.
    pub anchor: usize,
    /// Predicted class.
    pub label: ClassLabel,
    /// Classifier confidence.
    pub confidence: f64,
}

impl Alarm {
    /// Append this alarm to `enc` (codec: `etsc-persist`). Alarms travel in
    /// serving-runtime checkpoints — an alarm that was produced but not yet
    /// delivered when a checkpoint was cut must survive the restart.
    ///
    /// The confidence crosses as its IEEE bits, so a decoded alarm compares
    /// equal (`PartialEq`) to the original.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.time);
        enc.put_usize(self.anchor);
        enc.put_usize(self.label);
        enc.put_f64(self.confidence);
    }

    /// Decode an alarm written by [`encode`](Self::encode).
    pub fn decode(dec: &mut etsc_persist::Decoder<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            time: dec.get_usize("alarm time")?,
            anchor: dec.get_usize("alarm anchor")?,
            label: dec.get_usize("alarm label")?,
            confidence: dec.get_f64("alarm confidence")?,
        })
    }
}

/// A streaming monitor wrapping an early classifier.
pub struct StreamMonitor<'a, C: EarlyClassifier + ?Sized> {
    clf: &'a C,
    cfg: StreamMonitorConfig,
    /// Live anchors and their sessions, ascending by anchor offset.
    anchors: Vec<(usize, Box<dyn DecisionSession + 'a>)>,
    /// Retired sessions awaiting reuse (reset on reissue).
    pool: Vec<Box<dyn DecisionSession + 'a>>,
    /// Absolute index of the next incoming sample.
    now: usize,
    /// No alarms before this time (refractory gate).
    quiet_until: usize,
}

impl<'a, C: EarlyClassifier + ?Sized> StreamMonitor<'a, C> {
    /// Create a monitor over a fitted early classifier.
    pub fn new(clf: &'a C, cfg: StreamMonitorConfig) -> Self {
        assert!(cfg.anchor_stride >= 1, "anchor stride must be positive");
        Self {
            clf,
            cfg,
            anchors: Vec::new(),
            pool: Vec::new(),
            now: 0,
            quiet_until: 0,
        }
    }

    /// Feed one sample; returns an alarm if a session committed.
    pub fn push(&mut self, x: f64) -> Option<Alarm> {
        let max_len = self.clf.series_len();
        // Spawn a new anchor on stride boundaries, reusing pooled sessions.
        if self.now.is_multiple_of(self.cfg.anchor_stride) {
            let session = match self.pool.pop() {
                Some(mut s) => {
                    s.reset();
                    s
                }
                None => self.clf.session(self.cfg.norm.into()),
            };
            self.anchors.push((self.now, session));
        }
        let t = self.now;
        self.now += 1;
        let quiet = t < self.quiet_until;

        // One push per live session (committed sessions are latched: their
        // pushes are O(1) bookkeeping while they wait to fire or be
        // suppressed below). With a dense anchor population the pushes fan
        // out across worker threads (`etsc_core::parallel`, honoring
        // `ETSC_THREADS`); sessions are independent, so decisions are
        // identical to the serial sweep, and the gate keeps small
        // populations on the cheap serial path.
        let threads = etsc_core::parallel::gate(self.anchors.len(), PAR_MIN_ANCHORS);
        etsc_core::parallel::for_each_mut_with(threads, &mut self.anchors, |(_, session)| {
            session.push(x);
        });

        // At most one alarm per sample: the oldest committed anchor fires,
        // if the monitor is outside its refractory period. Further anchors
        // committed at the same instant stay live and drain on subsequent
        // samples — unless the refractory period swallows them first.
        //
        // The label is read through `label_confidence()` rather than
        // asserted: a committed session can stop carrying a prediction
        // between ticks (e.g. [`close_anchor`](Self::close_anchor) recycles
        // and resets sessions, and third-party `DecisionSession`
        // implementations may un-latch on reset-like transitions). Such an
        // anchor simply does not fire — it retires through the normal
        // age-out path instead of panicking the whole monitor.
        let mut fired: Option<Alarm> = None;
        if !quiet {
            fired = self.anchors.iter().find_map(|(anchor, session)| {
                session
                    .decision()
                    .label_confidence()
                    .map(|(label, confidence)| Alarm {
                        time: t,
                        anchor: *anchor,
                        label,
                        confidence,
                    })
            });
        }

        // Retire anchors that can produce no further alarms: the one that
        // just fired, committed anchors inside the refractory period
        // (suppressed for good — refractory suppresses, it does not defer),
        // and uncommitted anchors that have consumed a full pattern length.
        let fired_anchor = fired.map(|a| a.anchor);
        let pool = &mut self.pool;
        self.anchors.retain_mut(|(anchor, session)| {
            let committed = session.decision().is_predict();
            let retire = if committed {
                quiet || Some(*anchor) == fired_anchor
            } else {
                session.len() >= max_len
            };
            if retire {
                pool.push(std::mem::replace(
                    session,
                    Box::new(NeverSession) as Box<dyn DecisionSession + 'a>,
                ));
                false
            } else {
                true
            }
        });

        if let Some(alarm) = fired {
            self.quiet_until = t + 1 + self.cfg.refractory;
            return Some(alarm);
        }
        None
    }

    /// Run the monitor over an entire slice, collecting all alarms.
    pub fn run(&mut self, stream: &[f64]) -> Vec<Alarm> {
        stream.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Retire the anchor at offset `anchor` immediately, recycling its
    /// session into the pool. Returns `false` if no such anchor is live.
    ///
    /// This is the supervisor hook for invalidating a hypothesis mid-flight
    /// — e.g. an upstream segmenter decided the pattern cannot have started
    /// there. Closing is safe in the same tick as a commit: an anchor that
    /// latched `Predict` on the current sample and is closed before the
    /// next [`push`](Self::push) simply never alarms (its reset session
    /// carries no prediction, and the alarm scan reads predictions through
    /// a graceful option path, not an assertion).
    pub fn close_anchor(&mut self, anchor: usize) -> bool {
        match self.anchors.iter().position(|(a, _)| *a == anchor) {
            Some(i) => {
                let (_, mut session) = self.anchors.remove(i);
                session.reset();
                self.pool.push(session);
                true
            }
            None => false,
        }
    }

    /// Serialize every in-flight anchor — offset, incremental session
    /// state, and the monitor's clock/refractory gate — into a
    /// self-describing, checksummed envelope.
    ///
    /// This is the restart/migration primitive: snapshot before a deploy,
    /// hand the bytes (plus a [`Persist`](etsc_persist::Persist) snapshot
    /// of the fitted classifier) to the replacement process, and
    /// [`resume_anchors`](Self::resume_anchors) there. The resumed monitor
    /// produces **bit-identical** alarms to one that was never interrupted:
    /// session accumulators round-trip as IEEE bits, and the refractory
    /// clock (`quiet_until`) travels with them — a snapshot taken
    /// mid-refractory stays mid-refractory.
    ///
    /// The session pool does not travel (it holds no observable state);
    /// errors if any live session's type does not support checkpointing.
    pub fn snapshot_anchors(&self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        enc.put_usize(self.cfg.anchor_stride);
        enc.put_u8(match self.cfg.norm {
            StreamNorm::Raw => 0,
            StreamNorm::PerPrefix => 1,
        });
        enc.put_usize(self.cfg.refractory);
        enc.put_usize(self.now);
        enc.put_usize(self.quiet_until);
        enc.put_usize(self.anchors.len());
        for (anchor, session) in &self.anchors {
            enc.put_usize(*anchor);
            enc.try_section(|e| session.save_state(e))?;
        }
        Ok(etsc_persist::envelope(
            MONITOR_STATE_KIND,
            &enc.into_bytes(),
        ))
    }

    /// Rehydrate anchors from [`snapshot_anchors`](Self::snapshot_anchors)
    /// bytes, replacing this monitor's live anchors, clock, and refractory
    /// gate entirely (current anchors are reset into the session pool).
    ///
    /// The monitor must be configured identically to the one that produced
    /// the snapshot (stride, normalization, refractory) and wrap the same
    /// fitted classifier — or a snapshot-restored copy of it, which is
    /// behavior-identical. Configuration mismatches are rejected as
    /// [`PersistError::Corrupt`] rather than silently changing alarm
    /// semantics.
    pub fn resume_anchors(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let mut dec = etsc_persist::open_envelope(bytes, MONITOR_STATE_KIND)?;
        let stride = dec.get_usize("monitor stride")?;
        let norm = match dec.get_u8("monitor norm")? {
            0 => StreamNorm::Raw,
            1 => StreamNorm::PerPrefix,
            t => return Err(PersistError::Corrupt(format!("monitor: norm tag {t}"))),
        };
        let refractory = dec.get_usize("monitor refractory")?;
        if stride != self.cfg.anchor_stride || norm != self.cfg.norm {
            return Err(PersistError::Corrupt(format!(
                "monitor: snapshot config (stride {stride}, {norm:?}) does not match \
                 this monitor (stride {}, {:?})",
                self.cfg.anchor_stride, self.cfg.norm
            )));
        }
        if refractory != self.cfg.refractory {
            return Err(PersistError::Corrupt(format!(
                "monitor: snapshot refractory {refractory} does not match {}",
                self.cfg.refractory
            )));
        }
        let now = dec.get_usize("monitor now")?;
        let quiet_until = dec.get_usize("monitor quiet_until")?;
        let n = dec.get_usize("monitor anchor count")?;
        // Every anchor costs at least an offset (8 B) plus a section length
        // (8 B); validate the declared count against the bytes actually
        // present before allocating — anchor snapshots cross process (and,
        // via the serving layers, network) boundaries, so a hostile count
        // must be a typed error, not a huge allocation.
        dec.check_claim(n, 16, "monitor anchors")?;
        let mut anchors: Vec<(usize, Box<dyn DecisionSession + 'a>)> = Vec::with_capacity(n);
        for _ in 0..n {
            let offset = dec.get_usize("monitor anchor offset")?;
            if offset >= now && now > 0 || anchors.last().is_some_and(|(a, _)| *a >= offset) {
                return Err(PersistError::Corrupt(format!(
                    "monitor: anchor offset {offset} breaks ascending order below now = {now}"
                )));
            }
            let mut sub = dec.section("monitor anchor session")?;
            let session = self.clf.resume_session(self.cfg.norm.into(), &mut sub)?;
            sub.finish()?;
            anchors.push((offset, session));
        }
        dec.finish()?;
        // Recycle the monitor's current sessions before adopting the
        // snapshot's — nothing leaks, and steady-state reuse still holds.
        for (_, mut session) in self.anchors.drain(..) {
            session.reset();
            self.pool.push(session);
        }
        self.anchors = anchors;
        self.now = now;
        self.quiet_until = quiet_until;
        Ok(())
    }

    /// The configuration this monitor was built with.
    ///
    /// Serving layers that own many monitors use this to assert that a
    /// migration target is configured identically to the source before
    /// shipping anchor snapshots at it (the snapshot path re-validates, but
    /// the accessor lets callers fail fast with their own error type).
    pub fn config(&self) -> &StreamMonitorConfig {
        &self.cfg
    }

    /// Number of currently live anchors (for instrumentation).
    pub fn live_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Number of pooled (idle, reusable) sessions (for instrumentation).
    pub fn pooled_sessions(&self) -> usize {
        self.pool.len()
    }
}

/// Placeholder swapped into retiring slots while their session moves to the
/// pool; never pushed.
struct NeverSession;

impl DecisionSession for NeverSession {
    fn push(&mut self, _x: f64) -> etsc_early::Decision {
        unreachable!("placeholder session is never driven")
    }
    fn decision(&self) -> etsc_early::Decision {
        etsc_early::Decision::Wait
    }
    fn len(&self) -> usize {
        0
    }
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_early::Decision;

    /// Commits to class 0 whenever the last `need` points average above 0.5.
    struct LevelDetector {
        need: usize,
        len: usize,
    }

    impl EarlyClassifier for LevelDetector {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            self.len
        }
        fn min_prefix(&self) -> usize {
            self.need
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() >= self.need {
                let m = prefix.iter().sum::<f64>() / prefix.len() as f64;
                if m > 0.5 {
                    return Decision::Predict {
                        label: 0,
                        confidence: 1.0,
                    };
                }
            }
            Decision::Wait
        }
        fn predict_full(&self, _s: &[f64]) -> usize {
            0
        }
    }

    #[test]
    fn quiet_stream_produces_no_alarms() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let alarms = mon.run(&vec![0.0; 200]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn event_triggers_alarm_near_onset() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 50,
            },
        );
        let mut stream = vec![0.0; 100];
        stream.extend(vec![1.0; 30]);
        stream.extend(vec![0.0; 100]);
        let alarms = mon.run(&stream);
        assert_eq!(alarms.len(), 1, "refractory should merge the alarm burst");
        let a = alarms[0];
        assert!(a.time >= 100 && a.time <= 110, "alarm at {}", a.time);
        assert_eq!(a.label, 0);
    }

    #[test]
    fn refractory_zero_produces_alarm_bursts() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut stream = vec![0.0; 50];
        stream.extend(vec![1.0; 30]);
        let alarms = mon.run(&stream);
        assert!(
            alarms.len() > 3,
            "without refractory every anchor fires: {}",
            alarms.len()
        );
    }

    #[test]
    fn anchor_stride_bounds_live_anchors() {
        let clf = LevelDetector { need: 4, len: 32 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 8,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        for _ in 0..500 {
            mon.push(-1.0);
        }
        assert!(mon.live_anchors() <= 32 / 8 + 1);
    }

    #[test]
    fn sessions_are_pooled_and_reused() {
        let clf = LevelDetector { need: 4, len: 32 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 8,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        for _ in 0..5_000 {
            mon.push(-1.0);
        }
        // Steady state: anchors retire as fast as they spawn, so the pool
        // stays bounded by the peak number of live anchors.
        assert!(
            mon.pooled_sessions() <= 32 / 8 + 1,
            "pool should stay bounded: {}",
            mon.pooled_sessions()
        );
    }

    #[test]
    fn per_prefix_norm_changes_what_the_classifier_sees() {
        // A detector keyed on raw level never fires under per-prefix norm
        // (z-normalized prefixes have mean zero by construction).
        let clf = LevelDetector { need: 4, len: 16 };
        let mut raw = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut pp = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::PerPrefix,
                refractory: 0,
            },
        );
        let stream = vec![2.0; 64];
        assert!(!raw.run(&stream).is_empty());
        assert!(pp.run(&stream).is_empty());
    }

    /// Commits whenever at least 4 samples have arrived and the newest one
    /// is high — so every mature anchor commits on the same sample.
    struct EdgeDetector;

    impl EarlyClassifier for EdgeDetector {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            64
        }
        fn min_prefix(&self) -> usize {
            4
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() >= 4 && prefix.last().is_some_and(|&x| x > 0.5) {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            }
        }
        fn predict_full(&self, _s: &[f64]) -> usize {
            0
        }
    }

    #[test]
    fn simultaneous_commits_all_fire_without_refractory() {
        // Three mature anchors (0, 2, 4) commit on the same sample (t = 7,
        // the first high one). With refractory 0 none may be lost: the
        // oldest fires immediately, the rest drain one per sample.
        let clf = EdgeDetector;
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 2,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut stream = vec![0.0; 7];
        stream.extend(vec![1.0; 3]);
        let alarms = mon.run(&stream);
        let head: Vec<(usize, usize)> = alarms.iter().map(|a| (a.time, a.anchor)).collect();
        assert_eq!(
            &head[..3],
            &[(7, 0), (8, 2), (9, 4)],
            "all simultaneous commits must eventually alarm: {head:?}"
        );
    }

    #[test]
    fn commit_and_close_in_the_same_tick_is_graceful() {
        // Three anchors (0, 2, 4) all commit on sample 7 (the first high
        // one). The oldest fires immediately; the second is closed by the
        // caller in the same tick, *after* it latched Predict but before
        // its alarm could drain. The monitor must not panic, must not leak
        // an alarm from the closed anchor, and must still drain the third.
        let clf = EdgeDetector;
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 2,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut alarms = Vec::new();
        for i in 0..8 {
            let x = if i >= 7 { 1.0 } else { 0.0 };
            alarms.extend(mon.push(x));
        }
        assert_eq!(
            alarms
                .iter()
                .map(|a| (a.time, a.anchor))
                .collect::<Vec<_>>(),
            vec![(7, 0)],
            "oldest committed anchor fires on the commit tick"
        );
        // Anchor 2 committed on the same tick and is still latched.
        assert!(mon.close_anchor(2), "latched anchor closes cleanly");
        assert!(!mon.close_anchor(2), "double close reports absence");
        let pooled = mon.pooled_sessions();
        assert!(pooled >= 2, "fired + closed sessions are recycled");
        // Subsequent pushes: anchor 2 never alarms; anchor 4 still drains.
        alarms.clear();
        for _ in 0..3 {
            alarms.extend(mon.push(1.0));
        }
        assert!(
            alarms.iter().all(|a| a.anchor != 2),
            "closed anchor must not alarm: {alarms:?}"
        );
        assert!(
            alarms.iter().any(|a| a.anchor == 4),
            "remaining committed anchor still drains: {alarms:?}"
        );
    }

    #[test]
    fn close_anchor_unknown_offset_is_a_no_op() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(&clf, StreamMonitorConfig::default());
        assert!(!mon.close_anchor(123));
        mon.push(0.0);
        assert_eq!(mon.live_anchors(), 1);
        assert!(mon.close_anchor(0));
        assert_eq!(mon.live_anchors(), 0);
        assert_eq!(mon.pooled_sessions(), 1);
    }

    /// A persistable mean-level detector: commits once `need` samples have
    /// arrived and their running mean exceeds 0.5 — with full session
    /// checkpoint support, so monitor snapshot tests have a native subject.
    struct PersistableDetector {
        need: usize,
        len: usize,
    }

    struct MeanSession<'a> {
        clf: &'a PersistableDetector,
        sum: f64,
        len: usize,
        decision: Decision,
    }

    impl DecisionSession for MeanSession<'_> {
        fn push(&mut self, x: f64) -> Decision {
            self.len += 1;
            if self.decision.is_predict() {
                return self.decision;
            }
            self.sum += x;
            if self.len >= self.clf.need && self.sum / self.len as f64 > 0.5 {
                self.decision = Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                };
            }
            self.decision
        }
        fn decision(&self) -> Decision {
            self.decision
        }
        fn len(&self) -> usize {
            self.len
        }
        fn reset(&mut self) {
            self.sum = 0.0;
            self.len = 0;
            self.decision = Decision::Wait;
        }
        fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
            enc.put_f64(self.sum);
            enc.put_usize(self.len);
            enc.put_bool(self.decision.is_predict());
            Ok(())
        }
    }

    impl EarlyClassifier for PersistableDetector {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            self.len
        }
        fn min_prefix(&self) -> usize {
            self.need
        }
        fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
            Box::new(MeanSession {
                clf: self,
                sum: 0.0,
                len: 0,
                decision: Decision::Wait,
            })
        }
        fn resume_session(
            &self,
            _norm: SessionNorm,
            dec: &mut etsc_early::Decoder<'_>,
        ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
            let sum = dec.get_f64("sum")?;
            let len = dec.get_usize("len")?;
            let committed = dec.get_bool("committed")?;
            Ok(Box::new(MeanSession {
                clf: self,
                sum,
                len,
                decision: if committed {
                    Decision::Predict {
                        label: 0,
                        confidence: 1.0,
                    }
                } else {
                    Decision::Wait
                },
            }))
        }
        fn predict_full(&self, _s: &[f64]) -> usize {
            0
        }
    }

    #[test]
    fn snapshot_resume_mid_stream_reproduces_alarms_exactly() {
        let clf = PersistableDetector { need: 4, len: 24 };
        let cfg = StreamMonitorConfig {
            anchor_stride: 2,
            norm: StreamNorm::Raw,
            refractory: 30,
        };
        let mut stream = vec![0.0; 40];
        stream.extend(vec![1.0; 20]);
        stream.extend(vec![0.0; 40]);
        stream.extend(vec![1.0; 20]);

        // Uninterrupted reference.
        let mut whole = StreamMonitor::new(&clf, cfg);
        let reference = whole.run(&stream);
        assert!(!reference.is_empty());

        // Interrupted twin: snapshot mid-refractory (right after the first
        // alarm), resume into a FRESH monitor, continue.
        let mut head = StreamMonitor::new(&clf, cfg);
        let mut alarms = Vec::new();
        let mut split = 0;
        for (i, &x) in stream.iter().enumerate() {
            if let Some(a) = head.push(x) {
                alarms.push(a);
                split = i + 1;
                break;
            }
        }
        let bytes = head.snapshot_anchors().unwrap();
        let mut resumed = StreamMonitor::new(&clf, cfg);
        resumed.resume_anchors(&bytes).unwrap();
        for &x in &stream[split..] {
            alarms.extend(resumed.push(x));
        }
        assert_eq!(alarms, reference, "restored monitor must drop no alarm");
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let clf = PersistableDetector { need: 4, len: 24 };
        let cfg = StreamMonitorConfig {
            anchor_stride: 2,
            norm: StreamNorm::Raw,
            refractory: 10,
        };
        let mut mon = StreamMonitor::new(&clf, cfg);
        for _ in 0..9 {
            mon.push(0.0);
        }
        let bytes = mon.snapshot_anchors().unwrap();
        let mut other = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 3,
                ..cfg
            },
        );
        assert!(matches!(
            other.resume_anchors(&bytes),
            Err(PersistError::Corrupt(_))
        ));
        // Same config resumes fine.
        let mut same = StreamMonitor::new(&clf, cfg);
        same.resume_anchors(&bytes).unwrap();
        assert_eq!(same.live_anchors(), mon.live_anchors());
    }

    #[test]
    fn snapshot_of_unsupported_sessions_refuses_cleanly() {
        // LevelDetector uses the default ReplaySession, which has no
        // save_state; the monitor must surface Unsupported, not panic.
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(&clf, StreamMonitorConfig::default());
        mon.push(0.0);
        assert!(matches!(
            mon.snapshot_anchors(),
            Err(PersistError::Unsupported(_))
        ));
    }

    #[test]
    fn alarm_codec_round_trips_bit_exactly() {
        let alarm = Alarm {
            time: 1234,
            anchor: 1200,
            label: 3,
            confidence: 0.1 + 0.2, // not exactly representable — bits must travel
        };
        let mut enc = Encoder::new();
        alarm.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = etsc_persist::Decoder::new(&bytes);
        let back = Alarm::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, alarm);
        assert_eq!(back.confidence.to_bits(), alarm.confidence.to_bits());
        // Truncated bytes error instead of panicking.
        let mut short = etsc_persist::Decoder::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            Alarm::decode(&mut short),
            Err(PersistError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn config_accessor_reports_the_construction_config() {
        let clf = LevelDetector { need: 4, len: 16 };
        let cfg = StreamMonitorConfig {
            anchor_stride: 3,
            norm: StreamNorm::Raw,
            refractory: 9,
        };
        let mon = StreamMonitor::new(&clf, cfg);
        assert_eq!(*mon.config(), cfg);
    }

    #[test]
    fn commits_during_refractory_are_suppressed_not_deferred() {
        // Refractory long enough to cover the entire event: only the first
        // commit may alarm; anchors that commit during the quiet period
        // retire silently instead of alarming when the period ends.
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 300,
            },
        );
        let mut stream = vec![0.0; 50];
        stream.extend(vec![1.0; 40]);
        stream.extend(vec![0.0; 200]);
        let alarms = mon.run(&stream);
        assert_eq!(alarms.len(), 1, "alarms: {alarms:?}");
    }
}
