//! The stream monitor: running an early classifier on unbounded data.
//!
//! A UCR-format evaluation hands the classifier one perfectly segmented
//! exemplar at a time. A deployment does not know when (or whether) a
//! pattern starts. The monitor therefore keeps a set of candidate **anchors**
//! — recent positions at which a pattern might have begun — and feeds each
//! anchor's growing prefix to the early classifier at every arriving sample.
//! When the classifier commits, an alarm fires (and a refractory period
//! suppresses the alarm storm that would otherwise follow from neighboring
//! anchors).
//!
//! This design surfaces all three of the paper's streaming failure modes:
//! prefixes of longer innocuous patterns trigger anchors mid-word (the
//! prefix problem), contained atomic units trigger them inside larger events
//! (inclusion), and look-alike background shapes trigger them anywhere
//! (homophones).

use etsc_core::ClassLabel;
use etsc_core::znorm::znormalize;
use etsc_early::{Decision, EarlyClassifier};

/// Normalization applied to each anchored prefix before classification.
///
/// Deliberately **no oracle option**: a deployment cannot standardize a
/// prefix with statistics of data that has not arrived yet (Section 4 of
/// the paper). To see what happens when a model trained on z-normalized
/// exemplars meets a stream, run `Raw` (the mismatch the paper predicts
/// floods the model with false negatives) and `PerPrefix` (the honest best
/// effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamNorm {
    /// Feed raw samples unchanged.
    Raw,
    /// Z-normalize each anchored prefix by its own statistics.
    PerPrefix,
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamMonitorConfig {
    /// Spacing between candidate anchors, in samples. 1 = an anchor at every
    /// position (exhaustive; cost scales inversely).
    pub anchor_stride: usize,
    /// Normalization policy for anchored prefixes.
    pub norm: StreamNorm,
    /// Samples after an alarm during which no further alarm may fire.
    pub refractory: usize,
}

impl Default for StreamMonitorConfig {
    fn default() -> Self {
        Self {
            anchor_stride: 4,
            norm: StreamNorm::PerPrefix,
            refractory: 0,
        }
    }
}

/// An alarm emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// Sample index at which the classifier committed.
    pub time: usize,
    /// Anchor (hypothesized pattern onset) that produced the alarm.
    pub anchor: usize,
    /// Predicted class.
    pub label: ClassLabel,
    /// Classifier confidence.
    pub confidence: f64,
}

/// A streaming monitor wrapping an early classifier.
pub struct StreamMonitor<'a, C: EarlyClassifier + ?Sized> {
    clf: &'a C,
    cfg: StreamMonitorConfig,
    /// Start offsets of live anchors (ascending).
    anchors: Vec<usize>,
    /// Absolute index of the next incoming sample.
    now: usize,
    /// Buffer of the last `series_len` samples (the longest prefix any
    /// anchor can need).
    buf: Vec<f64>,
    /// Absolute index of `buf[0]`.
    buf_start: usize,
    /// No alarms before this time (refractory gate).
    quiet_until: usize,
}

impl<'a, C: EarlyClassifier + ?Sized> StreamMonitor<'a, C> {
    /// Create a monitor over a fitted early classifier.
    pub fn new(clf: &'a C, cfg: StreamMonitorConfig) -> Self {
        assert!(cfg.anchor_stride >= 1, "anchor stride must be positive");
        Self {
            clf,
            cfg,
            anchors: Vec::new(),
            now: 0,
            buf: Vec::new(),
            buf_start: 0,
            quiet_until: 0,
        }
    }

    /// Feed one sample; returns an alarm if the classifier committed.
    pub fn push(&mut self, x: f64) -> Option<Alarm> {
        let max_len = self.clf.series_len();
        // Maintain the rolling buffer.
        self.buf.push(x);
        if self.buf.len() > max_len {
            let drop = self.buf.len() - max_len;
            self.buf.drain(..drop);
            self.buf_start += drop;
        }
        // Spawn a new anchor on stride boundaries.
        if self.now % self.cfg.anchor_stride == 0 {
            self.anchors.push(self.now);
        }
        let t = self.now;
        self.now += 1;

        // Retire anchors whose window has exceeded the pattern length.
        let min_live = (t + 1).saturating_sub(max_len);
        self.anchors.retain(|&a| a >= min_live.max(self.buf_start));

        if t < self.quiet_until {
            return None;
        }

        let min_prefix = self.clf.min_prefix();
        let mut fired: Option<Alarm> = None;
        for &a in &self.anchors {
            let len = t + 1 - a;
            if len < min_prefix {
                continue;
            }
            let start = a - self.buf_start;
            let prefix = &self.buf[start..start + len];
            let decision = match self.cfg.norm {
                StreamNorm::Raw => self.clf.decide(prefix),
                StreamNorm::PerPrefix => self.clf.decide(&znormalize(prefix)),
            };
            if let Decision::Predict { label, confidence } = decision {
                fired = Some(Alarm {
                    time: t,
                    anchor: a,
                    label,
                    confidence,
                });
                break;
            }
        }
        if let Some(alarm) = fired {
            // An alarm consumes its anchor and starts the refractory period.
            self.anchors.retain(|&a| a != alarm.anchor);
            self.quiet_until = t + 1 + self.cfg.refractory;
            return Some(alarm);
        }
        None
    }

    /// Run the monitor over an entire slice, collecting all alarms.
    pub fn run(&mut self, stream: &[f64]) -> Vec<Alarm> {
        stream.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Number of currently live anchors (for instrumentation).
    pub fn live_anchors(&self) -> usize {
        self.anchors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_early::Decision;

    /// Commits to class 0 whenever the last `need` points average above 0.5.
    struct LevelDetector {
        need: usize,
        len: usize,
    }

    impl EarlyClassifier for LevelDetector {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            self.len
        }
        fn min_prefix(&self) -> usize {
            self.need
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() >= self.need {
                let m = prefix.iter().sum::<f64>() / prefix.len() as f64;
                if m > 0.5 {
                    return Decision::Predict {
                        label: 0,
                        confidence: 1.0,
                    };
                }
            }
            Decision::Wait
        }
        fn predict_full(&self, _s: &[f64]) -> usize {
            0
        }
    }

    #[test]
    fn quiet_stream_produces_no_alarms() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let alarms = mon.run(&vec![0.0; 200]);
        assert!(alarms.is_empty());
    }

    #[test]
    fn event_triggers_alarm_near_onset() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 50,
            },
        );
        let mut stream = vec![0.0; 100];
        stream.extend(vec![1.0; 30]);
        stream.extend(vec![0.0; 100]);
        let alarms = mon.run(&stream);
        assert_eq!(alarms.len(), 1, "refractory should merge the alarm burst");
        let a = alarms[0];
        assert!(a.time >= 100 && a.time <= 110, "alarm at {}", a.time);
        assert_eq!(a.label, 0);
    }

    #[test]
    fn refractory_zero_produces_alarm_bursts() {
        let clf = LevelDetector { need: 4, len: 16 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut stream = vec![0.0; 50];
        stream.extend(vec![1.0; 30]);
        let alarms = mon.run(&stream);
        assert!(
            alarms.len() > 3,
            "without refractory every anchor fires: {}",
            alarms.len()
        );
    }

    #[test]
    fn anchor_stride_bounds_live_anchors() {
        let clf = LevelDetector { need: 4, len: 32 };
        let mut mon = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 8,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        for _ in 0..500 {
            mon.push(-1.0);
        }
        assert!(mon.live_anchors() <= 32 / 8 + 1);
    }

    #[test]
    fn per_prefix_norm_changes_what_the_classifier_sees() {
        // A detector keyed on raw level never fires under per-prefix norm
        // (z-normalized prefixes have mean zero by construction).
        let clf = LevelDetector { need: 4, len: 16 };
        let mut raw = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::Raw,
                refractory: 0,
            },
        );
        let mut pp = StreamMonitor::new(
            &clf,
            StreamMonitorConfig {
                anchor_stride: 1,
                norm: StreamNorm::PerPrefix,
                refractory: 0,
            },
        );
        let stream = vec![2.0; 64];
        assert!(!raw.run(&stream).is_empty());
        assert!(pp.run(&stream).is_empty());
    }
}
