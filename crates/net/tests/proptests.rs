//! Property tests for the frame decoder: no input — random, corrupted,
//! truncated, or hostile — may ever panic, hang, or decode to the wrong
//! message. Every failure must be a typed [`WireError`].

use etsc_net::wire::{decode_frame, encode_frame, Message, MAX_FRAME_PAYLOAD};
use etsc_net::WireError;
use etsc_serve::Record;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes through the frame decoder: any outcome is fine as
    /// long as it is a `Result`, not a panic or a hang.
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = decode_frame(&bytes, MAX_FRAME_PAYLOAD);
    }

    /// Arbitrary bytes wrapped in a *valid* frame (good magic, version,
    /// length, checksum) driven through the message decoder: the payload
    /// layer must be exactly as hostile-proof as the frame layer. This is
    /// the path that exercises element-count validation — a payload
    /// claiming billions of records must fail before allocating.
    #[test]
    fn random_payloads_in_valid_frames_never_panic_the_message_decoder(
        msg_type in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let bytes = encode_frame(msg_type, &payload);
        let frame = decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap();
        let _ = Message::decode(&frame);
    }

    /// Flipping any single bit of a well-formed frame is detected: the
    /// checksum covers header and payload both, so no corruption decodes
    /// to a (different) valid frame.
    #[test]
    fn any_single_bit_flip_is_detected(
        stream in 0u64..=u64::MAX,
        byte_pick in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let good = Message::OpenStream { stream }.to_frame_bytes();
        let mut bad = good.clone();
        let i = byte_pick % bad.len();
        bad[i] ^= 1 << bit;
        let result = decode_frame(&bad, MAX_FRAME_PAYLOAD);
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {i} went undetected"
        );
    }

    /// A frame cut anywhere before its end is a typed truncation-class
    /// error, never a panic or a misdecode.
    #[test]
    fn any_truncation_is_a_typed_error(
        token in 0u64..=u64::MAX,
        cut_pick in 0usize..10_000,
    ) {
        let good = Message::Ping { token }.to_frame_bytes();
        let cut = cut_pick % good.len(); // strictly shorter than the frame
        match decode_frame(&good[..cut], MAX_FRAME_PAYLOAD) {
            Err(WireError::Truncated { .. }) => {}
            // A cut inside the header can also surface as a length/magic
            // error once enough of the header survives — typed either way.
            Err(_) => {}
            Ok(f) => prop_assert!(
                false,
                "cut at {cut} of {} decoded to msg_type {}",
                good.len(),
                f.msg_type
            ),
        }
    }

    /// Randomly generated ingest batches round-trip bit-exactly through a
    /// frame (floats travel as IEEE bits, not text).
    #[test]
    fn random_ingest_batches_round_trip(
        ids in prop::collection::vec(0u64..=u64::MAX, 0..24),
        values in prop::collection::vec(-1e12f64..1e12, 0..24),
    ) {
        let records: Vec<Record> = ids
            .iter()
            .zip(&values)
            .map(|(&id, &v)| Record::new(id, v))
            .collect();
        let msg = Message::IngestBatch {
            client: 0,
            seq: 0,
            records,
            ctx: None,
        };
        let frame = decode_frame(&msg.to_frame_bytes(), MAX_FRAME_PAYLOAD).unwrap();
        prop_assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    /// Random migrate-in blobs (ids plus opaque snapshot bytes) round-trip
    /// exactly — the migration path must not touch the bytes it carries.
    #[test]
    fn random_migration_blobs_round_trip(
        ids in prop::collection::vec(0u64..=u64::MAX, 0..8),
        blob in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let streams: Vec<(u64, Vec<u8>)> = ids
            .iter()
            .enumerate()
            .map(|(k, &id)| (id, blob.iter().map(|&b| b.wrapping_add(k as u8)).collect()))
            .collect();
        let msg = Message::MigrateIn { streams };
        let frame = decode_frame(&msg.to_frame_bytes(), MAX_FRAME_PAYLOAD).unwrap();
        prop_assert_eq!(Message::decode(&frame).unwrap(), msg);
    }

    /// The receiver's payload cap always wins: any frame whose payload
    /// exceeds it is refused with the typed oversize error.
    #[test]
    fn receiver_payload_cap_is_enforced(
        cap in 0usize..64,
        extra in 1usize..64,
    ) {
        let payload = vec![0u8; cap + extra];
        let bytes = encode_frame(1, &payload);
        match decode_frame(&bytes, cap) {
            Err(WireError::FrameTooLarge { declared, max }) => {
                prop_assert_eq!(declared, cap + extra);
                prop_assert_eq!(max, cap);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }
}
