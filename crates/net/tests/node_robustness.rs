//! Robustness tests against a *live* node: malformed bytes, protocol
//! violations, connection limits, and overload must all surface as typed
//! replies — the node never panics, never hangs, and never stops serving
//! well-behaved clients.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use etsc_early::{Decision, DecisionSession, EarlyClassifier, SessionNorm};
use etsc_net::wire::{encode_frame, read_frame, Message, ReadOutcome, WIRE_MAGIC};
use etsc_net::{Endpoint, Listener, NetClient, Node, NodeConfig, WireError};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};
use etsc_serve::{OverflowPolicy, Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

// --- fixture: the mean-threshold pulse detector the serve tests use ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PulseDetector {
    need: usize,
    len: usize,
}

struct MeanSession {
    need: usize,
    sum: f64,
    len: usize,
    decision: Decision,
}

impl DecisionSession for MeanSession {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision;
        }
        self.sum += x;
        if self.len >= self.need && self.sum / self.len as f64 > 0.5 {
            self.decision = Decision::Predict {
                label: 0,
                confidence: 1.0,
            };
        }
        self.decision
    }
    fn decision(&self) -> Decision {
        self.decision
    }
    fn len(&self) -> usize {
        self.len
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.len = 0;
        self.decision = Decision::Wait;
    }
    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_f64(self.sum);
        enc.put_usize(self.len);
        enc.put_bool(self.decision.is_predict());
        Ok(())
    }
}

impl EarlyClassifier for PulseDetector {
    fn n_classes(&self) -> usize {
        1
    }
    fn series_len(&self) -> usize {
        self.len
    }
    fn min_prefix(&self) -> usize {
        self.need
    }
    fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(MeanSession {
            need: self.need,
            sum: 0.0,
            len: 0,
            decision: Decision::Wait,
        })
    }
    fn resume_session(
        &self,
        _norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        let sum = dec.get_f64("sum")?;
        let len = dec.get_usize("len")?;
        let committed = dec.get_bool("committed")?;
        Ok(Box::new(MeanSession {
            need: self.need,
            sum,
            len,
            decision: if committed {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            },
        }))
    }
    fn predict_full(&self, _s: &[f64]) -> usize {
        0
    }
}

impl Persist for PulseDetector {
    const KIND: &'static str = "PulseDetector";
    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.need);
        enc.put_usize(self.len);
    }
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let need = dec.get_usize("pulse need")?;
        let len = dec.get_usize("pulse len")?;
        if need == 0 || len == 0 || need > len {
            return Err(PersistError::Corrupt(format!(
                "pulse detector: need {need}, len {len}"
            )));
        }
        Ok(Self { need, len })
    }
}

fn detector() -> PulseDetector {
    PulseDetector { need: 4, len: 24 }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 1,
            norm: StreamNorm::Raw,
            refractory: 100,
        },
        model_name: "pulse".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

/// Stops the node even if the test body panics, so the scoped server
/// thread can join and the failure surfaces instead of hanging the suite.
struct StopGuard<'n, 'a>(&'n Node<'a, PulseDetector>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// Bind a node on a fresh loopback port and run `body` with its endpoint
/// while it serves; the node is stopped and joined before returning.
fn with_node<R>(
    cfg: RuntimeConfig,
    node_cfg: NodeConfig,
    body: impl FnOnce(&Endpoint, &Node<'_, PulseDetector>) -> R,
) -> R {
    let clf = detector();
    let runtime = Runtime::new(&clf, cfg).unwrap();
    let node = Node::new(runtime, node_cfg);
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    std::thread::scope(|s| {
        let server = s.spawn(|| node.serve(listener));
        let guard = StopGuard(&node);
        let out = body(&endpoint, &node);
        drop(guard);
        server.join().unwrap().unwrap();
        out
    })
}

/// Read one reply frame from a raw socket, with a hard deadline so a
/// regression can fail instead of hanging the suite.
fn read_reply(stream: &mut TcpStream) -> Message {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let outcome = read_frame(stream, 1 << 20, &mut || {
        std::time::Instant::now() >= deadline
    })
    .expect("reply must be a well-formed frame");
    match outcome {
        ReadOutcome::Frame(f) => Message::decode(&f).expect("reply must decode"),
        other => panic!("expected a reply frame, got {other:?}"),
    }
}

fn raw_connect(endpoint: &Endpoint) -> TcpStream {
    match endpoint {
        Endpoint::Tcp(addr) => TcpStream::connect(addr).unwrap(),
        #[cfg(unix)]
        _ => panic!("tests dial TCP endpoints"),
    }
}

#[test]
fn garbage_bytes_get_a_typed_reply_and_the_node_survives() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let mut raw = raw_connect(ep);
        raw.write_all(b"this is definitely not an etsc-net frame")
            .unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("magic"), "{msg}");
            }
            other => panic!("expected a typed error reply, got {other:?}"),
        }
        // The node must keep serving well-behaved clients afterwards.
        let mut client = NetClient::connect(ep).unwrap();
        assert_eq!(client.ping(7).unwrap(), 7);
    });
}

#[test]
fn mid_frame_disconnect_does_not_kill_the_node() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let good = Message::Ping { token: 9 }.to_frame_bytes();
        let mut raw = raw_connect(ep);
        raw.write_all(&good[..good.len() / 2]).unwrap();
        drop(raw); // vanish mid-frame
        let mut client = NetClient::connect(ep).unwrap();
        assert_eq!(client.ping(11).unwrap(), 11);
    });
}

#[test]
fn checksum_corruption_is_reported_not_processed() {
    with_node(config(), NodeConfig::default(), |ep, node| {
        let mut bytes = Message::OpenStream { stream: 5 }.to_frame_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt the checksum itself
        let mut raw = raw_connect(ep);
        raw.write_all(&bytes).unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("checksum"), "{msg}");
            }
            other => panic!("expected a checksum error reply, got {other:?}"),
        }
        // The corrupted request must not have been executed.
        assert_eq!(node.with_runtime(|rt| rt.stream_count()), 0);
    });
}

#[test]
fn oversized_length_prefix_is_refused() {
    let node_cfg = NodeConfig {
        max_frame_payload: 1024,
        ..NodeConfig::default()
    };
    with_node(config(), node_cfg, |ep, _node| {
        // Hand-built header declaring a 256 MiB payload; no such bytes
        // follow, and the node must refuse on the declaration alone.
        let mut header = Vec::new();
        header.extend_from_slice(&WIRE_MAGIC);
        header.extend_from_slice(&etsc_net::WIRE_VERSION.to_le_bytes());
        header.push(3); // Drain
        header.extend_from_slice(&(256u32 << 20).to_le_bytes());
        let mut raw = raw_connect(ep);
        raw.write_all(&header).unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("1024"), "{msg}");
            }
            other => panic!("expected an oversize error reply, got {other:?}"),
        }
    });
}

#[test]
fn wrong_wire_version_is_refused() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let good = Message::Drain.to_frame_bytes();
        let mut bad = good.clone();
        bad[4] = 0xFE; // version low byte
        let mut raw = raw_connect(ep);
        raw.write_all(&bad).unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("version"), "{msg}");
            }
            other => panic!("expected a version error reply, got {other:?}"),
        }
    });
}

#[test]
fn unknown_message_type_is_a_typed_reply() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let bytes = encode_frame(222, &[]);
        let mut raw = raw_connect(ep);
        raw.write_all(&bytes).unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("222"), "{msg}");
            }
            other => panic!("expected an unknown-type reply, got {other:?}"),
        }
    });
}

#[test]
fn a_reply_sent_as_a_request_is_refused() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let mut raw = raw_connect(ep);
        Message::Pong { token: 1 }.write_to(&mut raw).unwrap();
        match read_reply(&mut raw) {
            Message::Error(WireError::RemoteMalformed(msg)) => {
                assert!(msg.contains("reply"), "{msg}");
            }
            other => panic!("expected a protocol-violation reply, got {other:?}"),
        }
    });
}

#[test]
fn connection_limit_refuses_with_a_typed_busy_reply() {
    let node_cfg = NodeConfig {
        max_connections: 1,
        ..NodeConfig::default()
    };
    with_node(config(), node_cfg, |ep, _node| {
        let mut first = NetClient::connect(ep).unwrap();
        // The ping guarantees the first connection's handler is live (and
        // counted) before the second arrives.
        assert_eq!(first.ping(1).unwrap(), 1);
        // The refusal is pushed on accept, so read it without sending
        // anything (a send could race the node's close).
        let mut second = raw_connect(ep);
        match read_reply(&mut second) {
            Message::Error(WireError::Busy {
                active,
                limit,
                retry_after_ms,
            }) => {
                assert_eq!((active, limit), (1, 1));
                // The default config advertises how long a slot takes to
                // free up, so refused clients can sleep instead of spin.
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // The first client is unaffected.
        assert_eq!(first.ping(3).unwrap(), 3);
    });
}

#[test]
fn queue_full_crosses_the_wire_as_the_same_atomic_typed_error() {
    let cfg = RuntimeConfig {
        shards: 1,
        queue_capacity: 8,
        overflow: OverflowPolicy::Reject,
        ..config()
    };
    with_node(cfg, NodeConfig::default(), |ep, node| {
        let mut client = NetClient::connect(ep).unwrap();
        let big: Vec<Record> = (0..50).map(|i| Record::new(i % 3, 1.0)).collect();
        match client.ingest(&big) {
            Err(WireError::QueueFull {
                shard,
                capacity,
                stream: _,
                retry_after_ms,
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(capacity, 8);
                // Default: no hint — a Reject-policy queue drains only
                // through the caller, so the node cannot predict when.
                assert_eq!(retry_after_ms, 0);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Atomic remotely, exactly like in process: nothing was enqueued.
        assert_eq!(node.with_runtime(|rt| rt.queued()), 0);
        // A batch that fits is accepted on the same connection.
        let small: Vec<Record> = (0..8).map(|i| Record::new(i % 3, 1.0)).collect();
        client.ingest(&small).unwrap();
    });
}

#[test]
fn checkpoint_without_a_registry_is_a_typed_config_error() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let mut client = NetClient::connect(ep).unwrap();
        match client.checkpoint() {
            Err(WireError::RemoteBadConfig(msg)) => {
                assert!(msg.contains("registry"), "{msg}");
            }
            other => panic!("expected RemoteBadConfig, got {other:?}"),
        }
    });
}

#[test]
fn stats_request_serves_prometheus_text() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let mut client = NetClient::connect(ep).unwrap();
        let batch: Vec<Record> = (0..6).map(|i| Record::new(i, 1.0)).collect();
        for _ in 0..6 {
            client.ingest(&batch).unwrap();
        }
        let alarms = client.drain().unwrap();
        assert!(!alarms.is_empty());
        let text = client.stats_prometheus().unwrap();
        for needle in [
            "# TYPE etsc_serve_ingested_total counter",
            "etsc_serve_ingested_total 36",
            "# TYPE etsc_serve_streams gauge",
            "etsc_serve_streams 6",
            "etsc_serve_shard_streams{shard=\"0\"}",
            "etsc_serve_shard_streams{shard=\"1\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    });
}

#[test]
fn graceful_shutdown_returns_the_final_drain() {
    let clf = detector();
    let runtime = Runtime::new(&clf, config()).unwrap();
    let node = Node::new(runtime, NodeConfig::default());
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    std::thread::scope(|s| {
        let server = s.spawn(|| node.serve(listener));
        let _guard = StopGuard(&node);
        let mut client = NetClient::connect(&endpoint).unwrap();
        // Enough over-threshold samples to alarm, left undrained.
        for _ in 0..6 {
            client.ingest(&[Record::new(42, 1.0)]).unwrap();
        }
        let final_alarms = client.shutdown().unwrap();
        assert!(
            final_alarms.iter().any(|a| a.stream == 42),
            "shutdown must hand back the in-flight alarms"
        );
        server.join().unwrap().unwrap();
        assert!(node.is_stopped());
    });
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let mut path = std::env::temp_dir();
    path.push(format!("etsc-net-uds-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let clf = detector();
    let runtime = Runtime::new(&clf, config()).unwrap();
    let node = Node::new(runtime, NodeConfig::default());
    let endpoint = Endpoint::Unix(path.clone());
    let listener = Listener::bind(&endpoint).unwrap();
    std::thread::scope(|s| {
        let server = s.spawn(|| node.serve(listener));
        let _guard = StopGuard(&node);
        let mut client = NetClient::connect(&endpoint).unwrap();
        assert!(client.open_stream(3).unwrap());
        for _ in 0..6 {
            client.ingest(&[Record::new(3, 1.0)]).unwrap();
        }
        let alarms = client.drain().unwrap();
        assert!(alarms.iter().any(|a| a.stream == 3));
        assert_eq!(client.stream_count().unwrap(), 1);
        node.stop();
        server.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_file(&path);
}
