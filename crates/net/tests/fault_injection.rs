//! Deterministic fault injection against a live node: scripted connection
//! refusals, dropped and corrupted frames, read stalls, and asymmetric
//! partitions, driven through the client's retry policy. The invariant
//! under test everywhere: a tagged ingest batch is applied **exactly
//! once** no matter which fault interrupts which attempt.

use std::time::Duration;

use etsc_early::{Decision, DecisionSession, EarlyClassifier, SessionNorm};
use etsc_net::{
    ClientConfig, Endpoint, Fault, FaultPlan, Listener, NetClient, Node, NodeConfig, Op,
    RetryPolicy, WireError,
};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};
use etsc_serve::{OverflowPolicy, Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

// --- fixture: the mean-threshold pulse detector the serve tests use ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PulseDetector {
    need: usize,
    len: usize,
}

struct MeanSession {
    need: usize,
    sum: f64,
    len: usize,
    decision: Decision,
}

impl DecisionSession for MeanSession {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision;
        }
        self.sum += x;
        if self.len >= self.need && self.sum / self.len as f64 > 0.5 {
            self.decision = Decision::Predict {
                label: 0,
                confidence: 1.0,
            };
        }
        self.decision
    }
    fn decision(&self) -> Decision {
        self.decision
    }
    fn len(&self) -> usize {
        self.len
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.len = 0;
        self.decision = Decision::Wait;
    }
    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_f64(self.sum);
        enc.put_usize(self.len);
        enc.put_bool(self.decision.is_predict());
        Ok(())
    }
}

impl EarlyClassifier for PulseDetector {
    fn n_classes(&self) -> usize {
        1
    }
    fn series_len(&self) -> usize {
        self.len
    }
    fn min_prefix(&self) -> usize {
        self.need
    }
    fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(MeanSession {
            need: self.need,
            sum: 0.0,
            len: 0,
            decision: Decision::Wait,
        })
    }
    fn resume_session(
        &self,
        _norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        let sum = dec.get_f64("sum")?;
        let len = dec.get_usize("len")?;
        let committed = dec.get_bool("committed")?;
        Ok(Box::new(MeanSession {
            need: self.need,
            sum,
            len,
            decision: if committed {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            },
        }))
    }
    fn predict_full(&self, _s: &[f64]) -> usize {
        0
    }
}

impl Persist for PulseDetector {
    const KIND: &'static str = "PulseDetector";
    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.need);
        enc.put_usize(self.len);
    }
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let need = dec.get_usize("pulse need")?;
        let len = dec.get_usize("pulse len")?;
        if need == 0 || len == 0 || need > len {
            return Err(PersistError::Corrupt(format!(
                "pulse detector: need {need}, len {len}"
            )));
        }
        Ok(Self { need, len })
    }
}

fn detector() -> PulseDetector {
    PulseDetector { need: 4, len: 24 }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 1,
            norm: StreamNorm::Raw,
            refractory: 100,
        },
        model_name: "pulse".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

/// Stops the node even if the test body panics, so the scoped server
/// thread can join and the failure surfaces instead of hanging the suite.
struct StopGuard<'n, 'a>(&'n Node<'a, PulseDetector>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

fn with_node<R>(
    cfg: RuntimeConfig,
    node_cfg: NodeConfig,
    body: impl FnOnce(&Endpoint, &Node<'_, PulseDetector>) -> R,
) -> R {
    let clf = detector();
    let runtime = Runtime::new(&clf, cfg).unwrap();
    let node = Node::new(runtime, node_cfg);
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    std::thread::scope(|s| {
        let server = s.spawn(|| node.serve(listener));
        let guard = StopGuard(&node);
        let out = body(&endpoint, &node);
        drop(guard);
        server.join().unwrap().unwrap();
        out
    })
}

/// A client config tuned for fault tests: fast timeouts, fast backoff, a
/// tagged identity so ingest retries are idempotent.
fn resilient_cfg(client_id: u64) -> ClientConfig {
    ClientConfig {
        request_timeout: Duration::from_millis(150),
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            jitter_seed: 7,
        },
        client_id,
        ..ClientConfig::default()
    }
}

fn batch() -> Vec<Record> {
    (0..6).map(|i| Record::new(i % 3, 1.0)).collect()
}

#[test]
fn refused_connect_is_consumed_and_the_next_dial_succeeds() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let inj = FaultPlan::new()
            .at(Op::Connect(0), Fault::RefuseConnect)
            .build();
        let mut cfg = resilient_cfg(0);
        cfg.faults = Some(inj.clone());
        // The scripted refusal fires on the first dial...
        match NetClient::connect_with(ep, cfg.clone()).map(|_| ()) {
            Err(WireError::Io(msg)) => assert!(msg.contains("refused"), "{msg}"),
            other => panic!("expected a refused connect, got {other:?}"),
        }
        // ...is consumed by it, and the next dial goes through clean.
        let mut client = NetClient::connect_with(ep, cfg).unwrap();
        assert_eq!(client.ping(3).unwrap(), 3);
        assert_eq!(inj.pending(), 0);
    });
}

#[test]
fn transient_read_stalls_are_absorbed_below_the_retry_layer() {
    with_node(config(), NodeConfig::default(), |ep, _node| {
        let inj = FaultPlan::new()
            .at(Op::Read(0), Fault::StallReads(3))
            .build();
        let mut cfg = resilient_cfg(0);
        cfg.faults = Some(inj);
        let mut client = NetClient::connect_with(ep, cfg).unwrap();
        // Three stalled reads delay the reply but stay inside the request
        // deadline, so the frame reader just polls through them: no retry,
        // no reconnect, no duplicate.
        assert_eq!(client.ping(11).unwrap(), 11);
        assert_eq!(client.retry_stats().retries, 0);
        assert_eq!(client.retry_stats().reconnects, 0);
    });
}

#[test]
fn lost_ack_under_inbound_partition_makes_retried_ingest_exactly_once() {
    with_node(config(), NodeConfig::default(), |ep, node| {
        let inj = FaultPlan::new().build();
        let mut cfg = resilient_cfg(7);
        cfg.retry.max_attempts = 2; // fail fast: both attempts will stall
        cfg.faults = Some(inj.clone());
        let mut client = NetClient::connect_with(ep, cfg).unwrap();
        assert!(client.open_stream(0).unwrap());

        // Requests reach the node but every reply is lost: the classic
        // "applied but unacknowledged" failure.
        inj.inject(Fault::PartitionInbound);
        let records = batch();
        match client.ingest(&records) {
            Err(WireError::TimedOut) => {}
            other => panic!("expected the ack to time out, got {other:?}"),
        }
        assert_eq!(client.retry_stats().retries, 1);
        assert_eq!(client.retry_stats().giveups, 1);

        // Both attempts crossed the partition; the idempotency tag made
        // the second a server-side no-op.
        assert_eq!(node.with_runtime(|rt| rt.queued()), records.len());
        assert_eq!(node.with_runtime(|rt| rt.stats().duplicate_batches), 1);

        // Heal and re-submit the *same* batch: the client still holds its
        // unacknowledged seq, the node recognizes it, and the client
        // finally gets its (duplicate) ack. Still applied exactly once.
        inj.heal();
        client.ingest(&records).unwrap();
        assert_eq!(client.retry_stats().duplicate_acks, 1);
        assert_eq!(node.with_runtime(|rt| rt.queued()), records.len());
    });
}

#[test]
fn outbound_partition_swallows_requests_without_applying_them() {
    with_node(config(), NodeConfig::default(), |ep, node| {
        let inj = FaultPlan::new().build();
        let mut cfg = resilient_cfg(0); // untagged: transport faults must not retry
        cfg.faults = Some(inj.clone());
        let mut client = NetClient::connect_with(ep, cfg).unwrap();

        inj.inject(Fault::PartitionOutbound);
        match client.ingest(&batch()) {
            Err(WireError::TimedOut) => {}
            other => panic!("expected the swallowed request to time out, got {other:?}"),
        }
        // Untagged + transport fault: retrying could duplicate, so the
        // client must not have retried.
        assert_eq!(client.retry_stats().retries, 0);
        assert_eq!(node.with_runtime(|rt| rt.queued()), 0);

        // The partition was asymmetric — after healing, the same
        // connection serves again (nothing half-written on the wire).
        inj.heal();
        assert_eq!(client.ping(5).unwrap(), 5);
        assert_eq!(node.with_runtime(|rt| rt.queued()), 0);
    });
}

#[test]
fn corrupted_request_frame_is_refused_typed_and_the_retry_recovers() {
    with_node(config(), NodeConfig::default(), |ep, node| {
        let inj = FaultPlan::new().build();
        let mut cfg = resilient_cfg(9);
        cfg.faults = Some(inj.clone());
        let mut client = NetClient::connect_with(ep, cfg).unwrap();
        assert!(client.open_stream(0).unwrap());

        // Flip a bit in the next outbound frame: the node's checksum
        // catches it, replies typed, and closes; the tagged client
        // reconnects and re-sends.
        inj.inject(Fault::CorruptWrite);
        let records = batch();
        client.ingest(&records).unwrap();
        assert_eq!(client.retry_stats().retries, 1);
        assert!(client.retry_stats().reconnects >= 1);
        // The corrupt attempt was never applied, so no duplicate ack.
        assert_eq!(client.retry_stats().duplicate_acks, 0);
        assert_eq!(node.with_runtime(|rt| rt.queued()), records.len());
    });
}

#[test]
fn mid_frame_disconnect_on_write_retries_to_exactly_one_application() {
    with_node(config(), NodeConfig::default(), |ep, node| {
        let inj = FaultPlan::new().build();
        let mut cfg = resilient_cfg(13);
        cfg.faults = Some(inj.clone());
        let mut client = NetClient::connect_with(ep, cfg).unwrap();
        assert!(client.open_stream(0).unwrap());

        inj.inject(Fault::DropWrite);
        let records = batch();
        client.ingest(&records).unwrap();
        assert_eq!(client.retry_stats().retries, 1);
        assert!(client.retry_stats().reconnects >= 1);
        assert_eq!(node.with_runtime(|rt| rt.queued()), records.len());
    });
}

#[test]
fn queue_full_hint_crosses_the_wire_and_maps_to_a_duration() {
    let cfg = RuntimeConfig {
        shards: 1,
        queue_capacity: 8,
        overflow: OverflowPolicy::Reject,
        ..config()
    };
    let node_cfg = NodeConfig {
        queue_full_retry_after: Duration::from_millis(25),
        ..NodeConfig::default()
    };
    with_node(cfg, node_cfg, |ep, _node| {
        let mut client_cfg = resilient_cfg(0);
        client_cfg.retry = RetryPolicy::none(); // a full queue stays full here
        let mut client = NetClient::connect_with(ep, client_cfg).unwrap();
        let big: Vec<Record> = (0..50).map(|i| Record::new(i % 3, 1.0)).collect();
        let err = client.ingest(&big).unwrap_err();
        match &err {
            WireError::QueueFull { retry_after_ms, .. } => assert_eq!(*retry_after_ms, 25),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(err.retry_after(), Some(Duration::from_millis(25)));
        assert_eq!(client.retry_stats().giveups, 1);
    });
}

#[test]
fn scripted_plans_replay_identically_across_runs() {
    // The same seeded plan against the same node produces the same retry
    // counters — the harness is deterministic end to end, which is what
    // lets CI pin fault seeds.
    let run = || {
        with_node(config(), NodeConfig::default(), |ep, node| {
            let inj = FaultPlan::random(0xE75C, 3, 6).build();
            let mut cfg = resilient_cfg(21);
            cfg.retry.max_attempts = 6;
            cfg.faults = Some(inj);
            let mut client = NetClient::connect_with(ep, cfg).unwrap();
            // Under faults a retried open can find the stream already
            // created, so only the Ok matters here.
            client.open_stream(0).unwrap();
            let records = batch();
            client.ingest(&records).unwrap();
            assert_eq!(node.with_runtime(|rt| rt.queued()), records.len());
            let s = client.retry_stats();
            (s.retries, s.reconnects, s.duplicate_acks, s.giveups)
        })
    };
    assert_eq!(run(), run());
}
