//! Self-healing: a [`Supervisor`] heartbeating a live cluster detects a
//! killed node, recovers its streams from the registry checkpoint, and
//! moves them to the survivors — while a [`DedupCursor`] on the sink keeps
//! the redelivered alarms exactly-once. Also the failure *edges*: a node
//! dying between the two migration phases must leave the topology
//! untouched, and two supervisors racing one failover must converge.

use std::path::PathBuf;
use std::time::Duration;

use etsc_early::{Decision, DecisionSession, EarlyClassifier, SessionNorm};
use etsc_net::{
    ClientConfig, Cluster, Endpoint, Listener, Node, NodeConfig, RetryPolicy, Supervisor,
    SupervisorConfig,
};
use etsc_persist::{Decoder, Encoder, ModelRegistry, Persist, PersistError};
use etsc_serve::{DedupCursor, Record, Runtime, RuntimeConfig};
use etsc_stream::{StreamMonitorConfig, StreamNorm};

// --- fixture: the mean-threshold pulse detector the serve tests use ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PulseDetector {
    need: usize,
    len: usize,
}

struct MeanSession {
    need: usize,
    sum: f64,
    len: usize,
    decision: Decision,
}

impl DecisionSession for MeanSession {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision;
        }
        self.sum += x;
        if self.len >= self.need && self.sum / self.len as f64 > 0.5 {
            self.decision = Decision::Predict {
                label: 0,
                confidence: 1.0,
            };
        }
        self.decision
    }
    fn decision(&self) -> Decision {
        self.decision
    }
    fn len(&self) -> usize {
        self.len
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.len = 0;
        self.decision = Decision::Wait;
    }
    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_f64(self.sum);
        enc.put_usize(self.len);
        enc.put_bool(self.decision.is_predict());
        Ok(())
    }
}

impl EarlyClassifier for PulseDetector {
    fn n_classes(&self) -> usize {
        1
    }
    fn series_len(&self) -> usize {
        self.len
    }
    fn min_prefix(&self) -> usize {
        self.need
    }
    fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(MeanSession {
            need: self.need,
            sum: 0.0,
            len: 0,
            decision: Decision::Wait,
        })
    }
    fn resume_session(
        &self,
        _norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        let sum = dec.get_f64("sum")?;
        let len = dec.get_usize("len")?;
        let committed = dec.get_bool("committed")?;
        Ok(Box::new(MeanSession {
            need: self.need,
            sum,
            len,
            decision: if committed {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            },
        }))
    }
    fn predict_full(&self, _s: &[f64]) -> usize {
        0
    }
}

impl Persist for PulseDetector {
    const KIND: &'static str = "PulseDetector";
    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.need);
        enc.put_usize(self.len);
    }
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let need = dec.get_usize("pulse need")?;
        let len = dec.get_usize("pulse len")?;
        if need == 0 || len == 0 || need > len {
            return Err(PersistError::Corrupt(format!(
                "pulse detector: need {need}, len {len}"
            )));
        }
        Ok(Self { need, len })
    }
}

fn detector() -> PulseDetector {
    PulseDetector { need: 4, len: 24 }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        shards: 2,
        monitor: StreamMonitorConfig {
            anchor_stride: 1,
            norm: StreamNorm::Raw,
            refractory: 100,
        },
        model_name: "pulse".to_string(),
        threads: Some(2),
        ..RuntimeConfig::default()
    }
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("etsc-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bind_loopback() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
    let ep = listener.local_endpoint().unwrap();
    (listener, ep)
}

/// A client config that fails fast against a dead node: short timeouts,
/// two attempts, millisecond backoff.
fn fast_cfg(client_id: u64) -> ClientConfig {
    ClientConfig {
        request_timeout: Duration::from_millis(200),
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            jitter_seed: 3,
        },
        client_id,
        ..ClientConfig::default()
    }
}

struct StopGuard<'n, 'a>(&'n Node<'a, PulseDetector>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

#[test]
fn supervisor_detects_a_dead_node_and_fails_its_streams_over() {
    let root = tmp_root("detect");
    let clf = detector();
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Node 0 checkpoints after every batch, so every acked batch — and its
    // dedup cursor — is covered when it dies.
    let mut rt0 = Runtime::new(&clf, config()).unwrap();
    rt0.enable_checkpoints(ModelRegistry::open(&dirs[0]).unwrap(), 1)
        .unwrap();
    let node0 = Node::new(rt0, NodeConfig::default());
    let node1 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let node2 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();
    let (l2, e2) = bind_loopback();

    std::thread::scope(|s| {
        let guard0 = StopGuard(&node0);
        let guard1 = StopGuard(&node1);
        let guard2 = StopGuard(&node2);
        let server0 = s.spawn(|| node0.serve(l0));
        let server1 = s.spawn(|| node1.serve(l1));
        let server2 = s.spawn(|| node2.serve(l2));

        let mut cluster = Cluster::connect_with(&[e0, e1, e2], fast_cfg(1)).unwrap();
        for id in 0..6 {
            cluster.open_stream(id).unwrap();
        }
        // Deterministic placement: two streams per node.
        cluster.migrate(&[0, 1], 0).unwrap();
        cluster.migrate(&[2, 3], 1).unwrap();
        cluster.migrate(&[4, 5], 2).unwrap();

        // Eight rounds of hot values: every stream commits an alarm around
        // sample four; all six are delivered to the sink pre-crash.
        let mut sink = DedupCursor::default();
        let batch: Vec<Record> = (0..6).map(|id| Record::new(id, 1.0)).collect();
        for _ in 0..8 {
            cluster.ingest(&batch).unwrap();
        }
        let delivered = sink.filter(cluster.drain().unwrap());
        assert_eq!(delivered.len(), 6, "one alarm per stream before the kill");

        // Kill node 0 for real: accept loop gone, port closed.
        node0.stop();
        drop(guard0);
        server0.join().unwrap().unwrap();

        // An in-flight batch is lost against the dead node — the cluster
        // stashes its sub-batch and surfaces the error once.
        assert!(cluster.ingest(&batch).is_err());
        assert!(cluster.pending_batches() >= 1);

        // Two missed heartbeats declare it dead and fail it over.
        let sup_cfg = SupervisorConfig {
            miss_threshold: 2,
            ..SupervisorConfig::new(dirs.clone(), "pulse")
        };
        let mut sup: Supervisor<PulseDetector> = Supervisor::new(sup_cfg);
        assert!(sup.tick(&mut cluster).unwrap().is_empty());
        assert_eq!(sup.misses(0), 1);
        let reports = sup.tick(&mut cluster).unwrap();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.node, 0);
        let mut moved_ids: Vec<u64> = report.moved.iter().map(|&(id, _)| id).collect();
        moved_ids.sort_unstable();
        assert_eq!(moved_ids, vec![0, 1]);
        assert!(report.moved.iter().all(|&(_, target)| target != 0));
        assert!(sup.is_dead(0));
        assert_eq!(sup.failovers(), 1);

        // Settle routing and the stashed batch against the survivors.
        cluster.apply_failover(report).unwrap();
        assert!(cluster.router().is_down(0));
        assert_eq!(cluster.pending_batches(), 0);
        assert_eq!(cluster.failovers(), 1);

        // The checkpoint re-delivers its undelivered alarms; every one of
        // them already reached the sink, so the dedup cursor drops them
        // all — recovery is at-least-once, delivery stays exactly-once.
        let fresh = sink.filter(report.redelivered.clone());
        assert!(
            fresh.is_empty(),
            "redelivered alarms must all be duplicates, got {fresh:?}"
        );
        assert!(sink.duplicates_dropped() >= 1);
        assert_eq!(sink.delivered(), 6);

        // Every stream is served again, and ingest flows without errors.
        assert_eq!(cluster.stream_count().unwrap(), 6);
        cluster.ingest(&batch).unwrap();
        let _ = sink.filter(cluster.drain().unwrap());

        // A healthy cluster heartbeats clean; the dead node stays skipped.
        assert!(sup.tick(&mut cluster).unwrap().is_empty());

        drop(guard1);
        drop(guard2);
        server1.join().unwrap().unwrap();
        server2.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn target_death_between_migrate_out_and_migrate_in_leaves_topology_untouched() {
    let clf = detector();
    let node0 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let node1 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();

    std::thread::scope(|s| {
        let guard0 = StopGuard(&node0);
        let guard1 = StopGuard(&node1);
        let server0 = s.spawn(|| node0.serve(l0));
        let server1 = s.spawn(|| node1.serve(l1));

        let mut cluster = Cluster::connect_with(&[e0, e1], fast_cfg(1)).unwrap();
        cluster.open_stream(7).unwrap();
        cluster.migrate(&[7], 0).unwrap();
        let batch: Vec<Record> = vec![Record::new(7, 1.0); 3];
        cluster.ingest(&batch).unwrap();

        // The target dies before the import phase can happen.
        node1.stop();
        drop(guard1);
        server1.join().unwrap().unwrap();

        // Export succeeds, import fails, the stream is restored to its
        // source — the error surfaces, the topology does not move.
        assert!(cluster.migrate(&[7], 1).is_err());
        assert_eq!(cluster.router().route(7), 0);
        assert_eq!(cluster.client(0).stream_count().unwrap(), 1);

        // The restored stream is fully recoverable: it keeps ingesting and
        // its session state survived the round trip (the alarm commits at
        // the fourth hot sample overall, counting the pre-failure three).
        cluster.ingest(&batch).unwrap();
        let alarms = cluster.client(0).drain().unwrap();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].stream, 7);

        drop(guard0);
        server0.join().unwrap().unwrap();
    });
}

#[test]
fn racing_supervisors_converge_on_one_failover_without_double_importing() {
    let root = tmp_root("race");
    let clf = detector();
    let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    let mut rt0 = Runtime::new(&clf, config()).unwrap();
    rt0.enable_checkpoints(ModelRegistry::open(&dirs[0]).unwrap(), 1)
        .unwrap();
    let node0 = Node::new(rt0, NodeConfig::default());
    let node1 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let node2 = Node::new(Runtime::new(&clf, config()).unwrap(), NodeConfig::default());
    let (l0, e0) = bind_loopback();
    let (l1, e1) = bind_loopback();
    let (l2, e2) = bind_loopback();
    let eps = [e0, e1, e2];

    std::thread::scope(|s| {
        let guard0 = StopGuard(&node0);
        let guard1 = StopGuard(&node1);
        let guard2 = StopGuard(&node2);
        let server0 = s.spawn(|| node0.serve(l0));
        let server1 = s.spawn(|| node1.serve(l1));
        let server2 = s.spawn(|| node2.serve(l2));

        // Two independent drivers of the same nodes, with disjoint client
        // id bases, each running its own supervisor.
        let mut cluster_a = Cluster::connect_with(&eps, fast_cfg(1)).unwrap();
        let mut cluster_b = Cluster::connect_with(&eps, fast_cfg(10)).unwrap();
        for id in 0..5 {
            cluster_a.open_stream(id).unwrap();
        }
        cluster_a.migrate(&[0, 1], 0).unwrap();
        cluster_a.migrate(&[2], 1).unwrap();
        cluster_a.migrate(&[3, 4], 2).unwrap();

        let batch: Vec<Record> = (0..5).map(|id| Record::new(id, 1.0)).collect();
        for _ in 0..6 {
            cluster_a.ingest(&batch).unwrap();
        }

        node0.stop();
        drop(guard0);
        server0.join().unwrap().unwrap();

        let sup_cfg = SupervisorConfig {
            miss_threshold: 1,
            ..SupervisorConfig::new(dirs.clone(), "pulse")
        };
        let mut sup_a: Supervisor<PulseDetector> = Supervisor::new(sup_cfg.clone());
        let mut sup_b: Supervisor<PulseDetector> = Supervisor::new(sup_cfg);

        // First supervisor wins the race and does the real import.
        let reports_a = sup_a.tick(&mut cluster_a).unwrap();
        assert_eq!(reports_a.len(), 1);
        let report_a = &reports_a[0];
        assert_eq!(report_a.already_imported, 0);
        cluster_a.apply_failover(report_a).unwrap();

        // The second arrives late: same down set, same ring, therefore the
        // same placement — and the survivors refuse its duplicate imports
        // atomically, so it converges instead of double-serving.
        let reports_b = sup_b.tick(&mut cluster_b).unwrap();
        assert_eq!(reports_b.len(), 1);
        let report_b = &reports_b[0];
        assert_eq!(report_b.already_imported, report_b.moved.len());
        let sorted = |r: &Vec<(u64, usize)>| {
            let mut v = r.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&report_a.moved), sorted(&report_b.moved));
        cluster_b.apply_failover(report_b).unwrap();

        // Both routers agree on where every recovered stream lives, and
        // each stream is served exactly once across the survivors.
        for &(id, target) in &report_a.moved {
            assert_eq!(cluster_a.router().route(id), target);
            assert_eq!(cluster_b.router().route(id), target);
        }
        assert_eq!(cluster_a.stream_count().unwrap(), 5);

        // Both drivers keep ingesting through their converged routing.
        cluster_a.ingest(&batch).unwrap();
        cluster_b.ingest(&batch).unwrap();

        drop(guard1);
        drop(guard2);
        server1.join().unwrap().unwrap();
        server2.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_dir_all(&root);
}
