//! Failure detection and automatic failover.
//!
//! A [`Supervisor`] heartbeats every node in a [`Cluster`] with `Ping`
//! probes. A node that misses [`SupervisorConfig::miss_threshold`]
//! consecutive probes (each probe gets one reconnect-and-retry to rule out
//! a stale connection) is declared dead and failed over:
//!
//! 1. the router marks the node down, so placement — for the failover
//!    itself and for all subsequent traffic — skips it;
//! 2. the node's serving state is recovered **from its registry
//!    checkpoint** ([`Runtime::recover_from`]), exactly as the node itself
//!    would restart;
//! 3. the recovered streams are exported over the same two-phase snapshot
//!    path a planned migration uses, imported into the surviving nodes the
//!    down-aware ring assigns, and pinned there;
//! 4. the checkpoint's undelivered alarms and per-client ingest cursors
//!    are returned in a [`FailoverReport`] so the caller can feed the
//!    alarms through a [`DedupCursor`](etsc_serve::DedupCursor) (recovery
//!    re-delivers; dedup makes delivery exactly-once) and hand the cursors
//!    to [`Cluster::apply_failover`], which settles in-flight batches.
//!
//! Two supervisors racing the same failover converge: both compute the
//! same down-set and therefore the same survivor placement, and the
//! importing node refuses duplicate streams atomically — the slower
//! supervisor counts them in
//! [`FailoverReport::already_imported`] and pins identically instead of
//! double-importing.
//!
//! The supervisor holds no connections of its own — it probes through the
//! cluster's clients — and recovery happens in-process from the registry
//! directory, which therefore must be reachable from where the supervisor
//! runs (shared storage, or a local copy of the dead node's registry).

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::path::PathBuf;

use etsc_core::metrics::{push_histogram, push_scalar, Clock, Histogram};
use etsc_core::trace::{EventKind, Severity};
use etsc_early::EarlyClassifier;
use etsc_persist::{ModelRegistry, Persist};
use etsc_serve::{Runtime, StreamAlarm};

use crate::client::NetClient;
use crate::cluster::Cluster;
use crate::error::WireError;

/// Tuning for a [`Supervisor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Consecutive failed probes before a node is declared dead. Each
    /// probe already includes one reconnect attempt, so the threshold
    /// counts genuine unreachability, not stale sockets.
    pub miss_threshold: u32,
    /// Per-node registry directories (index-aligned with the cluster's
    /// endpoints): where each node checkpoints, and therefore where its
    /// state is recovered from when it dies.
    pub registries: Vec<PathBuf>,
    /// Registry entry name of the served model (every node serves the
    /// same fitted model under the same name).
    pub model_name: String,
}

impl SupervisorConfig {
    /// A config with the default miss threshold (3).
    pub fn new(registries: Vec<PathBuf>, model_name: impl Into<String>) -> Self {
        Self {
            miss_threshold: 3,
            registries,
            model_name: model_name.into(),
        }
    }
}

/// What one failover did; consumed by [`Cluster::apply_failover`] and by
/// the caller's alarm sink.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The node declared dead.
    pub node: usize,
    /// `(stream, surviving node)` for every recovered stream, as pinned.
    pub moved: Vec<(u64, usize)>,
    /// The checkpoint's undelivered alarms. Delivery is at-least-once
    /// across the crash — some of these may have been delivered before the
    /// node died — so feed them through a
    /// [`DedupCursor`](etsc_serve::DedupCursor) rather than straight to
    /// the sink.
    pub redelivered: Vec<StreamAlarm>,
    /// The checkpoint's per-client ingest cursors (client id → highest
    /// applied batch seq); [`Cluster::apply_failover`] uses them to decide
    /// which in-flight batches the checkpoint already covers.
    pub cursors: BTreeMap<u64, u64>,
    /// Streams another supervisor had already imported into a survivor
    /// when this one tried (two supervisors racing one failover).
    pub already_imported: usize,
}

/// Heartbeat-driven failure detector and failover driver (see the
/// [module docs](self)).
pub struct Supervisor<C: EarlyClassifier + Persist> {
    cfg: SupervisorConfig,
    misses: Vec<u32>,
    dead: BTreeSet<usize>,
    failovers: u64,
    clock: Clock,
    probe_ns: Histogram,
    failover_ns: Histogram,
    _model: PhantomData<fn() -> C>,
}

impl<C: EarlyClassifier + Persist> Supervisor<C> {
    /// Build a supervisor. `C` is the served model type — needed to load
    /// the checkpointed model during recovery.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Self {
            cfg,
            misses: Vec::new(),
            dead: BTreeSet::new(),
            failovers: 0,
            clock: Clock::monotonic(),
            probe_ns: Histogram::new(),
            failover_ns: Histogram::new(),
            _model: PhantomData,
        }
    }

    /// Replace the clock behind the probe/failover latency histograms
    /// (manual in deterministic tests, disabled to supervise untimed).
    /// Detection itself never reads the clock — ticks are caller-driven —
    /// so the clock mode cannot change which nodes are declared dead.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Consecutive misses currently recorded against `node`.
    pub fn misses(&self, node: usize) -> u32 {
        self.misses.get(node).copied().unwrap_or(0)
    }

    /// True once `node` has been declared dead.
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead.contains(&node)
    }

    /// Failovers this supervisor has driven.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// One heartbeat round: probe every live node, and fail over any that
    /// reaches the miss threshold. Returns one report per failover (empty
    /// when all is well); apply each with [`Cluster::apply_failover`] and
    /// feed its [`redelivered`](FailoverReport::redelivered) alarms
    /// through the sink's dedup cursor.
    ///
    /// Call this on the cadence you want dead nodes detected at: detection
    /// latency is `miss_threshold` ticks.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Result<Vec<FailoverReport>, WireError> {
        if self.misses.len() != cluster.nodes() {
            self.misses = vec![0; cluster.nodes()];
        }
        let mut reports = Vec::new();
        for node in 0..cluster.nodes() {
            if self.dead.contains(&node) {
                continue;
            }
            let timing = !self.clock.is_disabled();
            let started = if timing { self.clock.now_ns() } else { 0 };
            let alive = Self::probe(cluster.client(node), node as u64);
            if timing {
                // One observation per probe, hit or miss — a miss's span
                // (timeout + redial + second timeout) is the latency a
                // failed heartbeat costs the tick, which is the number to
                // watch when choosing a tick cadence.
                self.probe_ns
                    .record(self.clock.now_ns().saturating_sub(started));
            }
            if alive {
                if let Some(m) = self.misses.get_mut(node) {
                    *m = 0;
                }
                continue;
            }
            // `misses` was resized to `cluster.nodes()` above, so the entry
            // exists; the `unwrap_or(0)` fallback (which would merely delay
            // a failover) keeps the bookkeeping structurally panic-free.
            let misses = self
                .misses
                .get_mut(node)
                .map(|m| {
                    *m += 1;
                    *m
                })
                .unwrap_or(0);
            if misses >= self.cfg.miss_threshold.max(1) {
                let started = if timing { self.clock.now_ns() } else { 0 };
                let report = self.failover(node, cluster)?;
                if timing {
                    self.failover_ns
                        .record(self.clock.now_ns().saturating_sub(started));
                }
                reports.push(report);
            }
        }
        Ok(reports)
    }

    /// One health probe: a single un-retried ping, with one fresh dial if
    /// it fails (a stale connection and a dead node look identical until
    /// you reconnect).
    fn probe(client: &mut NetClient, token: u64) -> bool {
        if client.ping_once(token).is_ok() {
            return true;
        }
        client.reconnect().is_ok() && client.ping_once(token).is_ok()
    }

    /// Declare `node` dead and move its streams to the survivors.
    fn failover(
        &mut self,
        node: usize,
        cluster: &mut Cluster,
    ) -> Result<FailoverReport, WireError> {
        self.dead.insert(node);
        let tracer = cluster.tracer().filter(|t| t.enabled()).cloned();
        if let Some(t) = &tracer {
            t.event(
                Severity::Error,
                EventKind::FailoverDeclared,
                node as u64,
                self.misses(node) as u64,
            );
        }
        // Down first: the placement below — and everything after — must
        // skip the dead node.
        cluster.router_mut().set_down(node);
        let dir = self.cfg.registries.get(node).cloned().ok_or_else(|| {
            WireError::RemoteBadConfig(format!("no registry directory configured for node {node}"))
        })?;
        let registry = ModelRegistry::open(&dir)?;
        let model: C = registry.load(&self.cfg.model_name)?;
        let mut rt = Runtime::recover_from(&model, &registry, &self.cfg.model_name)
            .map_err(|e| WireError::from_serve(&e))?;
        // The checkpoint's undelivered alarms re-deliver through the
        // caller's dedup cursor; everything queued at checkpoint time was
        // already flushed into them by checkpoint_state.
        let redelivered = rt.drain();
        let cursors = rt.ingest_cursors().clone();
        let ids = rt.stream_ids();
        let exported = rt
            .export_streams(&ids)
            .map_err(|e| WireError::from_serve(&e))?;
        let mut per_target: BTreeMap<usize, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
        for (id, bytes) in exported {
            per_target
                .entry(cluster.router().route(id))
                .or_default()
                .push((id, bytes));
        }
        let mut moved = Vec::new();
        let mut already_imported = 0;
        for (target, blobs) in per_target {
            match cluster.client(target).migrate_in(&blobs) {
                Ok(_) => {}
                Err(WireError::DuplicateStream { .. }) => {
                    // A racing supervisor imported this target's batch
                    // first (imports are atomic, so "one duplicate" means
                    // "all already there"). Converge on its placement —
                    // identical to ours, since both routers walk the same
                    // ring with the same down set.
                    already_imported += blobs.len();
                }
                Err(e) => return Err(e),
            }
            for (id, _) in &blobs {
                cluster.router_mut().pin(*id, target);
                moved.push((*id, target));
            }
        }
        if let Some(t) = &tracer {
            t.event(
                Severity::Warn,
                EventKind::FailoverCompleted,
                node as u64,
                moved.len() as u64,
            );
        }
        self.failovers += 1;
        Ok(FailoverReport {
            node,
            moved,
            redelivered,
            cursors,
            already_imported,
        })
    }

    /// Render the supervisor's own metrics — failover count, dead-node
    /// count, probe and failover latency histograms — in the same
    /// Prometheus dialect every other layer exposes.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        push_scalar(
            &mut out,
            "etsc_net_supervisor_failovers_total",
            "Failovers this supervisor has driven.",
            "counter",
            self.failovers,
        );
        push_scalar(
            &mut out,
            "etsc_net_supervisor_dead_nodes",
            "Nodes this supervisor has declared dead.",
            "gauge",
            self.dead.len() as u64,
        );
        push_histogram(
            &mut out,
            "etsc_net_heartbeat_probe_ns",
            "Heartbeat probe latency in nanoseconds (misses include the redial and second timeout).",
            &self.probe_ns.snapshot(),
        );
        push_histogram(
            &mut out,
            "etsc_net_failover_ns",
            "End-to-end failover duration (recover, export, import, pin) in nanoseconds.",
            &self.failover_ns.snapshot(),
        );
        out
    }
}
