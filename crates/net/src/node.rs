//! The federated node: a serving [`Runtime`] behind a socket.
//!
//! A [`Node`] wraps one `etsc-serve` [`Runtime`] and answers the wire
//! protocol over a [`Listener`] — blocking I/O on a bounded set of scoped
//! connection threads, no async runtime. The runtime sits behind a mutex,
//! so a node preserves the runtime's semantics exactly: requests are
//! serialized, backpressure under [`OverflowPolicy::Block`] happens while
//! the requesting client waits for its ack, and a
//! [`QueueFull`](crate::WireError::QueueFull) rejection under
//! [`OverflowPolicy::Reject`] crosses the wire as the same atomic,
//! retryable, typed error it is in process.
//!
//! [`OverflowPolicy::Block`]: etsc_serve::OverflowPolicy::Block
//! [`OverflowPolicy::Reject`]: etsc_serve::OverflowPolicy::Reject
//!
//! # Shutdown
//!
//! [`Node::stop`] (or a wire [`Message::Shutdown`]) flips a flag that the
//! accept loop and every connection thread poll via their read timeouts.
//! In-flight requests finish and send their replies first — a batch that
//! was being ingested when the flag flipped is never lost — then the
//! threads unwind and [`Node::serve`] returns, handing the runtime back
//! for inspection via [`Node::into_runtime`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use etsc_core::metrics::Clock;
use etsc_core::trace::{SpanKind, TraceContext};
use etsc_early::EarlyClassifier;
use etsc_persist::{ModelRegistry, Persist};
use etsc_serve::Runtime;

use crate::error::WireError;
use crate::metrics::MessageTimings;
use crate::transport::{Conn, Listener};
use crate::wire::{read_frame, Message, ReadOutcome, MAX_FRAME_PAYLOAD};

/// Tuning for a [`Node`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Maximum concurrently served connections. A connection over the
    /// limit is answered with a typed [`Busy`](WireError::Busy) reply and
    /// closed, so clients can back off instead of hanging.
    pub max_connections: usize,
    /// Read timeout applied to every connection; this is also the poll
    /// interval at which idle connection threads notice a shutdown.
    pub read_timeout: Duration,
    /// Largest frame payload the node will accept; a header declaring more
    /// fails before any allocation.
    pub max_frame_payload: usize,
    /// Retry-after hint carried by [`Busy`](WireError::Busy) refusals —
    /// roughly how long a connection slot takes to free up here. Zero
    /// means "unknown" and lets clients use their own backoff.
    pub busy_retry_after: Duration,
    /// Retry-after hint carried by [`QueueFull`](WireError::QueueFull)
    /// rejections. Zero (the default) means "unknown": with a
    /// single-driver Reject-policy queue nobody else drains, so the node
    /// usually cannot predict when capacity frees.
    pub queue_full_retry_after: Duration,
    /// Clock behind the node's per-request service-time histograms:
    /// monotonic by default, [`Clock::disabled`] to serve untimed (the
    /// histograms then stay empty), manual in deterministic tests. Timing
    /// never influences replies, only the exposed metrics.
    pub clock: Clock,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            max_connections: 32,
            read_timeout: Duration::from_millis(20),
            max_frame_payload: MAX_FRAME_PAYLOAD,
            busy_retry_after: Duration::from_millis(50),
            queue_full_retry_after: Duration::ZERO,
            clock: Clock::monotonic(),
        }
    }
}

/// One serving node: a [`Runtime`] plus the accept loop that exposes it.
pub struct Node<'a, C: EarlyClassifier + Persist> {
    runtime: Mutex<Runtime<'a, C>>,
    registry: Option<ModelRegistry>,
    cfg: NodeConfig,
    stop: AtomicBool,
    active: AtomicUsize,
    request_ns: MessageTimings,
}

impl<'a, C: EarlyClassifier + Persist> Node<'a, C> {
    /// Wrap `runtime` in a node. Without a registry, `Checkpoint` requests
    /// are answered with a typed configuration error.
    pub fn new(runtime: Runtime<'a, C>, cfg: NodeConfig) -> Self {
        Self {
            runtime: Mutex::new(runtime),
            registry: None,
            cfg,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            request_ns: MessageTimings::new(),
        }
    }

    /// The node-side per-request service-time histograms (for inspection
    /// from tests and co-located drivers; scrapers get them appended to
    /// every `Stats` reply).
    pub fn request_timings(&self) -> &MessageTimings {
        &self.request_ns
    }

    /// Attach the registry that `Checkpoint` requests write to.
    pub fn with_registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Ask the node to stop. Safe from any thread; [`Node::serve`] returns
    /// once in-flight requests have finished and replied.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// True once [`Node::stop`] was called (locally or over the wire).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Reclaim the wrapped runtime (after [`Node::serve`] has returned).
    pub fn into_runtime(self) -> Runtime<'a, C> {
        self.runtime.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` against the wrapped runtime (for inspection from tests and
    /// co-located drivers).
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime<'a, C>) -> R) -> R {
        let mut rt = self.runtime.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut rt)
    }

    /// Serve the protocol on `listener` until [`Node::stop`]. Blocking —
    /// callers put it on a (scoped) thread. Connection handlers run on
    /// scoped threads of their own, so every one of them has unwound by
    /// the time this returns.
    pub fn serve(&self, listener: Listener) -> Result<(), WireError> {
        std::thread::scope(|s| {
            while !self.is_stopped() {
                match listener.poll_accept(self.cfg.read_timeout)? {
                    Some(mut conn) => {
                        let active = self.active.load(Ordering::SeqCst);
                        if active >= self.cfg.max_connections {
                            // Refuse with a typed reply, never a silent
                            // close.
                            let _ = Message::Error(WireError::Busy {
                                active,
                                limit: self.cfg.max_connections,
                                retry_after_ms: self.cfg.busy_retry_after.as_millis() as u64,
                            })
                            .write_to(&mut conn);
                            conn.shutdown();
                            continue;
                        }
                        self.active.fetch_add(1, Ordering::SeqCst);
                        s.spawn(move || {
                            self.handle_conn(&mut conn);
                            self.active.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            Ok(())
        })
    }

    /// Serve one connection until it closes, errors, or the node stops.
    fn handle_conn(&self, conn: &mut Conn) {
        loop {
            let outcome = read_frame(conn, self.cfg.max_frame_payload, &mut || self.is_stopped());
            match outcome {
                Ok(ReadOutcome::Frame(frame)) => match Message::decode(&frame) {
                    Ok(msg) => {
                        let (reply, close_after) = self.handle_message(msg);
                        if reply.write_to(conn).is_err() {
                            return;
                        }
                        if close_after {
                            conn.shutdown();
                            return;
                        }
                    }
                    Err(err) => {
                        // The frame was sound but its payload was not: say
                        // so in a typed reply, then close — after a
                        // protocol mismatch further frames cannot be
                        // trusted to mean what they say.
                        let _ = Message::Error(err).write_to(conn);
                        conn.shutdown();
                        return;
                    }
                },
                Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Stopped) => {
                    conn.shutdown();
                    return;
                }
                Err(err) => {
                    // Framing failure (bad magic, bad checksum, truncated,
                    // oversized): reply typed, then close — byte alignment
                    // with the peer is lost.
                    let _ = Message::Error(err).write_to(conn);
                    conn.shutdown();
                    return;
                }
            }
        }
    }

    /// Dispatch one request to the runtime, timing its service span (lock
    /// acquisition included — contention is part of what a client waits
    /// for) into the per-kind histograms. Returns the reply and whether
    /// the connection should close after sending it. Total: every request
    /// gets a reply, and runtime failures cross as typed
    /// [`Message::Error`]s.
    fn handle_message(&self, msg: Message) -> (Message, bool) {
        let clock = &self.cfg.clock;
        let slot = if clock.is_disabled() {
            None
        } else {
            MessageTimings::index_of(&msg)
        };
        let started = if slot.is_some() { clock.now_ns() } else { 0 };
        let (reply, close_after) = self.dispatch(msg);
        if let Some(slot) = slot {
            self.request_ns
                .record(slot, clock.now_ns().saturating_sub(started));
        }
        (reply, close_after)
    }

    fn dispatch(&self, msg: Message) -> (Message, bool) {
        let mut rt = self.runtime.lock().unwrap_or_else(|p| p.into_inner());
        let reply = match msg {
            Message::OpenStream { stream } => Message::OpenAck {
                created: rt.open_stream(stream),
            },
            Message::IngestBatch {
                client,
                seq,
                records,
                ctx,
            } => {
                // When the batch carries a trace context and this runtime
                // has a live tracer, interpose a NodeIngest span between
                // the client's send span and the shard spans: the span id
                // is allocated up front so the runtime's enqueue spans can
                // parent to it, and the span itself is recorded only after
                // the ingest returns (so its duration covers the whole
                // node-side service, lock wait excluded).
                let node_span = match (rt.tracer(), ctx) {
                    (Some(t), Some(ctx)) if t.enabled() => {
                        let tracer = t.clone();
                        let id = tracer.alloc_span_id();
                        let started = tracer.start();
                        Some((tracer, id, ctx, started))
                    }
                    _ => None,
                };
                let inner_ctx = match &node_span {
                    Some((_, id, ctx, _)) => Some(TraceContext {
                        trace_id: ctx.trace_id,
                        parent_span: *id,
                    }),
                    None => ctx,
                };
                let reply = match rt.ingest_tagged_ctx(client, seq, &records, inner_ctx) {
                    Ok(applied) => Message::IngestAck { applied },
                    Err(e) => {
                        let mut err = WireError::from_serve(&e);
                        if let WireError::QueueFull { retry_after_ms, .. } = &mut err {
                            *retry_after_ms = self.cfg.queue_full_retry_after.as_millis() as u64;
                        }
                        Message::Error(err)
                    }
                };
                if let Some((tracer, id, ctx, started)) = node_span {
                    tracer.span_with_id(
                        id,
                        SpanKind::NodeIngest,
                        ctx.trace_id,
                        ctx.parent_span,
                        started,
                        records.len() as u64,
                    );
                }
                reply
            }
            Message::Drain => Message::DrainAck { alarms: rt.drain() },
            Message::Checkpoint => match &self.registry {
                None => Message::Error(WireError::RemoteBadConfig(
                    "node was started without a registry".to_string(),
                )),
                Some(reg) => match rt.checkpoint(reg) {
                    Ok(bytes) => Message::CheckpointAck {
                        bytes: bytes as u64,
                    },
                    Err(e) => Message::Error(WireError::from_serve(&e)),
                },
            },
            Message::Stats => {
                let mut text = rt.stats().render_prometheus();
                self.request_ns.push_prometheus(
                    &mut text,
                    "etsc_net_request_ns",
                    "Node-side request service time per message kind, in nanoseconds.",
                );
                Message::StatsAck { text }
            }
            Message::MigrateOut { streams } => match rt.export_streams(&streams) {
                Ok(streams) => Message::MigrateStreams { streams },
                Err(e) => Message::Error(WireError::from_serve(&e)),
            },
            Message::MigrateIn { streams } => match rt.import_streams(&streams) {
                Ok(()) => Message::MigrateInAck {
                    accepted: streams.len() as u64,
                },
                Err(e) => Message::Error(WireError::from_serve(&e)),
            },
            Message::Shutdown => {
                // Graceful: drain everything in flight into the final
                // reply, then stop the node.
                let alarms = rt.drain();
                self.stop();
                return (Message::ShutdownAck { alarms }, true);
            }
            Message::Ping { token } => Message::Pong { token },
            Message::Trace => Message::TraceAck {
                // A node without a tracer answers with a complete, empty
                // Chrome trace document — absence of tracing is not an
                // error to a caller collecting cluster-wide traces.
                json: rt.export_trace("etsc-node"),
            },
            Message::StreamCount => Message::StreamCountAck {
                streams: rt.stream_count() as u64,
            },
            // A reply type arriving as a request is a protocol violation.
            other => Message::Error(WireError::Malformed(format!(
                "{} is a reply, not a request",
                other.name()
            ))),
        };
        (reply, false)
    }
}
