//! Per-message-kind latency instrumentation shared by [`Node`] and
//! [`NetClient`]: one log₂ [`Histogram`] per request kind, recorded
//! wait-free from connection threads, rendered as a single labelled
//! Prometheus family (`msg="Drain"`, `msg="Ping"`, …) through the shared
//! exposition helpers in [`etsc_core::metrics`].
//!
//! Timing only happens when the injected [`Clock`](etsc_core::metrics::Clock)
//! is enabled, and never influences replies — the distribution-invariance
//! contract of the crate holds with instrumentation on.
//!
//! [`Node`]: crate::Node
//! [`NetClient`]: crate::NetClient

use etsc_core::metrics::{push_histogram_series, Histogram, HistogramSnapshot};

use crate::wire::Message;

/// Request kinds a [`MessageTimings`] distinguishes, in slot order.
/// Reply types are not timed (they are never dispatched as requests).
pub const MSG_KINDS: [&str; 11] = [
    "OpenStream",
    "IngestBatch",
    "Drain",
    "Checkpoint",
    "Stats",
    "MigrateOut",
    "MigrateIn",
    "Shutdown",
    "Ping",
    "StreamCount",
    "Trace",
];

/// Pre-rendered `msg="…"` label for each slot, so the hot render path
/// never formats label strings.
const MSG_LABELS: [&str; 11] = [
    "msg=\"OpenStream\"",
    "msg=\"IngestBatch\"",
    "msg=\"Drain\"",
    "msg=\"Checkpoint\"",
    "msg=\"Stats\"",
    "msg=\"MigrateOut\"",
    "msg=\"MigrateIn\"",
    "msg=\"Shutdown\"",
    "msg=\"Ping\"",
    "msg=\"StreamCount\"",
    "msg=\"Trace\"",
];

/// One latency histogram per request kind. `&self` recording, so a node's
/// connection threads share one instance without coordination.
#[derive(Debug)]
pub struct MessageTimings {
    slots: [Histogram; MSG_KINDS.len()],
}

impl Default for MessageTimings {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageTimings {
    /// All-empty timings.
    pub fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Slot index for a *request* message, `None` for reply types.
    pub fn index_of(msg: &Message) -> Option<usize> {
        match msg {
            Message::OpenStream { .. } => Some(0),
            Message::IngestBatch { .. } => Some(1),
            Message::Drain => Some(2),
            Message::Checkpoint => Some(3),
            Message::Stats => Some(4),
            Message::MigrateOut { .. } => Some(5),
            Message::MigrateIn { .. } => Some(6),
            Message::Shutdown => Some(7),
            Message::Ping { .. } => Some(8),
            Message::StreamCount => Some(9),
            Message::Trace => Some(10),
            _ => None,
        }
    }

    /// Record `ns` into the slot picked earlier by [`index_of`]
    /// (out-of-range indices are ignored, never a panic).
    ///
    /// [`index_of`]: Self::index_of
    pub fn record(&self, slot: usize, ns: u64) {
        if let Some(h) = self.slots.get(slot) {
            h.record(ns);
        }
    }

    /// Snapshot every slot, labelled by kind name (empty slots included —
    /// callers filter if they only want observed kinds).
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        MSG_KINDS
            .iter()
            .zip(self.slots.iter())
            .map(|(&kind, h)| (kind, h.snapshot()))
            .collect()
    }

    /// Fold another timings snapshot set into `acc` (element-wise merge,
    /// associative and commutative — cluster aggregation over clients uses
    /// this). `acc` must be [`MSG_KINDS`]-shaped, e.g. from
    /// [`empty_snapshots`](Self::empty_snapshots).
    pub fn merge_into(
        acc: &mut [(&'static str, HistogramSnapshot)],
        other: &[(&'static str, HistogramSnapshot)],
    ) {
        for (a, o) in acc.iter_mut().zip(other.iter()) {
            // Kind-shaped sets share the default log2 layout by
            // construction; a layout mismatch skips the slot rather than
            // corrupting or panicking.
            let _ = a.1.merge(&o.1);
        }
    }

    /// A [`MSG_KINDS`]-shaped all-empty snapshot set, the identity for
    /// [`merge_into`](Self::merge_into).
    pub fn empty_snapshots() -> Vec<(&'static str, HistogramSnapshot)> {
        MSG_KINDS
            .iter()
            .map(|&kind| (kind, HistogramSnapshot::empty()))
            .collect()
    }

    /// Append this timing set as one labelled histogram family, one
    /// `msg="…"` series per kind that has at least one observation. A
    /// fully empty set still emits the family preamble (and nothing
    /// else), so scrapers see a stable metric universe.
    pub fn push_prometheus(&self, out: &mut String, name: &str, help: &str) {
        let snaps = self.snapshots();
        push_snapshots_prometheus(out, name, help, &snaps);
    }
}

/// Render a [`MSG_KINDS`]-shaped snapshot set (from
/// [`MessageTimings::snapshots`] or a [`merge_into`] fold) as one
/// labelled histogram family, skipping kinds with no observations.
///
/// [`merge_into`]: MessageTimings::merge_into
pub fn push_snapshots_prometheus(
    out: &mut String,
    name: &str,
    help: &str,
    snaps: &[(&'static str, HistogramSnapshot)],
) {
    let series: Vec<(&str, &HistogramSnapshot)> = snaps
        .iter()
        .enumerate()
        .filter(|(_, (_, s))| s.count() > 0)
        .map(|(i, (_, s))| (*MSG_LABELS.get(i).unwrap_or(&""), s))
        .collect();
    push_histogram_series(out, name, help, &series);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_kind_maps_to_its_slot_and_replies_map_to_none() {
        let reqs = [
            Message::OpenStream { stream: 1 },
            Message::IngestBatch {
                client: 0,
                seq: 0,
                records: vec![],
                ctx: None,
            },
            Message::Drain,
            Message::Checkpoint,
            Message::Stats,
            Message::MigrateOut { streams: vec![] },
            Message::MigrateIn { streams: vec![] },
            Message::Shutdown,
            Message::Ping { token: 9 },
            Message::StreamCount,
            Message::Trace,
        ];
        for (i, msg) in reqs.iter().enumerate() {
            assert_eq!(MessageTimings::index_of(msg), Some(i), "{}", msg.name());
            assert_eq!(msg.name(), MSG_KINDS[i], "slot order matches names");
        }
        assert_eq!(
            MessageTimings::index_of(&Message::Pong { token: 9 }),
            None,
            "replies are not timed"
        );
    }

    #[test]
    fn recording_is_per_slot_and_out_of_range_is_ignored() {
        let t = MessageTimings::new();
        t.record(2, 1_000);
        t.record(2, 3_000);
        t.record(8, 50);
        t.record(usize::MAX, 7); // silently dropped
        let snaps = t.snapshots();
        assert_eq!(snaps[2].1.count(), 2);
        assert_eq!(snaps[8].1.count(), 1);
        assert_eq!(snaps.iter().map(|(_, s)| s.count()).sum::<u64>(), 3);
    }

    #[test]
    fn exposition_labels_only_observed_kinds() {
        let t = MessageTimings::new();
        t.record(2, 1_000);
        t.record(8, 50);
        let mut out = String::new();
        t.push_prometheus(&mut out, "etsc_net_request_ns", "Service time.");
        assert_eq!(
            out.matches("# TYPE etsc_net_request_ns histogram").count(),
            1
        );
        assert!(out.contains("etsc_net_request_ns_count{msg=\"Drain\"} 1"));
        assert!(out.contains("etsc_net_request_ns_count{msg=\"Ping\"} 1"));
        assert!(!out.contains("msg=\"Stats\""), "unobserved kind skipped");
    }

    #[test]
    fn merge_into_folds_kindwise() {
        let a = MessageTimings::new();
        a.record(2, 100);
        let b = MessageTimings::new();
        b.record(2, 200);
        b.record(8, 7);
        let mut acc = MessageTimings::empty_snapshots();
        MessageTimings::merge_into(&mut acc, &a.snapshots());
        MessageTimings::merge_into(&mut acc, &b.snapshots());
        assert_eq!(acc[2].1.count(), 2);
        assert_eq!(acc[2].1.sum, 300);
        assert_eq!(acc[8].1.count(), 1);
    }
}
