//! The cluster layer: many nodes behind one client-side router.
//!
//! [`ClusterRouter`] places stream ids on node endpoints with consistent
//! hashing — each endpoint contributes [`ClusterRouter::REPLICAS`] virtual
//! points on a 64-bit FNV-1a ring, and a stream belongs to the first point
//! clockwise of its hashed id. Consistent hashing is the cluster-level
//! analogue of `etsc-serve`'s [`ShardRouter`](etsc_serve::ShardRouter):
//! where the in-process router may remap everything on a shard-count
//! change (streams are cheap to move between shards of one process), the
//! ring keeps cross-**node** movement minimal, because moving a stream
//! between machines costs a snapshot round-trip.
//!
//! [`Cluster`] adds the data path on top: it routes every request to the
//! owning node's [`NetClient`], merges drains deterministically, and moves
//! live streams between nodes with the same two-phase snapshot/restore
//! discipline the in-process rebalance uses — on any failure the streams
//! are restored to their source node and the routing topology is left
//! untouched.

use std::collections::{BTreeMap, BTreeSet};

use etsc_core::hash;
use etsc_core::metrics::{push_histogram, HistogramSnapshot};
use etsc_core::trace::{EventKind, Severity, SpanKind, TraceContext, Tracer};
use etsc_serve::stats::{push_counter, push_gauge};
use etsc_serve::{Record, StreamAlarm, StreamService};

use crate::client::{ClientConfig, NetClient};
use crate::error::WireError;
use crate::metrics::MessageTimings;
use crate::retry::RetryStats;
use crate::supervisor::FailoverReport;
use crate::transport::Endpoint;

/// Client-side consistent-hash placement of streams onto node endpoints.
#[derive(Debug, Clone)]
pub struct ClusterRouter {
    endpoints: Vec<Endpoint>,
    /// `(ring position, node index)`, sorted by position.
    points: Vec<(u64, usize)>,
    /// Streams pinned to a specific node by an explicit migration; these
    /// win over the ring.
    overrides: BTreeMap<u64, usize>,
    /// Nodes declared dead; the ring walks past their points and pins to
    /// them are ignored until [`set_up`](Self::set_up).
    down: BTreeSet<usize>,
}

impl ClusterRouter {
    /// Virtual points each endpoint contributes to the ring. More points
    /// smooth the load split between nodes.
    pub const REPLICAS: usize = 128;

    /// Build a router over `endpoints` (at least one).
    pub fn new(endpoints: Vec<Endpoint>) -> Result<Self, WireError> {
        if endpoints.is_empty() {
            return Err(WireError::RemoteBadConfig(
                "a cluster needs at least one endpoint".to_string(),
            ));
        }
        let mut points = Vec::with_capacity(endpoints.len() * Self::REPLICAS);
        for (i, ep) in endpoints.iter().enumerate() {
            // Seed the ring position with the endpoint identity, fold in
            // the replica number, then avalanche: raw FNV positions of
            // near-identical endpoint strings correlate, which skews the
            // ring's arcs badly.
            let base = hash::fnv1a_64(ep.to_string().as_bytes());
            for replica in 0..Self::REPLICAS {
                let pos = hash::mix64(hash::fnv1a_64_with(base, &(replica as u64).to_le_bytes()));
                points.push((pos, i));
            }
        }
        points.sort_unstable();
        Ok(Self {
            endpoints,
            points,
            overrides: BTreeMap::new(),
            down: BTreeSet::new(),
        })
    }

    /// The endpoints this router places streams onto.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Node index that owns `stream` right now: a pin to a live node wins,
    /// then the ring (skipping down nodes).
    pub fn route(&self, stream: u64) -> usize {
        if let Some(&node) = self.overrides.get(&stream) {
            if !self.down.contains(&node) {
                return node;
            }
        }
        self.ring_route(stream)
    }

    /// Node index the ring alone assigns (ignoring overrides): the first
    /// point at or clockwise of the stream's hashed key whose node is not
    /// down. Every router with the same endpoints and the same down set
    /// computes the same placement — which is what lets two supervisors
    /// that independently declared a node dead converge on identical
    /// failover targets.
    pub fn ring_route(&self, stream: u64) -> usize {
        let key = hash::mix64(hash::fnv1a_u64(stream));
        // First ring point at or clockwise of the key, wrapping at the top.
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        let n = self.points.len();
        // One full wrap-around pass from `start`, panic-free by shape: the
        // cycle is only sampled `n` consecutive points.
        for &(_, node) in self.points.iter().cycle().skip(start).take(n) {
            if !self.down.contains(&node) {
                return node;
            }
        }
        // Every node is down; fall back to the raw ring choice so routing
        // stays total (the request will fail with a transport error).
        self.points.get(start % n.max(1)).map_or(0, |p| p.1)
    }

    /// Declare `node` dead: the ring walks past its points, and pins to it
    /// are bypassed. Idempotent.
    pub fn set_down(&mut self, node: usize) {
        self.down.insert(node);
    }

    /// Declare `node` live again (e.g. after an operator replaced it).
    pub fn set_up(&mut self, node: usize) {
        self.down.remove(&node);
    }

    /// True if `node` is currently declared dead.
    pub fn is_down(&self, node: usize) -> bool {
        self.down.contains(&node)
    }

    /// Nodes currently declared dead, ascending.
    pub fn down_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.down.iter().copied()
    }

    /// Pin `stream` to `node`, overriding the ring (what a completed
    /// migration records). A pin matching the ring assignment is dropped.
    pub fn pin(&mut self, stream: u64, node: usize) {
        if self.ring_route(stream) == node {
            self.overrides.remove(&stream);
        } else {
            self.overrides.insert(stream, node);
        }
    }

    /// Streams currently pinned off their ring position.
    pub fn pinned(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.overrides.iter().map(|(&s, &n)| (s, n))
    }
}

/// A sub-batch whose send failed; held for redelivery (same client, same
/// sequence number) or for the failover decision if its node dies first.
struct PendingBatch {
    node: usize,
    /// Batch sequence number the node-side dedup cursor will see when this
    /// is redelivered (recorded at stash time; the client's sequence only
    /// advances on success, so redelivery reuses it).
    seq: u64,
    records: Vec<Record>,
    /// Trace context the batch was travelling under when it was stashed,
    /// so redelivery stays inside the original trace instead of orphaning
    /// the downstream spans.
    ctx: Option<TraceContext>,
}

/// A connected cluster: one [`NetClient`] per node plus the router that
/// decides which node serves which stream.
///
/// # Failure handling
///
/// Each client runs the configured retry policy. With a nonzero
/// [`ClientConfig::client_id`] every client gets a distinct id (the
/// configured base plus the node index), so ingest batches carry
/// idempotency tags and transport faults during ingest retry safely. A
/// sub-batch that still fails is stashed and redelivered by the next
/// [`ingest`](Cluster::ingest) call — **do not re-submit a failed batch
/// yourself**; the stash already owns its delivery, and a manual
/// re-submission would mint fresh sequence numbers and duplicate records.
/// When a [`Supervisor`](crate::Supervisor) declares a node dead,
/// [`apply_failover`](Cluster::apply_failover) re-routes what the dead
/// node's checkpoint did not cover and drops what it did.
pub struct Cluster {
    router: ClusterRouter,
    clients: Vec<NetClient>,
    pending: Vec<PendingBatch>,
    /// Alarms already pulled off some node by a [`drain`](Cluster::drain)
    /// whose merge then failed on another node. They left the remote
    /// runtime, so dropping them would lose them; they are held here and
    /// returned by the next successful drain instead.
    drained: Vec<StreamAlarm>,
    failovers: u64,
    /// The cluster-side tracer (shared with every client via the cloned
    /// [`ClientConfig`]); `None` runs fully untraced.
    tracer: Option<Tracer>,
    /// `(trace_id, root span id)` of the most recent traced ingest —
    /// migration and failover-redelivery spans parent here, so cross-node
    /// topology changes show up inside the trace of the ingest they
    /// affected.
    last_trace: Option<(u64, u64)>,
}

impl Cluster {
    /// Dial every endpoint with the default [`ClientConfig`].
    pub fn connect(endpoints: &[Endpoint]) -> Result<Self, WireError> {
        Self::connect_with(endpoints, ClientConfig::default())
    }

    /// Dial every endpoint. A nonzero
    /// [`client_id`](ClientConfig::client_id) acts as a base: node `i`'s
    /// client is tagged `base + i`, so every client in this cluster dedups
    /// independently. Zero (the default) leaves ingest untagged. An id
    /// names a client *incarnation*: the nodes remember the highest batch
    /// seq applied per id across checkpoints, so a rebuilt cluster must
    /// use a fresh base — reusing one would make its restarted sequence
    /// numbers look like duplicates. Give concurrent drivers of the same
    /// nodes disjoint bases too.
    pub fn connect_with(endpoints: &[Endpoint], cfg: ClientConfig) -> Result<Self, WireError> {
        let router = ClusterRouter::new(endpoints.to_vec())?;
        let clients = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let mut node_cfg = cfg.clone();
                if cfg.client_id != 0 {
                    node_cfg.client_id = cfg.client_id + i as u64;
                }
                NetClient::connect_with(ep, node_cfg)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            router,
            clients,
            pending: Vec::new(),
            drained: Vec::new(),
            failovers: 0,
            tracer: cfg.tracer,
            last_trace: None,
        })
    }

    /// The cluster-side tracer, if one was configured.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The routing table (to inspect placement and pins).
    pub fn router(&self) -> &ClusterRouter {
        &self.router
    }

    /// Mutable access to the routing table.
    ///
    /// Pins normally appear as a side effect of [`Cluster::migrate`], but a
    /// *rebuilt* client — e.g. one reconnecting after a node was replaced —
    /// has a fresh ring and no memory of past migrations. Until its pins
    /// are re-seeded with [`ClusterRouter::pin`] to where the recovered
    /// topology actually holds each stream, the ring would route ingests to
    /// whatever node it hashes to, auto-opening fresh monitors away from
    /// the stream's real state.
    pub fn router_mut(&mut self) -> &mut ClusterRouter {
        &mut self.router
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.clients.len()
    }

    /// Direct access to one node's client (for per-node operations like
    /// stats or checkpoints). Index-style accessor: panics if `node >=
    /// self.nodes()`, exactly like slice indexing.
    pub fn client(&mut self, node: usize) -> &mut NetClient {
        self.node_client(node)
    }

    /// The client a routing decision resolved to.
    ///
    /// Every node index used internally is either produced by
    /// [`ClusterRouter::route`] (whose ring points and pins only name
    /// nodes of this cluster; failover reports are validated before their
    /// targets are pinned) or validated at the public boundary, so the
    /// index is in bounds by construction.
    fn node_client(&mut self, node: usize) -> &mut NetClient {
        // lint: allow(panic-freedom, node index is router-produced or boundary-validated — in bounds by construction, see doc comment)
        &mut self.clients[node]
    }

    /// Open `stream` on the node the router assigns it to.
    pub fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        let node = self.router.route(stream);
        self.node_client(node).open_stream(stream)
    }

    /// Route a batch to its owning nodes. Records keep their relative
    /// order within each node's sub-batch, so per-stream ingest order is
    /// preserved (every record of one stream goes to one node).
    ///
    /// Previously failed sub-batches are redelivered first (FIFO per
    /// node, so per-stream order survives an outage). Then each of this
    /// batch's sub-batches is sent to its node — every node is attempted
    /// even when one fails, so a flaky node cannot starve the others. A
    /// sub-batch that fails (after the client's own retries) is stashed
    /// for the next call; the first error is returned. **On error, do not
    /// re-submit the batch** — its failed records are already queued
    /// internally and will be redelivered exactly once (or re-routed /
    /// dropped by [`apply_failover`](Self::apply_failover) if their node
    /// is declared dead).
    pub fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        // With a live tracer, every cluster ingest opens one trace: a
        // ClientIngest root, one ClientSend child per node-bound
        // sub-batch, and whatever the nodes add downstream. The root's id
        // pair is remembered so later migrations and failover
        // redeliveries can join the same trace.
        let root = match self.tracer.as_ref().filter(|t| t.enabled()) {
            Some(t) => {
                let tracer = t.clone();
                let trace_id = tracer.new_trace_id();
                let span_id = tracer.alloc_span_id();
                let started = tracer.start();
                self.last_trace = Some((trace_id, span_id));
                Some((tracer, trace_id, span_id, started))
            }
            None => None,
        };
        let ctx = root.as_ref().map(|(_, trace_id, span_id, _)| TraceContext {
            trace_id: *trace_id,
            parent_span: *span_id,
        });
        let result = self.ingest_fanout(batch, ctx);
        if let Some((tracer, trace_id, span_id, started)) = root {
            tracer.span_with_id(
                span_id,
                SpanKind::ClientIngest,
                trace_id,
                0,
                started,
                batch.len() as u64,
            );
        }
        result
    }

    /// The routing fan-out behind [`ingest`](Self::ingest): route each
    /// record to its owning node and send per-node sub-batches under
    /// `ctx` (each send gets its own `ClientSend` span parented to
    /// `ctx.parent_span` when tracing is live). Failover redelivery calls
    /// this directly with a `Redelivery` span as the parent, so
    /// redelivered records stay inside the trace they started in.
    fn ingest_fanout(
        &mut self,
        batch: &[Record],
        ctx: Option<TraceContext>,
    ) -> Result<(), WireError> {
        let mut first_err = self.flush_pending().err();
        let mut per_node: BTreeMap<usize, Vec<Record>> = BTreeMap::new();
        for r in batch {
            per_node
                .entry(self.router.route(r.stream))
                .or_default()
                .push(*r);
        }
        let tracer = self.tracer.as_ref().filter(|t| t.enabled()).cloned();
        for (node, records) in per_node {
            // A node with batches still stuck in the stash must not be
            // sent newer records ahead of them. The stashed batch keeps
            // the root-parented context (no ClientSend span — nothing was
            // sent yet).
            let queued_ahead = self.pending.iter().filter(|p| p.node == node).count() as u64;
            if queued_ahead > 0 {
                let seq = self.node_client(node).next_batch_seq() + queued_ahead;
                self.pending.push(PendingBatch {
                    node,
                    seq,
                    records,
                    ctx,
                });
                continue;
            }
            let send = match (&tracer, ctx) {
                (Some(t), Some(ctx)) => {
                    let id = t.alloc_span_id();
                    Some((t.clone(), ctx, id, t.start()))
                }
                _ => None,
            };
            let send_ctx = match &send {
                Some((_, ctx, id, _)) => Some(TraceContext {
                    trace_id: ctx.trace_id,
                    parent_span: *id,
                }),
                None => ctx,
            };
            let seq = self.node_client(node).next_batch_seq();
            let outcome = self.node_client(node).ingest_ctx(&records, send_ctx);
            if let Some((t, ctx, id, started)) = send {
                t.span_with_id(
                    id,
                    SpanKind::ClientSend,
                    ctx.trace_id,
                    ctx.parent_span,
                    started,
                    node as u64,
                );
            }
            if let Err(e) = outcome {
                self.pending.push(PendingBatch {
                    node,
                    seq,
                    records,
                    ctx: send_ctx,
                });
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Redeliver stashed sub-batches, FIFO per node. A node that fails
    /// again keeps its remaining batches queued (order preservation);
    /// other nodes keep flushing. Down nodes are left for
    /// [`apply_failover`](Self::apply_failover).
    fn flush_pending(&mut self) -> Result<(), WireError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut stuck: BTreeSet<usize> = BTreeSet::new();
        let mut first_err = None;
        let mut remaining = Vec::new();
        for p in std::mem::take(&mut self.pending) {
            if stuck.contains(&p.node) || self.router.is_down(p.node) {
                remaining.push(p);
                continue;
            }
            match self.node_client(p.node).ingest_ctx(&p.records, p.ctx) {
                Ok(()) => {}
                Err(e) => {
                    stuck.insert(p.node);
                    first_err.get_or_insert(e);
                    remaining.push(p);
                }
            }
        }
        self.pending = remaining;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Sub-batches currently stashed for redelivery.
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Completed failovers applied to this cluster.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Adopt a [`Supervisor`](crate::Supervisor) failover: mark the dead
    /// node down, pin its streams to the survivors that imported them, and
    /// settle the dead node's stashed sub-batches — a batch the recovered
    /// checkpoint already covers (its sequence number is at or behind the
    /// recovered ingest cursor) is dropped, because its records live on in
    /// the failed-over streams and redelivering them would duplicate;
    /// anything past the cursor is re-ingested through the new routing
    /// with fresh tags.
    pub fn apply_failover(&mut self, report: &FailoverReport) -> Result<(), WireError> {
        // Validate the report before mutating anything: a report naming
        // nodes this cluster does not have is refused whole, so routing
        // never pins a stream to a nonexistent client.
        let nodes = self.clients.len();
        if report.node >= nodes {
            return Err(WireError::RemoteBadConfig(format!(
                "failover report declares node {} dead, but the cluster has {nodes} node(s)",
                report.node
            )));
        }
        if let Some(&(stream, target)) = report.moved.iter().find(|&&(_, t)| t >= nodes) {
            return Err(WireError::RemoteBadConfig(format!(
                "failover report moves stream {stream} to node {target}, but the cluster has \
                 {nodes} node(s)"
            )));
        }
        self.router.set_down(report.node);
        for &(stream, target) in &report.moved {
            self.router.pin(stream, target);
        }
        let (dead, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|p| p.node == report.node);
        self.pending = keep;
        let client_id = self.node_client(report.node).client_id();
        let cursor = report.cursors.get(&client_id).copied().unwrap_or(0);
        let tracer = self.tracer.as_ref().filter(|t| t.enabled()).cloned();
        for p in dead {
            if p.seq <= cursor {
                continue;
            }
            // Redeliver inside the trace the batch started in (falling
            // back to the most recent traced ingest): a Redelivery span
            // under the root, with the re-routed sends as its children.
            let trace = p
                .ctx
                .map(|c| (c.trace_id, c.parent_span))
                .or(self.last_trace);
            match (&tracer, trace) {
                (Some(t), Some((trace_id, parent))) => {
                    let id = t.alloc_span_id();
                    let started = t.start();
                    let res = self.ingest_fanout(
                        &p.records,
                        Some(TraceContext {
                            trace_id,
                            parent_span: id,
                        }),
                    );
                    t.span_with_id(
                        id,
                        SpanKind::Redelivery,
                        trace_id,
                        parent,
                        started,
                        p.records.len() as u64,
                    );
                    res?;
                }
                _ => self.ingest_fanout(&p.records, None)?,
            }
        }
        self.failovers += 1;
        Ok(())
    }

    /// Aggregate resilience counters — every client's
    /// [`RetryStats`](crate::RetryStats) plus cluster-level failover and
    /// stash gauges — and every client's latency histograms (per-kind
    /// request RTT and retry-backoff delays, merged across clients — the
    /// merge is associative and commutative, so client order is
    /// irrelevant) in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut agg = RetryStats::default();
        for c in &self.clients {
            agg.merge(&c.retry_stats());
        }
        let mut out = agg.render_prometheus();
        push_counter(
            &mut out,
            "etsc_net_failovers_total",
            "Failovers applied to the cluster's routing.",
            self.failovers,
        );
        push_gauge(
            &mut out,
            "etsc_net_nodes_down",
            "Nodes currently declared dead.",
            self.router.down_nodes().count() as u64,
        );
        push_gauge(
            &mut out,
            "etsc_net_pending_batches",
            "Sub-batches stashed for redelivery.",
            self.pending.len() as u64,
        );
        let mut rtt = MessageTimings::empty_snapshots();
        let mut backoff = HistogramSnapshot::empty();
        for c in &self.clients {
            MessageTimings::merge_into(&mut rtt, &c.rtt_timings().snapshots());
            // Same-layout by construction (both sides are default log2);
            // a mismatch would only skip the aggregation, never panic.
            let _ = backoff.merge(&c.backoff_snapshot());
        }
        crate::metrics::push_snapshots_prometheus(
            &mut out,
            "etsc_net_client_rtt_ns",
            "Client-side request round-trip time per message kind, merged across the \
             cluster's clients, in nanoseconds.",
            &rtt,
        );
        push_histogram(
            &mut out,
            "etsc_net_backoff_ns",
            "Scheduled retry-backoff delays across the cluster's clients, in nanoseconds.",
            &backoff,
        );
        out
    }

    /// Drain every node and merge the alarms.
    ///
    /// Per-node drains arrive ordered by that node's global ingest
    /// sequence; sequence numbers are **not** comparable across nodes, so
    /// the merged list is sorted by `(stream, alarm.time)` — the
    /// per-stream clock every runtime agrees on. Within one stream this
    /// equals the single-process order; across streams it is a
    /// deterministic interleaving.
    ///
    /// Lossless under failure: a remote drain is destructive, so alarms
    /// pulled off one node before another node's drain fails are buffered
    /// rather than dropped. On an error, retry — the next successful call
    /// returns the buffered alarms merged with everything newly drained.
    pub fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let mut first_err = None;
        for (i, client) in self.clients.iter_mut().enumerate() {
            if self.router.is_down(i) {
                continue;
            }
            match client.drain() {
                Ok(alarms) => self.drained.extend(alarms),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut merged = std::mem::take(&mut self.drained);
        merged.sort_by_key(|a| (a.stream, a.alarm.time));
        Ok(merged)
    }

    /// Live streams across all (live) nodes.
    pub fn stream_count(&mut self) -> Result<usize, WireError> {
        let mut total = 0;
        for (i, client) in self.clients.iter_mut().enumerate() {
            if self.router.is_down(i) {
                continue;
            }
            total += client.stream_count()?;
        }
        Ok(total)
    }

    /// Checkpoint every live node into its own registry; returns state
    /// sizes in bytes, in node order (down nodes skipped).
    pub fn checkpoint_all(&mut self) -> Result<Vec<u64>, WireError> {
        let mut sizes = Vec::new();
        for (i, client) in self.clients.iter_mut().enumerate() {
            if self.router.is_down(i) {
                continue;
            }
            sizes.push(client.checkpoint()?);
        }
        Ok(sizes)
    }

    /// Move live streams onto node `to`, two-phase:
    ///
    /// 1. **Export** — each source node snapshots and retires its subset
    ///    (atomic per node: an unknown id fails with nothing removed).
    /// 2. **Import** — node `to` adopts the snapshots (atomic: a corrupt
    ///    blob or duplicate id refuses the batch).
    ///
    /// On an import failure the exported streams are restored to their
    /// source nodes and the routing table is left untouched, so a failed
    /// migration never strands or double-serves a stream. Only after both
    /// phases succeed are the streams pinned to `to`.
    ///
    /// Streams already on `to` are skipped. The source nodes' queued
    /// records are drained (by the remote export) before the snapshot, so
    /// no queued work is lost; call [`Cluster::drain`] afterwards to
    /// collect any alarms that drain raised.
    pub fn migrate(&mut self, streams: &[u64], to: usize) -> Result<(), WireError> {
        if to >= self.clients.len() {
            return Err(WireError::RemoteBadConfig(format!(
                "migration target node {to} does not exist ({} nodes)",
                self.clients.len()
            )));
        }
        if self.router.is_down(to) {
            return Err(WireError::RemoteBadConfig(format!(
                "migration target node {to} is down"
            )));
        }
        let tracer = self.tracer.as_ref().filter(|t| t.enabled()).cloned();
        let trace_start = tracer.as_ref().map_or(0, |t| t.start());
        let mut moved = 0u64;
        let mut per_source: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for &s in streams {
            let from = self.router.route(s);
            if from != to {
                per_source.entry(from).or_default().push(s);
            }
        }
        for (from, ids) in per_source {
            let exported = self.node_client(from).migrate_out(&ids)?;
            if let Err(err) = self.node_client(to).migrate_in(&exported) {
                // Give the streams back to their source; the topology is
                // unchanged, so service resumes exactly where it was.
                self.node_client(from)
                    .migrate_in(&exported)
                    .map_err(|restore| {
                        WireError::RemotePersist(format!(
                            "migration to node {to} failed ({err}) and restoring {} stream(s) to \
                         node {from} also failed: {restore}",
                            exported.len()
                        ))
                    })?;
                return Err(err);
            }
            moved += ids.len() as u64;
            for id in ids {
                self.router.pin(id, to);
            }
        }
        if let Some(t) = &tracer {
            t.event(Severity::Info, EventKind::Migration, moved, to as u64);
            if let Some((trace_id, root)) = self.last_trace {
                t.span(SpanKind::Migration, trace_id, root, trace_start, moved);
            }
        }
        Ok(())
    }

    /// Fetch every live node's Chrome `trace_event` document, in node
    /// order (down nodes skipped). Nodes without a tracer contribute a
    /// complete empty document.
    pub fn fetch_traces(&mut self) -> Result<Vec<String>, WireError> {
        let mut docs = Vec::new();
        for i in 0..self.clients.len() {
            if self.router.is_down(i) {
                continue;
            }
            docs.push(self.node_client(i).fetch_trace()?);
        }
        Ok(docs)
    }
}

impl StreamService for Cluster {
    type Error = WireError;

    fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        Cluster::open_stream(self, stream)
    }

    fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        Cluster::ingest(self, batch)
    }

    fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        Cluster::drain(self)
    }

    fn stream_count(&mut self) -> Result<usize, WireError> {
        Cluster::stream_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| Endpoint::Tcp(format!("10.0.0.{i}:7431")))
            .collect()
    }

    #[test]
    fn ring_routing_is_deterministic_and_total() {
        let router = ClusterRouter::new(eps(3)).unwrap();
        for stream in 0..1000u64 {
            let a = router.route(stream);
            let b = router.route(stream);
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn ring_spreads_streams_across_nodes() {
        let router = ClusterRouter::new(eps(4)).unwrap();
        let mut counts = [0usize; 4];
        for stream in 0..4000u64 {
            counts[router.route(stream)] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(c > 200, "node {node} got only {c} of 4000 streams");
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_minority_of_streams() {
        let before = ClusterRouter::new(eps(4)).unwrap();
        let mut grown = eps(4);
        grown.push(Endpoint::Tcp("10.0.0.9:7431".to_string()));
        let after = ClusterRouter::new(grown).unwrap();
        let moved = (0..10_000u64)
            .filter(|&s| before.route(s) != after.route(s))
            .count();
        // Ideal is 1/5 = 2000; consistent hashing should stay well under a
        // full remap and every move should target the new node.
        assert!(moved < 5000, "{moved} of 10000 streams moved");
        for s in 0..10_000u64 {
            if before.route(s) != after.route(s) {
                assert_eq!(after.route(s), 4, "stream {s} moved to an old node");
            }
        }
    }

    #[test]
    fn pins_override_the_ring_and_self_clean() {
        let mut router = ClusterRouter::new(eps(3)).unwrap();
        let stream = 7;
        let home = router.route(stream);
        let away = (home + 1) % 3;
        router.pin(stream, away);
        assert_eq!(router.route(stream), away);
        assert_eq!(router.pinned().count(), 1);
        // Pinning back to the ring assignment clears the override.
        router.pin(stream, home);
        assert_eq!(router.route(stream), home);
        assert_eq!(router.pinned().count(), 0);
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        assert!(matches!(
            ClusterRouter::new(Vec::new()).unwrap_err(),
            WireError::RemoteBadConfig(_)
        ));
    }
}
