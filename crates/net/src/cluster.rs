//! The cluster layer: many nodes behind one client-side router.
//!
//! [`ClusterRouter`] places stream ids on node endpoints with consistent
//! hashing — each endpoint contributes [`ClusterRouter::REPLICAS`] virtual
//! points on a 64-bit FNV-1a ring, and a stream belongs to the first point
//! clockwise of its hashed id. Consistent hashing is the cluster-level
//! analogue of `etsc-serve`'s [`ShardRouter`](etsc_serve::ShardRouter):
//! where the in-process router may remap everything on a shard-count
//! change (streams are cheap to move between shards of one process), the
//! ring keeps cross-**node** movement minimal, because moving a stream
//! between machines costs a snapshot round-trip.
//!
//! [`Cluster`] adds the data path on top: it routes every request to the
//! owning node's [`NetClient`], merges drains deterministically, and moves
//! live streams between nodes with the same two-phase snapshot/restore
//! discipline the in-process rebalance uses — on any failure the streams
//! are restored to their source node and the routing topology is left
//! untouched.

use std::collections::BTreeMap;

use etsc_core::hash;
use etsc_serve::{Record, StreamAlarm, StreamService};

use crate::client::{ClientConfig, NetClient};
use crate::error::WireError;
use crate::transport::Endpoint;

/// Client-side consistent-hash placement of streams onto node endpoints.
#[derive(Debug, Clone)]
pub struct ClusterRouter {
    endpoints: Vec<Endpoint>,
    /// `(ring position, node index)`, sorted by position.
    points: Vec<(u64, usize)>,
    /// Streams pinned to a specific node by an explicit migration; these
    /// win over the ring.
    overrides: BTreeMap<u64, usize>,
}

impl ClusterRouter {
    /// Virtual points each endpoint contributes to the ring. More points
    /// smooth the load split between nodes.
    pub const REPLICAS: usize = 128;

    /// Build a router over `endpoints` (at least one).
    pub fn new(endpoints: Vec<Endpoint>) -> Result<Self, WireError> {
        if endpoints.is_empty() {
            return Err(WireError::RemoteBadConfig(
                "a cluster needs at least one endpoint".to_string(),
            ));
        }
        let mut points = Vec::with_capacity(endpoints.len() * Self::REPLICAS);
        for (i, ep) in endpoints.iter().enumerate() {
            // Seed the ring position with the endpoint identity, fold in
            // the replica number, then avalanche: raw FNV positions of
            // near-identical endpoint strings correlate, which skews the
            // ring's arcs badly.
            let base = hash::fnv1a_64(ep.to_string().as_bytes());
            for replica in 0..Self::REPLICAS {
                let pos = hash::mix64(hash::fnv1a_64_with(base, &(replica as u64).to_le_bytes()));
                points.push((pos, i));
            }
        }
        points.sort_unstable();
        Ok(Self {
            endpoints,
            points,
            overrides: BTreeMap::new(),
        })
    }

    /// The endpoints this router places streams onto.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Node index that owns `stream` right now (overrides first, then the
    /// ring).
    pub fn route(&self, stream: u64) -> usize {
        if let Some(&node) = self.overrides.get(&stream) {
            return node;
        }
        self.ring_route(stream)
    }

    /// Node index the ring alone assigns (ignoring overrides).
    pub fn ring_route(&self, stream: u64) -> usize {
        let key = hash::mix64(hash::fnv1a_u64(stream));
        // First ring point at or clockwise of the key, wrapping at the top.
        let i = self.points.partition_point(|&(pos, _)| pos < key);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// Pin `stream` to `node`, overriding the ring (what a completed
    /// migration records). A pin matching the ring assignment is dropped.
    pub fn pin(&mut self, stream: u64, node: usize) {
        if self.ring_route(stream) == node {
            self.overrides.remove(&stream);
        } else {
            self.overrides.insert(stream, node);
        }
    }

    /// Streams currently pinned off their ring position.
    pub fn pinned(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.overrides.iter().map(|(&s, &n)| (s, n))
    }
}

/// A connected cluster: one [`NetClient`] per node plus the router that
/// decides which node serves which stream.
pub struct Cluster {
    router: ClusterRouter,
    clients: Vec<NetClient>,
}

impl Cluster {
    /// Dial every endpoint with the default [`ClientConfig`].
    pub fn connect(endpoints: &[Endpoint]) -> Result<Self, WireError> {
        Self::connect_with(endpoints, ClientConfig::default())
    }

    /// Dial every endpoint.
    pub fn connect_with(endpoints: &[Endpoint], cfg: ClientConfig) -> Result<Self, WireError> {
        let router = ClusterRouter::new(endpoints.to_vec())?;
        let clients = endpoints
            .iter()
            .map(|ep| NetClient::connect_with(ep, cfg.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { router, clients })
    }

    /// The routing table (to inspect placement and pins).
    pub fn router(&self) -> &ClusterRouter {
        &self.router
    }

    /// Mutable access to the routing table.
    ///
    /// Pins normally appear as a side effect of [`Cluster::migrate`], but a
    /// *rebuilt* client — e.g. one reconnecting after a node was replaced —
    /// has a fresh ring and no memory of past migrations. Until its pins
    /// are re-seeded with [`ClusterRouter::pin`] to where the recovered
    /// topology actually holds each stream, the ring would route ingests to
    /// whatever node it hashes to, auto-opening fresh monitors away from
    /// the stream's real state.
    pub fn router_mut(&mut self) -> &mut ClusterRouter {
        &mut self.router
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.clients.len()
    }

    /// Direct access to one node's client (for per-node operations like
    /// stats or checkpoints).
    pub fn client(&mut self, node: usize) -> &mut NetClient {
        &mut self.clients[node]
    }

    /// Open `stream` on the node the router assigns it to.
    pub fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        let node = self.router.route(stream);
        self.clients[node].open_stream(stream)
    }

    /// Route a batch to its owning nodes. Records keep their relative
    /// order within each node's sub-batch, so per-stream ingest order is
    /// preserved (every record of one stream goes to one node).
    ///
    /// Sub-batches are sent node by node; a typed failure (e.g.
    /// [`WireError::QueueFull`]) aborts the remaining sends, and because a
    /// rejected sub-batch is atomic remotely, the caller can drain and
    /// retry the whole batch without duplicating any record: per-node
    /// sub-batches either landed completely or not at all.
    pub fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        let mut per_node: BTreeMap<usize, Vec<Record>> = BTreeMap::new();
        for r in batch {
            per_node
                .entry(self.router.route(r.stream))
                .or_default()
                .push(*r);
        }
        for (node, records) in per_node {
            self.clients[node].ingest(&records)?;
        }
        Ok(())
    }

    /// Drain every node and merge the alarms.
    ///
    /// Per-node drains arrive ordered by that node's global ingest
    /// sequence; sequence numbers are **not** comparable across nodes, so
    /// the merged list is sorted by `(stream, alarm.time)` — the
    /// per-stream clock every runtime agrees on. Within one stream this
    /// equals the single-process order; across streams it is a
    /// deterministic interleaving.
    pub fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let mut merged = Vec::new();
        for client in &mut self.clients {
            merged.extend(client.drain()?);
        }
        merged.sort_by_key(|a| (a.stream, a.alarm.time));
        Ok(merged)
    }

    /// Live streams across all nodes.
    pub fn stream_count(&mut self) -> Result<usize, WireError> {
        let mut total = 0;
        for client in &mut self.clients {
            total += client.stream_count()?;
        }
        Ok(total)
    }

    /// Checkpoint every node into its own registry; returns per-node state
    /// sizes in bytes.
    pub fn checkpoint_all(&mut self) -> Result<Vec<u64>, WireError> {
        self.clients.iter_mut().map(|c| c.checkpoint()).collect()
    }

    /// Move live streams onto node `to`, two-phase:
    ///
    /// 1. **Export** — each source node snapshots and retires its subset
    ///    (atomic per node: an unknown id fails with nothing removed).
    /// 2. **Import** — node `to` adopts the snapshots (atomic: a corrupt
    ///    blob or duplicate id refuses the batch).
    ///
    /// On an import failure the exported streams are restored to their
    /// source nodes and the routing table is left untouched, so a failed
    /// migration never strands or double-serves a stream. Only after both
    /// phases succeed are the streams pinned to `to`.
    ///
    /// Streams already on `to` are skipped. The source nodes' queued
    /// records are drained (by the remote export) before the snapshot, so
    /// no queued work is lost; call [`Cluster::drain`] afterwards to
    /// collect any alarms that drain raised.
    pub fn migrate(&mut self, streams: &[u64], to: usize) -> Result<(), WireError> {
        if to >= self.clients.len() {
            return Err(WireError::RemoteBadConfig(format!(
                "migration target node {to} does not exist ({} nodes)",
                self.clients.len()
            )));
        }
        let mut per_source: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for &s in streams {
            let from = self.router.route(s);
            if from != to {
                per_source.entry(from).or_default().push(s);
            }
        }
        for (from, ids) in per_source {
            let exported = self.clients[from].migrate_out(&ids)?;
            if let Err(err) = self.clients[to].migrate_in(&exported) {
                // Give the streams back to their source; the topology is
                // unchanged, so service resumes exactly where it was.
                self.clients[from]
                    .migrate_in(&exported)
                    .map_err(|restore| {
                        WireError::RemotePersist(format!(
                            "migration to node {to} failed ({err}) and restoring {} stream(s) to \
                         node {from} also failed: {restore}",
                            exported.len()
                        ))
                    })?;
                return Err(err);
            }
            for id in ids {
                self.router.pin(id, to);
            }
        }
        Ok(())
    }
}

impl StreamService for Cluster {
    type Error = WireError;

    fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        Cluster::open_stream(self, stream)
    }

    fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        Cluster::ingest(self, batch)
    }

    fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        Cluster::drain(self)
    }

    fn stream_count(&mut self) -> Result<usize, WireError> {
        Cluster::stream_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| Endpoint::Tcp(format!("10.0.0.{i}:7431")))
            .collect()
    }

    #[test]
    fn ring_routing_is_deterministic_and_total() {
        let router = ClusterRouter::new(eps(3)).unwrap();
        for stream in 0..1000u64 {
            let a = router.route(stream);
            let b = router.route(stream);
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn ring_spreads_streams_across_nodes() {
        let router = ClusterRouter::new(eps(4)).unwrap();
        let mut counts = [0usize; 4];
        for stream in 0..4000u64 {
            counts[router.route(stream)] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(c > 200, "node {node} got only {c} of 4000 streams");
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_minority_of_streams() {
        let before = ClusterRouter::new(eps(4)).unwrap();
        let mut grown = eps(4);
        grown.push(Endpoint::Tcp("10.0.0.9:7431".to_string()));
        let after = ClusterRouter::new(grown).unwrap();
        let moved = (0..10_000u64)
            .filter(|&s| before.route(s) != after.route(s))
            .count();
        // Ideal is 1/5 = 2000; consistent hashing should stay well under a
        // full remap and every move should target the new node.
        assert!(moved < 5000, "{moved} of 10000 streams moved");
        for s in 0..10_000u64 {
            if before.route(s) != after.route(s) {
                assert_eq!(after.route(s), 4, "stream {s} moved to an old node");
            }
        }
    }

    #[test]
    fn pins_override_the_ring_and_self_clean() {
        let mut router = ClusterRouter::new(eps(3)).unwrap();
        let stream = 7;
        let home = router.route(stream);
        let away = (home + 1) % 3;
        router.pin(stream, away);
        assert_eq!(router.route(stream), away);
        assert_eq!(router.pinned().count(), 1);
        // Pinning back to the ring assignment clears the override.
        router.pin(stream, home);
        assert_eq!(router.route(stream), home);
        assert_eq!(router.pinned().count(), 0);
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        assert!(matches!(
            ClusterRouter::new(Vec::new()).unwrap_err(),
            WireError::RemoteBadConfig(_)
        ));
    }
}
