//! Blocking transports the protocol runs over: TCP and (on Unix) Unix
//! domain sockets, behind one [`Endpoint`]/[`Listener`]/[`Conn`] surface.
//!
//! Everything here is `std::net`/`std::os::unix::net` — no async runtime.
//! Listeners are nonblocking so an accept loop can poll a shutdown flag;
//! accepted and dialed connections are switched back to blocking with a
//! read timeout, which is what lets [`read_frame`](crate::wire::read_frame)
//! observe stop conditions instead of parking forever on a silent peer.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

use crate::error::WireError;
use crate::fault::FaultInjector;

/// Where a node listens, and what a client dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `"127.0.0.1:7431"`. Port 0 asks the OS
    /// for a free port; [`Listener::local_endpoint`] reports the result.
    Tcp(String),
    /// A Unix domain socket path (Unix targets only).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound, nonblocking listener for either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Bind `endpoint` and switch the listener nonblocking (so accept
    /// loops can poll a stop flag between [`Listener::poll_accept`] calls).
    pub fn bind(endpoint: &Endpoint) -> Result<Listener, WireError> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A previous run's socket file would make bind fail with
                // AddrInUse; a stale path is only removed if nothing
                // answers on it.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l))
            }
        }
    }

    /// The endpoint this listener is actually bound to (resolves port 0).
    pub fn local_endpoint(&self) -> Result<Endpoint, WireError> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| WireError::Io("unnamed unix socket".to_string()))?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }

    /// Try to accept one connection without blocking. `Ok(None)` means no
    /// connection is pending right now. An accepted connection is switched
    /// back to blocking mode with `read_timeout` applied.
    pub fn poll_accept(&self, read_timeout: Duration) -> Result<Option<Conn>, WireError> {
        let inner = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(ConnInner::Tcp(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e.into()),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Some(ConnInner::Unix(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e.into()),
            },
        };
        let conn = inner.map(|inner| Conn {
            inner,
            faults: None,
        });
        if let Some(c) = &conn {
            c.prepare(read_timeout)?;
        }
        Ok(conn)
    }
}

/// The raw socket under a [`Conn`].
enum ConnInner {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// One established connection on either transport, optionally filtered
/// through a [`FaultInjector`] (dialed connections only — accepted ones
/// are always fault-free; faults model the *client's* view of a flaky
/// network).
pub struct Conn {
    inner: ConnInner,
    faults: Option<FaultInjector>,
}

impl Conn {
    /// Dial `endpoint` and apply `read_timeout`.
    pub fn connect(endpoint: &Endpoint, read_timeout: Duration) -> Result<Conn, WireError> {
        Conn::connect_with_faults(endpoint, read_timeout, None)
    }

    /// Dial `endpoint` with an optional fault injector interposed on the
    /// resulting connection (and on the dial itself — a scripted
    /// [`RefuseConnect`](crate::fault::Fault::RefuseConnect) fails here
    /// without touching the network).
    pub fn connect_with_faults(
        endpoint: &Endpoint,
        read_timeout: Duration,
        faults: Option<FaultInjector>,
    ) -> Result<Conn, WireError> {
        if let Some(inj) = &faults {
            inj.on_connect()?;
        }
        let inner = match endpoint {
            Endpoint::Tcp(addr) => ConnInner::Tcp(TcpStream::connect(addr)?),
            #[cfg(unix)]
            Endpoint::Unix(path) => ConnInner::Unix(UnixStream::connect(path)?),
        };
        let conn = Conn { inner, faults };
        conn.prepare(read_timeout)?;
        Ok(conn)
    }

    /// Put the connection in blocking mode with a read timeout, and turn
    /// off Nagle for TCP (frames are small request/reply units; batching
    /// them behind delayed ACKs would serialize every RTT).
    fn prepare(&self, read_timeout: Duration) -> Result<(), WireError> {
        let timeout = if read_timeout.is_zero() {
            None
        } else {
            Some(read_timeout)
        };
        match &self.inner {
            ConnInner::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(timeout)?;
            }
            #[cfg(unix)]
            ConnInner::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)?;
            }
        }
        Ok(())
    }

    /// Shut down the write half, signalling a clean end-of-stream to the
    /// peer. Errors are ignored — the peer may already be gone.
    pub fn shutdown(&self) {
        match &self.inner {
            ConnInner::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            ConnInner::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for ConnInner {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnInner::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ConnInner::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ConnInner {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnInner::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ConnInner::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnInner::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ConnInner::Unix(s) => s.flush(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match &self.faults {
            Some(inj) => inj.read(&mut self.inner, buf),
            None => self.inner.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &self.faults {
            Some(inj) => inj.write(&mut self.inner, buf),
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}
