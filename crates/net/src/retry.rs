//! Retry policy and counters for the resilient client.
//!
//! The policy is deliberately small: a bounded attempt count and a capped
//! exponential backoff with **deterministic** jitter (the in-workspace
//! `rand` shim seeded from the policy, never from a clock), so two runs of
//! the same test sleep the same schedule. What is retried — and when a
//! reconnect happens first — is decided by
//! [`WireError`](crate::WireError)'s classification methods
//! ([`is_retryable`](crate::WireError::is_retryable),
//! [`needs_reconnect`](crate::WireError::needs_reconnect)) inside
//! [`NetClient`](crate::NetClient); a server-supplied
//! [`retry_after`](crate::WireError::retry_after) hint overrides the
//! computed backoff for that attempt.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;

use etsc_serve::stats::push_counter;

/// When and how often a [`NetClient`](crate::NetClient) retries a failed
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, the first included (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Backoff ceiling (the exponential is capped here).
    pub max_delay: Duration,
    /// Seed for the jitter stream (each delay is scaled by a deterministic
    /// factor in `[0.5, 1.0)` to de-synchronize clients that share a
    /// policy).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            jitter_seed: 0x9E37,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — requests fail on first error, exactly
    /// the pre-retry client behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (0-based), jittered by
    /// `rng`: `min(max_delay, base_delay · 2^retry)` scaled by a factor in
    /// `[0.5, 1.0)`.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry.min(16)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        exp.mul_f64(0.5 + 0.5 * rng.random::<f64>())
    }
}

/// Resilience counters for one client (aggregated across a
/// [`Cluster`](crate::Cluster)'s clients by
/// [`Cluster::render_prometheus`](crate::Cluster::render_prometheus)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests re-sent after a retryable failure.
    pub retries: u64,
    /// Successful transport re-establishments.
    pub reconnects: u64,
    /// Ingest acks reporting the batch was a duplicate the node had
    /// already applied (each one is an ack lost in transit that dedup
    /// absorbed).
    pub duplicate_acks: u64,
    /// Requests that exhausted every attempt and surfaced their error.
    pub giveups: u64,
}

impl RetryStats {
    /// Fold another stats snapshot into this one.
    pub fn merge(&mut self, other: &RetryStats) {
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.duplicate_acks += other.duplicate_acks;
        self.giveups += other.giveups;
    }

    /// Render these counters in Prometheus text exposition format (same
    /// conventions as the serving runtime's metrics; see
    /// [`ServeStats::render_prometheus`](etsc_serve::ServeStats::render_prometheus)).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        push_counter(
            &mut out,
            "etsc_net_retries_total",
            "Requests re-sent after a retryable failure.",
            self.retries,
        );
        push_counter(
            &mut out,
            "etsc_net_reconnects_total",
            "Successful transport re-establishments.",
            self.reconnects,
        );
        push_counter(
            &mut out,
            "etsc_net_duplicate_acks_total",
            "Ingest acks reporting an already-applied duplicate batch.",
            self.duplicate_acks,
        );
        push_counter(
            &mut out,
            "etsc_net_giveups_total",
            "Requests that exhausted every retry attempt.",
            self.giveups,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::default();
        // Jitter scales by [0.5, 1.0): bound each delay by its nominal
        // exponential window instead of pinning exact values.
        let mut rng = StdRng::seed_from_u64(1);
        for retry in 0..8 {
            let nominal = policy
                .base_delay
                .saturating_mul(1 << retry)
                .min(policy.max_delay);
            let d = policy.backoff(retry, &mut rng);
            assert!(d >= nominal.mul_f64(0.5), "retry {retry}: {d:?} too small");
            assert!(d <= nominal, "retry {retry}: {d:?} exceeds nominal");
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(policy.backoff(40, &mut rng) <= policy.max_delay, "capped");
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.jitter_seed);
        let mut b = StdRng::seed_from_u64(policy.jitter_seed);
        let xs: Vec<Duration> = (0..6).map(|r| policy.backoff(r, &mut a)).collect();
        let ys: Vec<Duration> = (0..6).map(|r| policy.backoff(r, &mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn none_policy_is_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn stats_merge_and_render() {
        let mut a = RetryStats {
            retries: 2,
            reconnects: 1,
            duplicate_acks: 1,
            giveups: 0,
        };
        a.merge(&RetryStats {
            retries: 1,
            reconnects: 0,
            duplicate_acks: 0,
            giveups: 3,
        });
        let text = a.render_prometheus();
        assert!(text.contains("etsc_net_retries_total 3"));
        assert!(text.contains("etsc_net_reconnects_total 1"));
        assert!(text.contains("etsc_net_duplicate_acks_total 1"));
        assert!(text.contains("etsc_net_giveups_total 3"));
    }
}
