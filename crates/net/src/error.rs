//! The wire layer's typed error surface.
//!
//! The protocol's contract mirrors the in-process runtime's: nothing in the
//! framing, transport, or request path panics, hangs, or silently drops — a
//! truncated frame, a bad checksum, a full queue on the remote node, a
//! missing model during a remote recovery all surface as a [`WireError`]
//! variant precise enough to act on. Remote failures cross the wire as
//! typed error replies (never a dropped connection), so
//! [`ServeError`](etsc_serve::ServeError) semantics — e.g. "queue-full
//! rejections are atomic, retry the batch" — survive the process boundary.

use std::fmt;

use etsc_persist::PersistError;
use etsc_serve::ServeError;

/// Errors produced by the wire protocol, the transports, and remote nodes.
///
/// Variants split into three groups: **transport** (I/O, timeouts,
/// connection lifecycle), **framing** (a frame or payload that does not
/// decode), and **remote** (typed failures a node reported in an error
/// reply — the cross-node images of [`ServeError`] variants).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    // --- transport ---
    /// A socket operation failed.
    Io(String),
    /// The peer did not produce a complete reply within the configured
    /// timeout. The connection is in an unknown mid-frame state; callers
    /// should drop and reconnect rather than retry on the same socket.
    TimedOut,
    /// The peer closed the connection cleanly at a frame boundary.
    ConnectionClosed,

    // --- framing ---
    /// The connection dropped (or the buffer ended) mid-frame.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The frame does not start with [`WIRE_MAGIC`](crate::wire::WIRE_MAGIC).
    BadMagic,
    /// The frame was written by an incompatible wire version.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u16,
        /// Version this endpoint speaks.
        supported: u16,
    },
    /// The frame checksum does not match its contents.
    ChecksumMismatch,
    /// The frame header declares a payload larger than the configured
    /// limit. Detected **before** any allocation, so a hostile length
    /// prefix costs a typed error, not memory.
    FrameTooLarge {
        /// Payload length the header declares.
        declared: usize,
        /// The receiving endpoint's limit.
        max: usize,
    },
    /// The frame's message-type byte is not part of the protocol.
    UnknownMsgType(u8),
    /// The frame decoded but its payload does not match the message
    /// layout.
    Malformed(String),
    /// The peer answered with a structurally valid message of the wrong
    /// type for the request (a protocol bug, not a transport fault).
    UnexpectedReply {
        /// Reply the request expects.
        expected: &'static str,
        /// Message that actually arrived.
        got: &'static str,
    },

    // --- remote (typed error replies) ---
    /// The remote node's shard queue would overflow under
    /// [`OverflowPolicy::Reject`](etsc_serve::OverflowPolicy::Reject). Like
    /// its in-process twin, the rejection is atomic: the node enqueued no
    /// record of the batch, so the caller can drain and retry it whole.
    QueueFull {
        /// Remote shard whose queue would overflow.
        shard: usize,
        /// Stream id of the first record that did not fit.
        stream: u64,
        /// The remote runtime's per-shard queue capacity.
        capacity: usize,
        /// Server hint: how long to wait before retrying, in milliseconds
        /// (0 = unknown; back off with the client policy instead).
        retry_after_ms: u64,
    },
    /// The remote node cannot serve a stream because its model is absent
    /// from the node's registry.
    ModelMissing {
        /// Stream whose snapshot references the missing model.
        stream: u64,
        /// The registry entry name the snapshot expects.
        model: String,
    },
    /// The remote node has no live stream with this id (e.g. a migrate-out
    /// for a stream the node does not own).
    UnknownStream {
        /// The unknown stream id.
        stream: u64,
    },
    /// A migrate-in would overwrite a stream already live on the remote
    /// node; the node refused the whole batch atomically.
    DuplicateStream {
        /// The stream id that already exists remotely.
        stream: u64,
    },
    /// The remote node rejected the request as misconfigured (e.g. a
    /// checkpoint request on a node that was started without a registry).
    RemoteBadConfig(String),
    /// A persistence operation failed on the remote node.
    RemotePersist(String),
    /// The remote node could not decode the request and said so (a typed
    /// reply, not a dropped connection). The node closes the connection
    /// after this reply — mid-stream state is unknowable after a framing
    /// error — so reconnect before retrying.
    RemoteMalformed(String),
    /// The node is at its connection limit; the reply is sent before the
    /// connection closes so the client can back off and retry.
    Busy {
        /// Connections the node was serving when it refused this one.
        active: usize,
        /// The node's configured connection limit.
        limit: usize,
        /// Server hint: how long to wait before retrying, in milliseconds
        /// (0 = unknown; back off with the client policy instead).
        retry_after_ms: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "socket error: {msg}"),
            WireError::TimedOut => write!(f, "timed out waiting for the peer"),
            WireError::ConnectionClosed => write!(f, "peer closed the connection"),
            WireError::Truncated { context } => {
                write!(f, "connection dropped mid-frame while reading {context}")
            }
            WireError::BadMagic => write!(f, "not an etsc-net frame (bad magic)"),
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "wire version {found} is not supported (this endpoint speaks {supported})"
            ),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "frame declares a {declared}-byte payload (limit {max})")
            }
            WireError::UnknownMsgType(t) => write!(f, "unknown message type {t}"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::UnexpectedReply { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            WireError::QueueFull {
                shard,
                stream,
                capacity,
                retry_after_ms: _,
            } => write!(
                f,
                "remote shard {shard} queue is full (capacity {capacity}); batch rejected at \
                 stream {stream} with no records enqueued"
            ),
            WireError::ModelMissing { stream, model } => write!(
                f,
                "remote node cannot serve stream {stream}: model {model:?} is absent from its \
                 registry"
            ),
            WireError::UnknownStream { stream } => {
                write!(f, "remote node has no live stream {stream}")
            }
            WireError::DuplicateStream { stream } => write!(
                f,
                "stream {stream} is already live on the remote node; migration refused"
            ),
            WireError::RemoteBadConfig(msg) => write!(f, "remote configuration error: {msg}"),
            WireError::RemotePersist(msg) => write!(f, "remote persistence error: {msg}"),
            WireError::RemoteMalformed(msg) => {
                write!(f, "remote node could not decode the request: {msg}")
            }
            WireError::Busy {
                active,
                limit,
                retry_after_ms: _,
            } => write!(
                f,
                "node is at its connection limit ({active}/{limit}); retry later"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

impl From<PersistError> for WireError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::UnexpectedEof { context } => WireError::Truncated { context },
            other => WireError::Malformed(other.to_string()),
        }
    }
}

impl WireError {
    /// The error-reply image of a [`ServeError`]: what a node sends back
    /// when the wrapped runtime refuses a request. Total — every runtime
    /// failure has a typed wire form, which is what keeps "never a dropped
    /// connection" honest.
    pub fn from_serve(e: &ServeError) -> Self {
        match e {
            ServeError::QueueFull {
                shard,
                stream,
                capacity,
            } => WireError::QueueFull {
                shard: *shard,
                stream: *stream,
                capacity: *capacity,
                retry_after_ms: 0,
            },
            ServeError::ModelMissing { stream, model } => WireError::ModelMissing {
                stream: *stream,
                model: model.clone(),
            },
            ServeError::UnknownStream { stream } => WireError::UnknownStream { stream: *stream },
            ServeError::DuplicateStream { stream } => {
                WireError::DuplicateStream { stream: *stream }
            }
            ServeError::BadConfig(msg) => WireError::RemoteBadConfig(msg.clone()),
            ServeError::Persist(p) => WireError::RemotePersist(p.to_string()),
        }
    }

    /// True when the remote node guarantees the request was **not** applied,
    /// so resending it cannot duplicate work regardless of what the request
    /// was. [`QueueFull`](WireError::QueueFull) rejections are atomic (no
    /// record enqueued) and [`Busy`](WireError::Busy) refusals happen before
    /// the request is even read.
    pub fn leaves_request_unapplied(&self) -> bool {
        matches!(self, WireError::QueueFull { .. } | WireError::Busy { .. })
    }

    /// True when retrying the request might succeed: the failure was either
    /// provably-unapplied server pressure ([`leaves_request_unapplied`]
    /// (WireError::leaves_request_unapplied)) or a transport fault that may
    /// have been transient. For transport faults the request *may* have been
    /// applied before the fault — only retry them when the request is
    /// idempotent (or deduplicated server-side, like tagged ingest batches).
    pub fn is_retryable(&self) -> bool {
        self.leaves_request_unapplied()
            || matches!(
                self,
                WireError::Io(_)
                    | WireError::TimedOut
                    | WireError::ConnectionClosed
                    | WireError::Truncated { .. }
                    | WireError::ChecksumMismatch
                    | WireError::RemoteMalformed(_)
            )
    }

    /// True when the connection that produced this error is in an unknown
    /// or closed state and must be re-established before the next request.
    /// [`RemoteMalformed`](WireError::RemoteMalformed) and
    /// [`Busy`](WireError::Busy) qualify because the node closes the
    /// connection right after sending those replies.
    pub fn needs_reconnect(&self) -> bool {
        matches!(
            self,
            WireError::Io(_)
                | WireError::TimedOut
                | WireError::ConnectionClosed
                | WireError::Truncated { .. }
                | WireError::ChecksumMismatch
                | WireError::RemoteMalformed(_)
                | WireError::Busy { .. }
        )
    }

    /// The server's retry-after hint, when it sent one. `None` for errors
    /// that carry no hint or whose hint is 0 (= unknown); callers fall back
    /// to their own backoff schedule.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            WireError::QueueFull { retry_after_ms, .. }
            | WireError::Busy { retry_after_ms, .. }
                if *retry_after_ms > 0 =>
            {
                Some(std::time::Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}
