//! The framed wire codec: length-prefixed, versioned, checksummed frames
//! and the message set they carry.
//!
//! # Frame layout
//!
//! Every frame on the wire is:
//!
//! | field      | size      | value                                        |
//! |------------|-----------|----------------------------------------------|
//! | `magic`    | 4 bytes   | [`WIRE_MAGIC`] = `b"ETSN"`                   |
//! | `version`  | u16 LE    | [`WIRE_VERSION`] of the writer               |
//! | `msg_type` | u8        | message discriminant (see [`Message`])       |
//! | `len`      | u32 LE    | payload length in bytes                      |
//! | `payload`  | `len` B   | message body ([`etsc_persist`] primitives)   |
//! | `checksum` | u64 LE    | FNV-1a 64 over every preceding byte          |
//!
//! The checksum reuses [`etsc_core::hash`] — the same function the persist
//! envelope uses — seeded over the header and continued over the payload
//! ([`hash::fnv1a_64_with`]), so integrity covers the framing itself, not
//! just the body. Inside the payload the primitive vocabulary is exactly
//! the persist codec's ([`Encoder`]/[`Decoder`]): little-endian fixed
//! widths, length-prefixed strings and blobs, floats as IEEE bits.
//!
//! # Version policy
//!
//! [`WIRE_VERSION`] follows the same rules as
//! [`etsc_persist::FORMAT_VERSION`]: any change to the frame layout or to
//! an existing message's payload layout bumps the version, and readers
//! reject every other version with [`WireError::UnsupportedVersion`]
//! rather than misdecoding. Adding a *new* message type is allowed within
//! a version (unknown types are a typed error, and nodes only ever reply
//! with types the requesting client already knows).
//!
//! # Robustness
//!
//! Decoding never panics, never hangs, and never allocates proportionally
//! to an unvalidated length: the payload length is checked against the
//! receiver's [`MAX_FRAME_PAYLOAD`] cap before any buffer is sized, element
//! counts inside payloads are validated against the bytes actually present
//! ([`Decoder::check_claim`]), and a connection that drops mid-frame
//! surfaces as [`WireError::Truncated`].

use std::io::{ErrorKind, Read, Write};

use etsc_core::hash;
use etsc_core::trace::TraceContext;
use etsc_persist::{Decoder, Encoder};
use etsc_serve::{Record, StreamAlarm};
use etsc_stream::Alarm;

use crate::error::WireError;

/// Frame magic bytes ("ETSc Net"; distinct from the persist envelope's
/// `b"ETSC"` so a snapshot file is never mistaken for a frame stream).
pub const WIRE_MAGIC: [u8; 4] = *b"ETSN";

/// Current wire version. Bump on any frame- or payload-layout change;
/// readers reject every other version instead of misdecoding.
///
/// **v2** (fault tolerance): [`Message::IngestBatch`] gained a `(client,
/// seq)` idempotency tag (`(0, 0)` = untagged), [`Message::IngestAck`]
/// gained an `applied` flag (false = the batch was a duplicate of one the
/// node already applied), and the [`WireError::QueueFull`] /
/// [`WireError::Busy`] error payloads gained a `retry_after_ms` hint
/// (0 = unknown) so clients can honor server pressure when backing off.
///
/// **v3** (distributed tracing): [`Message::IngestBatch`] gained an
/// *optional trailing* [`TraceContext`] — 16 bytes (trace id u64 LE, then
/// parent span id u64 LE) appended after the record list only when the
/// sender is tracing, so an untraced ingest costs zero extra bytes on the
/// wire. Decoders distinguish the two layouts by the bytes remaining after
/// the records (0 = untraced, 16 = traced; anything else is
/// [`WireError::Malformed`]). v3 also added the [`Message::Trace`] request
/// / [`Message::TraceAck`] reply pair, which exports a node's span ring as
/// Chrome `trace_event` JSON the same way [`Message::Stats`] exports its
/// metrics. Version negotiation is unchanged: readers accept exactly
/// [`WIRE_VERSION`] and reject everything else with
/// [`WireError::UnsupportedVersion`] — a v2 peer never sees a half-decoded
/// v3 frame.
pub const WIRE_VERSION: u16 = 3;

/// Default cap on a frame's payload length (32 MiB). A header declaring
/// more fails with [`WireError::FrameTooLarge`] before any allocation.
pub const MAX_FRAME_PAYLOAD: usize = 32 << 20;

/// Frame header size: magic (4) + version (2) + msg_type (1) + len (4).
pub const FRAME_HEADER_LEN: usize = 11;

/// Frame trailer size: the u64 checksum.
pub const FRAME_CHECKSUM_LEN: usize = 8;

/// A decoded frame: the message discriminant and its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (see [`Message`] for the assignment).
    pub msg_type: u8,
    /// Message body bytes.
    pub payload: Vec<u8>,
}

/// Encode a frame: header, payload, trailing checksum.
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_CHECKSUM_LEN);
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.push(msg_type);
    // The length field is u32. A payload too large to represent cannot be
    // framed at all; saturating the declared length yields a frame every
    // reader refuses with a typed [`WireError::FrameTooLarge`] (payload
    // caps sit far below `u32::MAX`) instead of one that misdecodes.
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = hash::fnv1a_64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Write one frame to `w` and flush it.
pub fn write_frame(w: &mut impl Write, msg_type: u8, payload: &[u8]) -> Result<(), WireError> {
    let bytes = encode_frame(msg_type, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Validate a frame header; returns `(msg_type, payload_len)`.
fn validate_header(
    header: &[u8; FRAME_HEADER_LEN],
    max_payload: usize,
) -> Result<(u8, usize), WireError> {
    let [m0, m1, m2, m3, v0, v1, msg_type, l0, l1, l2, l3] = *header;
    if [m0, m1, m2, m3] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([v0, v1]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    // On a target whose usize cannot hold the declared u32 length the frame
    // is oversized by definition; saturate so the cap check below rejects it
    // with the same typed error.
    let len = usize::try_from(u32::from_le_bytes([l0, l1, l2, l3])).unwrap_or(usize::MAX);
    if len > max_payload {
        return Err(WireError::FrameTooLarge {
            declared: len,
            max: max_payload,
        });
    }
    Ok((msg_type, len))
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-verified frame.
    Frame(Frame),
    /// The peer closed the connection cleanly at a frame boundary (EOF
    /// before the first header byte).
    Closed,
    /// `should_stop` returned true while waiting for bytes (only possible
    /// on transports with a read timeout).
    Stopped,
}

/// Fill `buf` from `r`, retrying timeouts until `should_stop` says
/// otherwise. `Ok(None)` means stopped; `Ok(Some(false))` means EOF before
/// the first byte (only accepted when `filled_any` starts false and
/// `eof_ok`), `Ok(Some(true))` means filled.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_ok: bool,
    context: &'static str,
    should_stop: &mut dyn FnMut() -> bool,
) -> Result<Option<bool>, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        // The loop guard keeps `filled` in range; `else` is unreachable but
        // costs a typed error, not a panic, if that ever stops being true.
        let Some(dst) = buf.get_mut(filled..) else {
            return Err(WireError::Truncated { context });
        };
        match r.read(dst) {
            Ok(0) => {
                return if filled == 0 && eof_ok {
                    Ok(Some(false))
                } else {
                    Err(WireError::Truncated { context })
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if e.kind() != ErrorKind::Interrupted && should_stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(Some(true))
}

/// Read one frame from `r`, validating magic, version, length cap, and
/// checksum.
///
/// Read timeouts on the underlying transport are retried until
/// `should_stop` returns true (servers pass their shutdown flag; clients
/// pass a deadline check), so a stalled peer can never hang the caller
/// forever, and a peer that disappears mid-frame surfaces as
/// [`WireError::Truncated`] — typed, every time.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
    should_stop: &mut dyn FnMut() -> bool,
) -> Result<ReadOutcome, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_full(r, &mut header, true, "frame header", should_stop)? {
        None => return Ok(ReadOutcome::Stopped),
        Some(false) => return Ok(ReadOutcome::Closed),
        Some(true) => {}
    }
    let (msg_type, len) = validate_header(&header, max_payload)?;
    // `len` is already capped by max_payload, so this allocation is bounded.
    let mut rest = vec![0u8; len + FRAME_CHECKSUM_LEN];
    if read_full(r, &mut rest, false, "frame payload", should_stop)?.is_none() {
        return Ok(ReadOutcome::Stopped);
    }
    // `rest` was sized `len + FRAME_CHECKSUM_LEN` above, so the split is in
    // bounds; `get` keeps the codec structurally panic-free regardless.
    let (payload, checksum) = (
        rest.get(..len).unwrap_or(&[]),
        rest.get(len..).unwrap_or(&[]),
    );
    let expected = hash::fnv1a_64_with(hash::fnv1a_64(&header), payload);
    let actual = checksum
        .iter()
        .rev()
        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
    if expected != actual {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(ReadOutcome::Frame(Frame {
        msg_type,
        payload: payload.to_vec(),
    }))
}

/// Decode one frame from an in-memory buffer (no transport); used by tests
/// and fuzzing. Equivalent to [`read_frame`] over a slice reader, with
/// clean-EOF reported as [`WireError::Truncated`] (a buffer, unlike a
/// socket, cannot "close").
pub fn decode_frame(bytes: &[u8], max_payload: usize) -> Result<Frame, WireError> {
    let mut r = bytes;
    match read_frame(&mut r, max_payload, &mut || false)? {
        ReadOutcome::Frame(f) => Ok(f),
        ReadOutcome::Closed => Err(WireError::Truncated {
            context: "frame header",
        }),
        // Slice reads never time out, so this arm is dead; a typed error
        // keeps the decode path panic-free even so.
        ReadOutcome::Stopped => Err(WireError::Io(
            "in-memory frame decode reported a timeout".to_string(),
        )),
    }
}

// Message discriminants. Requests are 1..=15, replies 65..=79, the error
// reply is 127.
const MT_OPEN_STREAM: u8 = 1;
const MT_INGEST_BATCH: u8 = 2;
const MT_DRAIN: u8 = 3;
const MT_CHECKPOINT: u8 = 4;
const MT_STATS: u8 = 5;
const MT_MIGRATE_OUT: u8 = 6;
const MT_MIGRATE_IN: u8 = 7;
const MT_SHUTDOWN: u8 = 8;
const MT_PING: u8 = 9;
const MT_STREAM_COUNT: u8 = 10;
const MT_TRACE: u8 = 11;
const MT_OPEN_ACK: u8 = 65;
const MT_INGEST_ACK: u8 = 66;
const MT_DRAIN_ACK: u8 = 67;
const MT_CHECKPOINT_ACK: u8 = 68;
const MT_STATS_ACK: u8 = 69;
const MT_MIGRATE_STREAMS: u8 = 70;
const MT_MIGRATE_IN_ACK: u8 = 71;
const MT_PONG: u8 = 72;
const MT_SHUTDOWN_ACK: u8 = 73;
const MT_STREAM_COUNT_ACK: u8 = 74;
const MT_TRACE_ACK: u8 = 75;
const MT_ERROR: u8 = 127;

/// The protocol's message set: requests a client sends, replies a node
/// returns. Every request has exactly one reply; a request the node cannot
/// satisfy is answered with [`Message::Error`] (never a dropped
/// connection).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // --- requests ---
    /// Open a monitor for `stream` on the node (idempotent; the reply says
    /// whether it was created).
    OpenStream {
        /// Stream id to open.
        stream: u64,
    },
    /// Append a batch of records to the node's shard queues. Backpressure
    /// follows the remote runtime's overflow policy: the node either does
    /// the work before acking (Block — the client's call blocks) or
    /// replies [`WireError::QueueFull`] atomically (Reject).
    ///
    /// The `(client, seq)` pair is an idempotency tag: a tagged batch
    /// (`client != 0 && seq != 0`) whose `seq` the node has already
    /// applied for that client is acknowledged without being re-applied
    /// ([`Message::IngestAck`] with `applied: false`), which is what makes
    /// retrying an ingest whose ack was lost safe — the batch lands
    /// exactly once no matter how many times the client re-sends it.
    IngestBatch {
        /// Idempotency client id (0 = untagged, no dedup).
        client: u64,
        /// Per-client batch sequence number, starting at 1 (0 = untagged).
        seq: u64,
        /// The records, in ingest order.
        records: Vec<Record>,
        /// Optional trace context (v3): present only when the sender is
        /// tracing this batch. `None` encodes to zero bytes, so an
        /// untraced ingest's frame is byte-identical to a v2 one apart
        /// from the version field.
        ctx: Option<TraceContext>,
    },
    /// Process every queued record and return the produced alarms.
    Drain,
    /// Cut a model + runtime-state checkpoint into the node's registry.
    Checkpoint,
    /// Fetch the node's metrics in Prometheus text exposition format.
    Stats,
    /// Export the named streams for migration: the node snapshots, retires,
    /// and returns them as `(stream id, anchor snapshot)` pairs
    /// ([`Message::MigrateStreams`]). Atomic: an unknown id fails the whole
    /// request with no stream removed.
    MigrateOut {
        /// Stream ids to export, their queued records drained first.
        streams: Vec<u64>,
    },
    /// Import streams exported from another node. Atomic: corrupt bytes or
    /// a duplicate id refuse the whole batch.
    MigrateIn {
        /// `(stream id, anchor snapshot)` pairs from a
        /// [`Message::MigrateStreams`] reply.
        streams: Vec<(u64, Vec<u8>)>,
    },
    /// Gracefully stop the node: drain in-flight work, return the final
    /// alarms, then stop accepting connections.
    Shutdown,
    /// Round-trip probe; the node echoes `token` in a [`Message::Pong`].
    Ping {
        /// Arbitrary token echoed back.
        token: u64,
    },
    /// Ask how many streams are live on the node.
    StreamCount,
    /// Export the node's span ring and event log as Chrome `trace_event`
    /// JSON (the tracing counterpart of [`Message::Stats`]). A node
    /// without a tracer answers with a complete empty trace document, not
    /// an error.
    Trace,

    // --- replies ---
    /// Reply to [`Message::OpenStream`].
    OpenAck {
        /// True if the stream was created, false if already live.
        created: bool,
    },
    /// Reply to [`Message::IngestBatch`]: the batch was fully accepted.
    IngestAck {
        /// True if the batch was applied now; false if its idempotency tag
        /// marked it as a duplicate of an already-applied batch (the
        /// records were **not** re-applied).
        applied: bool,
    },
    /// Reply to [`Message::Drain`] with the alarms produced.
    DrainAck {
        /// Alarms sorted by the node's global ingest sequence number.
        alarms: Vec<StreamAlarm>,
    },
    /// Reply to [`Message::Checkpoint`].
    CheckpointAck {
        /// Size of the state envelope written, in bytes.
        bytes: u64,
    },
    /// Reply to [`Message::Stats`].
    StatsAck {
        /// Prometheus text exposition
        /// ([`ServeStats::render_prometheus`](etsc_serve::ServeStats::render_prometheus)).
        text: String,
    },
    /// Reply to [`Message::MigrateOut`] with the exported streams.
    MigrateStreams {
        /// `(stream id, anchor snapshot)` pairs, in request order.
        streams: Vec<(u64, Vec<u8>)>,
    },
    /// Reply to [`Message::MigrateIn`].
    MigrateInAck {
        /// Streams adopted (always the full batch — imports are atomic).
        accepted: u64,
    },
    /// Reply to [`Message::Ping`].
    Pong {
        /// The request's token.
        token: u64,
    },
    /// Reply to [`Message::Shutdown`] with the node's final drain.
    ShutdownAck {
        /// Alarms still undelivered when the shutdown arrived.
        alarms: Vec<StreamAlarm>,
    },
    /// Reply to [`Message::StreamCount`].
    StreamCountAck {
        /// Streams live across the node's shards.
        streams: u64,
    },
    /// Reply to [`Message::Trace`].
    TraceAck {
        /// Chrome `trace_event` JSON
        /// ([`Tracer::export_chrome`](etsc_core::trace::Tracer::export_chrome)).
        json: String,
    },
    /// Typed failure reply to any request.
    Error(
        /// The remote failure, decoded back into the same [`WireError`]
        /// variants the in-process path produces.
        WireError,
    ),
}

fn put_alarms(enc: &mut Encoder, alarms: &[StreamAlarm]) {
    enc.put_usize(alarms.len());
    for a in alarms {
        enc.put_u64(a.stream);
        enc.put_u64(a.seq);
        a.alarm.encode(enc);
    }
}

fn get_alarms(dec: &mut Decoder<'_>) -> Result<Vec<StreamAlarm>, WireError> {
    let n = dec.get_usize("alarm count")?;
    // stream + seq + 4-field alarm body = 48 bytes each.
    dec.check_claim(n, 48, "alarms")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let stream = dec.get_u64("alarm stream")?;
        let seq = dec.get_u64("alarm seq")?;
        let alarm = Alarm::decode(dec)?;
        out.push(StreamAlarm { stream, seq, alarm });
    }
    Ok(out)
}

fn put_stream_blobs(enc: &mut Encoder, streams: &[(u64, Vec<u8>)]) {
    enc.put_usize(streams.len());
    for (id, bytes) in streams {
        enc.put_u64(*id);
        enc.put_bytes(bytes);
    }
}

fn get_stream_blobs(dec: &mut Decoder<'_>) -> Result<Vec<(u64, Vec<u8>)>, WireError> {
    let n = dec.get_usize("stream blob count")?;
    // id + blob length prefix = 16 bytes minimum each.
    dec.check_claim(n, 16, "stream blobs")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = dec.get_u64("stream id")?;
        let bytes = dec.get_bytes("stream anchor snapshot")?;
        out.push((id, bytes));
    }
    Ok(out)
}

// Error-reply payload tags.
const ET_QUEUE_FULL: u8 = 0;
const ET_MODEL_MISSING: u8 = 1;
const ET_UNKNOWN_STREAM: u8 = 2;
const ET_DUPLICATE_STREAM: u8 = 3;
const ET_BAD_CONFIG: u8 = 4;
const ET_PERSIST: u8 = 5;
const ET_MALFORMED: u8 = 6;
const ET_BUSY: u8 = 7;

/// Encode a [`WireError`] into an error-reply payload. Only the remote
/// variants have a wire form; transport/framing errors that somehow reach
/// this path travel as a malformed-request report (still typed — the
/// encoding is total, a node can always answer).
fn put_error(enc: &mut Encoder, err: &WireError) {
    match err {
        WireError::QueueFull {
            shard,
            stream,
            capacity,
            retry_after_ms,
        } => {
            enc.put_u8(ET_QUEUE_FULL);
            enc.put_usize(*shard);
            enc.put_u64(*stream);
            enc.put_usize(*capacity);
            enc.put_u64(*retry_after_ms);
        }
        WireError::ModelMissing { stream, model } => {
            enc.put_u8(ET_MODEL_MISSING);
            enc.put_u64(*stream);
            enc.put_str(model);
        }
        WireError::UnknownStream { stream } => {
            enc.put_u8(ET_UNKNOWN_STREAM);
            enc.put_u64(*stream);
        }
        WireError::DuplicateStream { stream } => {
            enc.put_u8(ET_DUPLICATE_STREAM);
            enc.put_u64(*stream);
        }
        WireError::RemoteBadConfig(msg) => {
            enc.put_u8(ET_BAD_CONFIG);
            enc.put_str(msg);
        }
        WireError::RemotePersist(msg) => {
            enc.put_u8(ET_PERSIST);
            enc.put_str(msg);
        }
        WireError::RemoteMalformed(msg) => {
            enc.put_u8(ET_MALFORMED);
            enc.put_str(msg);
        }
        WireError::Busy {
            active,
            limit,
            retry_after_ms,
        } => {
            enc.put_u8(ET_BUSY);
            enc.put_usize(*active);
            enc.put_usize(*limit);
            enc.put_u64(*retry_after_ms);
        }
        other => {
            enc.put_u8(ET_MALFORMED);
            enc.put_str(&other.to_string());
        }
    }
}

fn get_error(dec: &mut Decoder<'_>) -> Result<WireError, WireError> {
    Ok(match dec.get_u8("error tag")? {
        ET_QUEUE_FULL => WireError::QueueFull {
            shard: dec.get_usize("error shard")?,
            stream: dec.get_u64("error stream")?,
            capacity: dec.get_usize("error capacity")?,
            retry_after_ms: dec.get_u64("error retry-after")?,
        },
        ET_MODEL_MISSING => WireError::ModelMissing {
            stream: dec.get_u64("error stream")?,
            model: dec.get_str("error model")?,
        },
        ET_UNKNOWN_STREAM => WireError::UnknownStream {
            stream: dec.get_u64("error stream")?,
        },
        ET_DUPLICATE_STREAM => WireError::DuplicateStream {
            stream: dec.get_u64("error stream")?,
        },
        ET_BAD_CONFIG => WireError::RemoteBadConfig(dec.get_str("error message")?),
        ET_PERSIST => WireError::RemotePersist(dec.get_str("error message")?),
        ET_MALFORMED => WireError::RemoteMalformed(dec.get_str("error message")?),
        ET_BUSY => WireError::Busy {
            active: dec.get_usize("error active")?,
            limit: dec.get_usize("error limit")?,
            retry_after_ms: dec.get_u64("error retry-after")?,
        },
        t => return Err(WireError::Malformed(format!("error-reply tag {t}"))),
    })
}

impl Message {
    /// A short static name for diagnostics and
    /// [`WireError::UnexpectedReply`].
    pub fn name(&self) -> &'static str {
        match self {
            Message::OpenStream { .. } => "OpenStream",
            Message::IngestBatch { .. } => "IngestBatch",
            Message::Drain => "Drain",
            Message::Checkpoint => "Checkpoint",
            Message::Stats => "Stats",
            Message::MigrateOut { .. } => "MigrateOut",
            Message::MigrateIn { .. } => "MigrateIn",
            Message::Shutdown => "Shutdown",
            Message::Ping { .. } => "Ping",
            Message::StreamCount => "StreamCount",
            Message::Trace => "Trace",
            Message::OpenAck { .. } => "OpenAck",
            Message::IngestAck { .. } => "IngestAck",
            Message::DrainAck { .. } => "DrainAck",
            Message::CheckpointAck { .. } => "CheckpointAck",
            Message::StatsAck { .. } => "StatsAck",
            Message::MigrateStreams { .. } => "MigrateStreams",
            Message::MigrateInAck { .. } => "MigrateInAck",
            Message::Pong { .. } => "Pong",
            Message::ShutdownAck { .. } => "ShutdownAck",
            Message::StreamCountAck { .. } => "StreamCountAck",
            Message::TraceAck { .. } => "TraceAck",
            Message::Error(_) => "Error",
        }
    }

    /// Encode into `(msg_type, payload)` — the inputs of
    /// [`encode_frame`]/[`write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut enc = Encoder::new();
        let t = match self {
            Message::OpenStream { stream } => {
                enc.put_u64(*stream);
                MT_OPEN_STREAM
            }
            Message::IngestBatch {
                client,
                seq,
                records,
                ctx,
            } => {
                enc.put_u64(*client);
                enc.put_u64(*seq);
                enc.put_usize(records.len());
                for r in records {
                    enc.put_u64(r.stream);
                    enc.put_f64(r.value);
                }
                // v3 optional trailing trace context: zero bytes when the
                // sender is not tracing.
                if let Some(ctx) = ctx {
                    enc.put_u64(ctx.trace_id);
                    enc.put_u64(ctx.parent_span);
                }
                MT_INGEST_BATCH
            }
            Message::Drain => MT_DRAIN,
            Message::Checkpoint => MT_CHECKPOINT,
            Message::Stats => MT_STATS,
            Message::MigrateOut { streams } => {
                enc.put_usize(streams.len());
                for s in streams {
                    enc.put_u64(*s);
                }
                MT_MIGRATE_OUT
            }
            Message::MigrateIn { streams } => {
                put_stream_blobs(&mut enc, streams);
                MT_MIGRATE_IN
            }
            Message::Shutdown => MT_SHUTDOWN,
            Message::Ping { token } => {
                enc.put_u64(*token);
                MT_PING
            }
            Message::StreamCount => MT_STREAM_COUNT,
            Message::Trace => MT_TRACE,
            Message::OpenAck { created } => {
                enc.put_bool(*created);
                MT_OPEN_ACK
            }
            Message::IngestAck { applied } => {
                enc.put_bool(*applied);
                MT_INGEST_ACK
            }
            Message::DrainAck { alarms } => {
                put_alarms(&mut enc, alarms);
                MT_DRAIN_ACK
            }
            Message::CheckpointAck { bytes } => {
                enc.put_u64(*bytes);
                MT_CHECKPOINT_ACK
            }
            Message::StatsAck { text } => {
                enc.put_str(text);
                MT_STATS_ACK
            }
            Message::MigrateStreams { streams } => {
                put_stream_blobs(&mut enc, streams);
                MT_MIGRATE_STREAMS
            }
            Message::MigrateInAck { accepted } => {
                enc.put_u64(*accepted);
                MT_MIGRATE_IN_ACK
            }
            Message::Pong { token } => {
                enc.put_u64(*token);
                MT_PONG
            }
            Message::ShutdownAck { alarms } => {
                put_alarms(&mut enc, alarms);
                MT_SHUTDOWN_ACK
            }
            Message::StreamCountAck { streams } => {
                enc.put_u64(*streams);
                MT_STREAM_COUNT_ACK
            }
            Message::TraceAck { json } => {
                enc.put_str(json);
                MT_TRACE_ACK
            }
            Message::Error(err) => {
                put_error(&mut enc, err);
                MT_ERROR
            }
        };
        (t, enc.into_bytes())
    }

    /// Decode a frame's payload according to its message type. Every byte
    /// of the payload must be consumed (trailing bytes are a typed error,
    /// mirroring the persist codec's layout-drift check).
    pub fn decode(frame: &Frame) -> Result<Message, WireError> {
        let mut dec = Decoder::new(&frame.payload);
        let msg = match frame.msg_type {
            MT_OPEN_STREAM => Message::OpenStream {
                stream: dec.get_u64("open stream id")?,
            },
            MT_INGEST_BATCH => {
                let client = dec.get_u64("ingest client id")?;
                let seq = dec.get_u64("ingest batch seq")?;
                let n = dec.get_usize("record count")?;
                // stream id + f64 value = 16 bytes each.
                dec.check_claim(n, 16, "records")?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let stream = dec.get_u64("record stream")?;
                    let value = dec.get_f64("record value")?;
                    records.push(Record { stream, value });
                }
                // v3: an optional 16-byte trace context may trail the
                // records. Zero remaining bytes means untraced; anything
                // other than exactly the context fields fails the
                // `dec.finish()` layout check below.
                let ctx = if dec.remaining() > 0 {
                    Some(TraceContext {
                        trace_id: dec.get_u64("ingest trace id")?,
                        parent_span: dec.get_u64("ingest parent span")?,
                    })
                } else {
                    None
                };
                Message::IngestBatch {
                    client,
                    seq,
                    records,
                    ctx,
                }
            }
            MT_DRAIN => Message::Drain,
            MT_CHECKPOINT => Message::Checkpoint,
            MT_STATS => Message::Stats,
            MT_MIGRATE_OUT => {
                let n = dec.get_usize("migrate-out count")?;
                dec.check_claim(n, 8, "migrate-out streams")?;
                let mut streams = Vec::with_capacity(n);
                for _ in 0..n {
                    streams.push(dec.get_u64("migrate-out stream")?);
                }
                Message::MigrateOut { streams }
            }
            MT_MIGRATE_IN => Message::MigrateIn {
                streams: get_stream_blobs(&mut dec)?,
            },
            MT_SHUTDOWN => Message::Shutdown,
            MT_PING => Message::Ping {
                token: dec.get_u64("ping token")?,
            },
            MT_STREAM_COUNT => Message::StreamCount,
            MT_TRACE => Message::Trace,
            MT_OPEN_ACK => Message::OpenAck {
                created: dec.get_bool("open ack")?,
            },
            MT_INGEST_ACK => Message::IngestAck {
                applied: dec.get_bool("ingest ack applied")?,
            },
            MT_DRAIN_ACK => Message::DrainAck {
                alarms: get_alarms(&mut dec)?,
            },
            MT_CHECKPOINT_ACK => Message::CheckpointAck {
                bytes: dec.get_u64("checkpoint bytes")?,
            },
            MT_STATS_ACK => Message::StatsAck {
                text: dec.get_str("stats text")?,
            },
            MT_MIGRATE_STREAMS => Message::MigrateStreams {
                streams: get_stream_blobs(&mut dec)?,
            },
            MT_MIGRATE_IN_ACK => Message::MigrateInAck {
                accepted: dec.get_u64("migrate-in accepted")?,
            },
            MT_PONG => Message::Pong {
                token: dec.get_u64("pong token")?,
            },
            MT_SHUTDOWN_ACK => Message::ShutdownAck {
                alarms: get_alarms(&mut dec)?,
            },
            MT_STREAM_COUNT_ACK => Message::StreamCountAck {
                streams: dec.get_u64("stream count")?,
            },
            MT_TRACE_ACK => Message::TraceAck {
                json: dec.get_str("trace json")?,
            },
            MT_ERROR => Message::Error(get_error(&mut dec)?),
            t => return Err(WireError::UnknownMsgType(t)),
        };
        dec.finish()?;
        Ok(msg)
    }

    /// Encode and frame this message in one step.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let (t, payload) = self.encode();
        encode_frame(t, &payload)
    }

    /// Write this message as one frame to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let (t, payload) = self.encode();
        write_frame(w, t, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_stream::Alarm;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::OpenStream { stream: 42 },
            Message::IngestBatch {
                client: 0,
                seq: 0,
                records: vec![Record::new(7, 1.5), Record::new(u64::MAX, -0.0)],
                ctx: None,
            },
            Message::IngestBatch {
                client: 0xC0FFEE,
                seq: 41,
                records: vec![Record::new(3, 0.25)],
                ctx: None,
            },
            Message::IngestBatch {
                client: 0xC0FFEE,
                seq: 42,
                records: vec![Record::new(3, 0.5)],
                ctx: Some(TraceContext {
                    trace_id: 0xFEED,
                    parent_span: 17,
                }),
            },
            Message::Trace,
            Message::TraceAck {
                json: "{\"traceEvents\":[]}".to_string(),
            },
            Message::Drain,
            Message::Checkpoint,
            Message::Stats,
            Message::MigrateOut {
                streams: vec![1, 2, u64::MAX - 3],
            },
            Message::MigrateIn {
                streams: vec![(9, vec![1, 2, 3]), (10, vec![])],
            },
            Message::Shutdown,
            Message::Ping { token: 0xDEAD },
            Message::StreamCount,
            Message::StreamCountAck { streams: 12 },
            Message::OpenAck { created: true },
            Message::IngestAck { applied: true },
            Message::IngestAck { applied: false },
            Message::DrainAck {
                alarms: vec![StreamAlarm {
                    stream: 3,
                    seq: 99,
                    alarm: Alarm {
                        time: 12,
                        anchor: 8,
                        label: 1,
                        confidence: 0.875,
                    },
                }],
            },
            Message::CheckpointAck { bytes: 1024 },
            Message::StatsAck {
                text: "etsc_serve_streams 5\n".to_string(),
            },
            Message::MigrateStreams {
                streams: vec![(11, vec![0xAA; 16])],
            },
            Message::MigrateInAck { accepted: 2 },
            Message::Pong { token: 0xDEAD },
            Message::ShutdownAck { alarms: vec![] },
            Message::Error(WireError::QueueFull {
                shard: 2,
                stream: 5,
                capacity: 128,
                retry_after_ms: 25,
            }),
            Message::Error(WireError::ModelMissing {
                stream: 77,
                model: "ects".to_string(),
            }),
            Message::Error(WireError::UnknownStream { stream: 1 }),
            Message::Error(WireError::DuplicateStream { stream: 2 }),
            Message::Error(WireError::RemoteBadConfig("no registry".to_string())),
            Message::Error(WireError::RemotePersist("disk gone".to_string())),
            Message::Error(WireError::Busy {
                active: 32,
                limit: 32,
                retry_after_ms: 0,
            }),
            Message::Error(WireError::RemoteMalformed("trailing bytes".to_string())),
        ]
    }

    #[test]
    fn every_message_round_trips_through_a_frame() {
        for msg in sample_messages() {
            let bytes = msg.to_frame_bytes();
            let frame = decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap();
            let back = Message::decode(&frame).unwrap();
            assert_eq!(back, msg, "{} must round-trip", msg.name());
        }
    }

    #[test]
    fn transport_errors_crossing_as_replies_become_remote_malformed() {
        // A non-remote variant still has a total wire form: it crosses as a
        // typed RemoteMalformed report rather than being unencodable.
        let msg = Message::Error(WireError::ChecksumMismatch);
        let frame = decode_frame(&msg.to_frame_bytes(), MAX_FRAME_PAYLOAD).unwrap();
        match Message::decode(&frame).unwrap() {
            Message::Error(WireError::RemoteMalformed(m)) => {
                assert!(m.contains("checksum"), "{m}");
            }
            other => panic!("expected RemoteMalformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors_at_every_cut() {
        let bytes = Message::Ping { token: 7 }.to_frame_bytes();
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut], MAX_FRAME_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let good = Message::Drain.to_frame_bytes();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_frame(&bad, MAX_FRAME_PAYLOAD).unwrap_err(),
            WireError::BadMagic
        );
        let mut bad = good.clone();
        bad[4] = 0xFF; // version LE low byte
        assert_eq!(
            decode_frame(&bad, MAX_FRAME_PAYLOAD).unwrap_err(),
            WireError::UnsupportedVersion {
                found: u16::from_le_bytes([0xFF, 0]),
                supported: WIRE_VERSION,
            }
        );
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = Message::OpenStream { stream: 5 }.to_frame_bytes();
        let i = FRAME_HEADER_LEN; // first payload byte
        bytes[i] ^= 0x40;
        assert_eq!(
            decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap_err(),
            WireError::ChecksumMismatch
        );
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        // Hand-build a header declaring a payload far past the cap; the
        // decode must fail on the declared length alone — there are no
        // such bytes to read, and none may be allocated.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(MT_DRAIN);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap_err(),
            WireError::FrameTooLarge {
                declared: u32::MAX as usize,
                max: MAX_FRAME_PAYLOAD,
            }
        );
        // A small custom cap applies the same way.
        let big = Message::StatsAck {
            text: "x".repeat(1000),
        }
        .to_frame_bytes();
        assert!(matches!(
            decode_frame(&big, 64).unwrap_err(),
            WireError::FrameTooLarge { max: 64, .. }
        ));
    }

    #[test]
    fn unknown_message_type_is_a_typed_error() {
        let bytes = encode_frame(200, &[]);
        let frame = decode_frame(&bytes, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            WireError::UnknownMsgType(200)
        );
    }

    #[test]
    fn hostile_element_counts_fail_before_allocating() {
        // An IngestBatch claiming u64::MAX/16 records inside a tiny payload
        // must fail the claim check, not allocate a huge Vec.
        let mut enc = Encoder::new();
        enc.put_u64(0); // client
        enc.put_u64(0); // seq
        enc.put_usize(usize::MAX / 16);
        let frame = Frame {
            msg_type: MT_INGEST_BATCH,
            payload: enc.into_bytes(),
        };
        assert!(matches!(
            Message::decode(&frame).unwrap_err(),
            WireError::Malformed(_)
        ));
        // Same for the migration blob list and the alarm list.
        for t in [
            MT_MIGRATE_IN,
            MT_MIGRATE_STREAMS,
            MT_DRAIN_ACK,
            MT_SHUTDOWN_ACK,
        ] {
            let mut enc = Encoder::new();
            enc.put_usize(usize::MAX / 16);
            let frame = Frame {
                msg_type: t,
                payload: enc.into_bytes(),
            };
            assert!(
                matches!(
                    Message::decode(&frame).unwrap_err(),
                    WireError::Malformed(_)
                ),
                "type {t}"
            );
        }
    }

    #[test]
    fn trace_context_is_zero_bytes_off_and_sixteen_on() {
        let base = Message::IngestBatch {
            client: 1,
            seq: 2,
            records: vec![Record::new(9, 1.0)],
            ctx: None,
        };
        let traced = Message::IngestBatch {
            client: 1,
            seq: 2,
            records: vec![Record::new(9, 1.0)],
            ctx: Some(TraceContext {
                trace_id: 3,
                parent_span: 4,
            }),
        };
        let (_, p0) = base.encode();
        let (_, p1) = traced.encode();
        assert_eq!(p1.len(), p0.len() + 16, "context must cost exactly 16B");

        // A truncated context (8 trailing bytes instead of 16) is a typed
        // layout error, never a misdecode.
        let (t, mut payload) = base.encode();
        payload.extend_from_slice(&7u64.to_le_bytes());
        let frame = Frame {
            msg_type: t,
            payload,
        };
        assert!(matches!(
            Message::decode(&frame).unwrap_err(),
            WireError::Malformed(_) | WireError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let (t, mut payload) = Message::Drain.encode();
        payload.push(0xEE);
        let frame = Frame {
            msg_type: t,
            payload,
        };
        assert!(matches!(
            Message::decode(&frame).unwrap_err(),
            WireError::Malformed(_)
        ));
    }
}
