#![warn(missing_docs)]

//! # etsc-net
//!
//! The cross-node layer of the serving stack: a zero-dependency wire
//! protocol, a federated node runtime, and a cluster router — early
//! classification served across machines with the same determinism
//! contract it has in one process.
//!
//! `etsc-serve` ends at the process boundary: one [`Runtime`] owns every
//! monitor it serves. This crate removes that boundary in three layers,
//! each usable on its own:
//!
//! * **[`wire`]** — a length-prefixed, versioned, checksummed frame codec
//!   over blocking `std::net` TCP and Unix sockets (no async runtime). The
//!   payload vocabulary is the persist codec's ([`etsc_persist`]), the
//!   checksum is the stack's FNV-1a ([`etsc_core::hash`]), and decoding is
//!   hostile-input safe: bad magic, wrong version, truncation, checksum
//!   mismatch, oversized length prefixes, and hostile element counts all
//!   surface as typed [`WireError`]s before any proportional allocation —
//!   never a panic, never a hang.
//! * **[`node`]** — [`Node`] wraps a serving [`Runtime`] behind a
//!   [`Listener`]: a blocking accept loop, bounded scoped connection
//!   threads, end-to-end backpressure (a remote
//!   [`QueueFull`](WireError::QueueFull) is the same atomic, retryable
//!   error it is in process), typed error replies for every failure, and
//!   graceful shutdown that drains in-flight work into the final ack.
//!   [`NetClient`] is the other end: the `Runtime` surface over a socket,
//!   implementing [`StreamService`](etsc_serve::StreamService) so drivers
//!   and tests run unchanged in-process and over the wire.
//! * **[`cluster`]** — [`ClusterRouter`] consistent-hashes stream ids onto
//!   node endpoints (virtual-node ring, minimal movement when the node set
//!   changes), and [`Cluster`] routes batches client-side, merges drains
//!   deterministically, and migrates live streams between nodes with the
//!   two-phase snapshot/restore discipline of the in-process rebalance —
//!   a failed migration restores the source node and leaves the topology
//!   untouched.
//! * **fault tolerance** ([`fault`], [`retry`], [`supervisor`]) —
//!   deterministic fault injection under the transport ([`FaultPlan`]
//!   scripts refusals, disconnects, stalls, corruption, and asymmetric
//!   partitions against seeded op counters), a retry/backoff policy on
//!   [`NetClient`] with automatic [`reconnect`](NetClient::reconnect) and
//!   idempotency-tagged ingest (server-side dedup makes retried batches
//!   exactly-once), and a [`Supervisor`] that heartbeats nodes, declares
//!   one dead after a miss threshold, and fails its streams over to the
//!   survivors from the node's registry checkpoint — paired with the
//!   sink-side [`DedupCursor`](etsc_serve::DedupCursor) this upgrades
//!   alarm delivery to exactly-once across a crash.
//!
//! The contract that matters end to end: **per-stream alarm sequences are
//! invariant under distribution**. The same traffic produces the same
//! alarms whether the monitors live in this process, behind one socket, or
//! spread across a cluster with mid-run migrations — bit-exact under the
//! raw norm, and still bit-exact when a node is killed mid-event and its
//! streams fail over. The end-to-end tests assert exactly that.
//!
//! # Frame layout
//!
//! | field      | size    | value                                      |
//! |------------|---------|--------------------------------------------|
//! | `magic`    | 4 bytes | [`WIRE_MAGIC`] = `b"ETSN"`                 |
//! | `version`  | u16 LE  | [`WIRE_VERSION`]                           |
//! | `msg_type` | u8      | message discriminant                       |
//! | `len`      | u32 LE  | payload length in bytes                    |
//! | `payload`  | `len` B | message body (persist-codec primitives)    |
//! | `checksum` | u64 LE  | FNV-1a 64 over every preceding byte        |
//!
//! # Version policy
//!
//! [`WIRE_VERSION`] bumps on any change to the frame layout or to an
//! existing message's payload layout; endpoints reject every other version
//! with a typed [`UnsupportedVersion`](WireError::UnsupportedVersion)
//! instead of misdecoding. New message types may be added within a
//! version: an unrecognized type is a typed error reply, and a node only
//! answers with reply types the request implies, so older clients never
//! see frames they cannot decode. Version 2 is the fault-tolerance bump:
//! ingest batches carry an idempotency tag, ingest acks report duplicate
//! application, and busy/queue-full errors carry a retry-after hint (see
//! [`WIRE_VERSION`]'s changelog).
//!
//! [`Runtime`]: etsc_serve::Runtime

pub mod client;
pub mod cluster;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod retry;
pub mod supervisor;
pub mod transport;
pub mod wire;

pub use client::{ClientConfig, NetClient};
pub use cluster::{Cluster, ClusterRouter};
pub use error::WireError;
pub use fault::{Fault, FaultInjector, FaultPlan, Op};
pub use metrics::MessageTimings;
pub use node::{Node, NodeConfig};
pub use retry::{RetryPolicy, RetryStats};
pub use supervisor::{FailoverReport, Supervisor, SupervisorConfig};
pub use transport::{Conn, Endpoint, Listener};
pub use wire::{Frame, Message, MAX_FRAME_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};
