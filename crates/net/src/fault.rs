//! Deterministic fault injection for the transport layer.
//!
//! Every failover path in this crate is exercised by tests, not hoped-for,
//! and that requires faults that happen *on demand* and *reproducibly*. A
//! [`FaultPlan`] scripts faults against a monotone per-kind operation
//! counter (the n-th connect, read, or write a client performs); a
//! [`FaultInjector`] built from the plan is threaded under
//! [`Conn`](crate::transport::Conn) via
//! [`Conn::connect_with_faults`](crate::transport::Conn::connect_with_faults)
//! — or, more commonly, via
//! [`ClientConfig::faults`](crate::client::ClientConfig) — where it
//! intercepts socket operations and substitutes failures.
//!
//! Randomized plans ([`FaultPlan::random`]) draw from the in-workspace
//! `rand` shim seeded with a caller-supplied `u64` — no clocks, no OS
//! entropy — so a failing seed replays bit-identically forever.
//!
//! The injector is cheap shared state behind an `Arc`: cloning it and
//! handing the clone to a client means the plan **persists across
//! reconnects** (op counters and sticky partitions carry over), which is
//! what makes "the ack was lost and every retry is eaten by the partition"
//! a scriptable scenario rather than a race.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable failure.
///
/// Faults are either **one-shot** (consumed by the operation they fire on)
/// or **sticky** (state that persists until a [`Fault::Heal`]): the
/// partitions are sticky, everything else is one-shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The dial fails with `ConnectionRefused`, as if nothing were
    /// listening on the endpoint.
    RefuseConnect,
    /// The read observes a clean end-of-stream (`Ok(0)`), as if the peer
    /// closed mid-conversation.
    DropRead,
    /// The write fails with `BrokenPipe`, as if the peer vanished
    /// mid-frame.
    DropWrite,
    /// The next `n` reads return `WouldBlock` (a silent peer); a read
    /// timeout surfaces upstream if the stall outlasts the deadline.
    StallReads(u32),
    /// One byte of the data actually read is flipped, so the frame
    /// checksum fails on this endpoint.
    CorruptRead,
    /// One byte of the outgoing buffer is flipped (on a copy — the
    /// caller's data is untouched), so the frame checksum fails on the
    /// *peer* and comes back as a typed
    /// [`RemoteMalformed`](crate::WireError::RemoteMalformed) reply.
    CorruptWrite,
    /// Sticky asymmetric partition: all reads stall (requests still go
    /// out, replies never arrive) until healed.
    PartitionInbound,
    /// Sticky asymmetric partition: all writes are silently swallowed
    /// (`Ok(len)` without transmission) until healed.
    PartitionOutbound,
    /// Clear both partitions and any pending read stall.
    Heal,
}

/// A scripting point: the index (0-based, per kind) of the operation a
/// fault fires on. An entry fires on the first operation of its kind whose
/// index is **at or past** the scripted one, so plans stay robust to the
/// exact number of socket calls a frame takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The n-th connection attempt.
    Connect(u64),
    /// The n-th read call.
    Read(u64),
    /// The n-th write call.
    Write(u64),
}

/// A reproducible script of faults, built by hand or from a seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(Op, Fault)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until faults are added or injected
    /// live).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Script `fault` to fire at `op` (builder-style).
    pub fn at(mut self, op: Op, fault: Fault) -> FaultPlan {
        self.entries.push((op, fault));
        self
    }

    /// A seeded plan of `faults` *recoverable* transients (stalls, dropped
    /// reads/writes, corrupted writes) at operation indices drawn uniformly
    /// from `[0, window)`. Recoverable means a client with reconnect +
    /// retry enabled makes progress through all of them; sticky partitions
    /// are deliberately excluded and must be scripted explicitly.
    pub fn random(seed: u64, faults: usize, window: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let idx = rng.random_range(0..window.max(1));
            let (op, fault) = match rng.random_range(0..4u32) {
                0 => (Op::Read(idx), Fault::DropRead),
                1 => (Op::Write(idx), Fault::DropWrite),
                2 => (Op::Read(idx), Fault::StallReads(rng.random_range(1..4u32))),
                _ => (Op::Write(idx), Fault::CorruptWrite),
            };
            plan.entries.push((op, fault));
        }
        plan
    }

    /// Compile the plan into a shareable injector.
    pub fn build(self) -> FaultInjector {
        FaultInjector(Arc::new(Mutex::new(State {
            scripted: self.entries,
            connects: 0,
            reads: 0,
            writes: 0,
            stall_remaining: 0,
            partition_in: false,
            partition_out: false,
            injected: 0,
        })))
    }
}

struct State {
    scripted: Vec<(Op, Fault)>,
    connects: u64,
    reads: u64,
    writes: u64,
    stall_remaining: u32,
    partition_in: bool,
    partition_out: bool,
    injected: u64,
}

impl State {
    /// Fire (and consume) every scripted entry whose point is at or before
    /// the current operation, folding sticky effects into state and
    /// returning the first one-shot fault to apply to this operation.
    fn fire(&mut self, kind: fn(u64) -> Op, idx: u64) -> Option<Fault> {
        let mut one_shot = None;
        let mut i = 0;
        while i < self.scripted.len() {
            let Some(&(point, _)) = self.scripted.get(i) else {
                break; // unreachable: `i` is bounded by the loop guard
            };
            let due = match (point, kind(0)) {
                (Op::Connect(k), Op::Connect(_)) => k <= idx,
                (Op::Read(k), Op::Read(_)) => k <= idx,
                (Op::Write(k), Op::Write(_)) => k <= idx,
                _ => false,
            };
            if !due {
                i += 1;
                continue;
            }
            let (_, fault) = self.scripted.remove(i);
            self.injected += 1;
            match fault {
                Fault::StallReads(n) => self.stall_remaining += n,
                Fault::PartitionInbound => self.partition_in = true,
                Fault::PartitionOutbound => self.partition_out = true,
                Fault::Heal => {
                    self.partition_in = false;
                    self.partition_out = false;
                    self.stall_remaining = 0;
                }
                other => {
                    if one_shot.is_none() {
                        one_shot = Some(other);
                    } else {
                        // Two one-shots due on the same call: keep the
                        // later for the next operation of this kind.
                        self.scripted.insert(i, (kind(idx + 1), other));
                        i += 1;
                    }
                }
            }
        }
        one_shot
    }
}

/// What a read call should do, decided under the injector lock and acted
/// on outside it.
enum ReadAction {
    Proceed,
    Corrupt,
    Eof,
    Stall,
}

/// Shared, thread-safe fault state compiled from a [`FaultPlan`].
///
/// Clone it freely — clones share the same counters and sticky state, so
/// one injector can cover every connection a client opens over its
/// lifetime (reconnects included).
///
/// Lock poisoning is absorbed (`unwrap_or_else(PoisonError::into_inner)`):
/// the state is plain counters and flags, valid at every step, so a panic
/// on another thread must not cascade into the fault filter itself.
#[derive(Clone)]
pub struct FaultInjector(Arc<Mutex<State>>);

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("FaultInjector")
            .field("pending", &s.scripted.len())
            .field("injected", &s.injected)
            .field("partition_in", &s.partition_in)
            .field("partition_out", &s.partition_out)
            .finish()
    }
}

impl FaultInjector {
    /// Inject `fault` live, at the next operation of its kind (or, for the
    /// sticky partitions and [`Fault::Heal`], immediately). This is how a
    /// test flips a healthy link into a partitioned one mid-scenario.
    pub fn inject(&self, fault: Fault) {
        let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        match fault {
            Fault::PartitionInbound => {
                s.partition_in = true;
                s.injected += 1;
            }
            Fault::PartitionOutbound => {
                s.partition_out = true;
                s.injected += 1;
            }
            Fault::Heal => {
                s.partition_in = false;
                s.partition_out = false;
                s.stall_remaining = 0;
                s.injected += 1;
            }
            Fault::RefuseConnect => {
                let at = s.connects;
                s.scripted.push((Op::Connect(at), fault));
            }
            Fault::DropRead | Fault::StallReads(_) | Fault::CorruptRead => {
                let at = s.reads;
                s.scripted.push((Op::Read(at), fault));
            }
            Fault::DropWrite | Fault::CorruptWrite => {
                let at = s.writes;
                s.scripted.push((Op::Write(at), fault));
            }
        }
    }

    /// Clear both partitions and any pending stall (equivalent to
    /// `inject(Fault::Heal)`).
    pub fn heal(&self) {
        self.inject(Fault::Heal);
    }

    /// How many faults have fired so far (tests assert the plan actually
    /// ran instead of silently missing its scripted points).
    pub fn injected(&self) -> u64 {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).injected
    }

    /// Scripted entries that have not fired yet.
    pub fn pending(&self) -> usize {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .scripted
            .len()
    }

    /// Intercept a connection attempt; `Err` means the dial must fail
    /// without touching the network.
    pub(crate) fn on_connect(&self) -> io::Result<()> {
        let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        let idx = s.connects;
        s.connects += 1;
        if let Some(Fault::RefuseConnect) = s.fire(Op::Connect, idx) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "fault injection: connection refused",
            ));
        }
        Ok(())
    }

    /// Perform one read through the fault filter.
    pub(crate) fn read(&self, inner: &mut dyn Read, buf: &mut [u8]) -> io::Result<usize> {
        let action = {
            let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
            let idx = s.reads;
            s.reads += 1;
            let one_shot = s.fire(Op::Read, idx);
            if s.partition_in {
                ReadAction::Stall
            } else if s.stall_remaining > 0 {
                s.stall_remaining -= 1;
                ReadAction::Stall
            } else {
                match one_shot {
                    Some(Fault::DropRead) => ReadAction::Eof,
                    Some(Fault::CorruptRead) => ReadAction::Corrupt,
                    _ => ReadAction::Proceed,
                }
            }
        };
        match action {
            ReadAction::Proceed => inner.read(buf),
            ReadAction::Eof => Ok(0),
            ReadAction::Corrupt => {
                let n = inner.read(buf)?;
                if n > 0 {
                    if let Some(b) = buf.first_mut() {
                        *b ^= 0x40;
                    }
                }
                Ok(n)
            }
            ReadAction::Stall => {
                // Pace the caller's retry loop the way a real silent peer
                // paced by the socket read timeout would.
                std::thread::sleep(Duration::from_millis(1));
                Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "fault injection: read stalled",
                ))
            }
        }
    }

    /// Perform one write through the fault filter.
    pub(crate) fn write(&self, inner: &mut dyn Write, buf: &[u8]) -> io::Result<usize> {
        let one_shot = {
            let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
            let idx = s.writes;
            s.writes += 1;
            let one_shot = s.fire(Op::Write, idx);
            if s.partition_out {
                // Swallowed: the caller believes the bytes left.
                return Ok(buf.len());
            }
            one_shot
        };
        match one_shot {
            Some(Fault::DropWrite) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault injection: write dropped",
            )),
            Some(Fault::CorruptWrite) => {
                let mut copy = buf.to_vec();
                if let Some(b) = copy.first_mut() {
                    *b ^= 0x40;
                }
                inner.write(&copy)
            }
            _ => inner.write(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_in_order_and_is_consumed() {
        let inj = FaultPlan::new()
            .at(Op::Read(0), Fault::DropRead)
            .at(Op::Write(1), Fault::DropWrite)
            .build();
        assert_eq!(inj.pending(), 2);

        let mut src: &[u8] = b"abc";
        let mut buf = [0u8; 3];
        assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 0, "dropped read");
        assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 3, "then healthy");

        let mut sink = Vec::new();
        assert_eq!(inj.write(&mut sink, b"xy").unwrap(), 2, "write 0 healthy");
        let err = inj.write(&mut sink, b"zw").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn late_scripted_points_fire_on_the_next_operation() {
        // Entry at Read(5) while only 2 reads happen before the check:
        // fires on the first read at-or-past index 5.
        let inj = FaultPlan::new().at(Op::Read(5), Fault::DropRead).build();
        let mut src: &[u8] = &[7u8; 64];
        let mut buf = [0u8; 4];
        for i in 0..5 {
            assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 4, "read {i}");
        }
        assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 0, "read 5 dropped");
    }

    #[test]
    fn partitions_are_sticky_until_healed() {
        let inj = FaultPlan::new().build();
        inj.inject(Fault::PartitionInbound);
        inj.inject(Fault::PartitionOutbound);

        let mut src: &[u8] = b"abcd";
        let mut buf = [0u8; 4];
        for _ in 0..3 {
            let err = inj.read(&mut src, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
        let mut sink = Vec::new();
        assert_eq!(inj.write(&mut sink, b"xy").unwrap(), 2);
        assert!(sink.is_empty(), "partitioned write was swallowed");

        inj.heal();
        assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 4);
        assert_eq!(inj.write(&mut sink, b"xy").unwrap(), 2);
        assert_eq!(sink, b"xy");
    }

    #[test]
    fn corrupt_write_flips_a_byte_on_a_copy() {
        let inj = FaultPlan::new()
            .at(Op::Write(0), Fault::CorruptWrite)
            .build();
        let original = b"ETSN".to_vec();
        let mut sink = Vec::new();
        assert_eq!(inj.write(&mut sink, &original).unwrap(), 4);
        assert_ne!(sink, original, "wire bytes corrupted");
        assert_eq!(original, b"ETSN".to_vec(), "caller's buffer untouched");
    }

    #[test]
    fn stall_reads_counts_down() {
        let inj = FaultPlan::new()
            .at(Op::Read(0), Fault::StallReads(2))
            .build();
        let mut src: &[u8] = b"ab";
        let mut buf = [0u8; 2];
        for _ in 0..2 {
            let err = inj.read(&mut src, &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
        assert_eq!(inj.read(&mut src, &mut buf).unwrap(), 2);
    }

    #[test]
    fn refused_connect_consumes_one_attempt() {
        let inj = FaultPlan::new()
            .at(Op::Connect(1), Fault::RefuseConnect)
            .build();
        assert!(inj.on_connect().is_ok(), "connect 0 untouched");
        let err = inj.on_connect().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(inj.on_connect().is_ok(), "connect 2 healthy again");
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 8, 100);
        let b = FaultPlan::random(42, 8, 100);
        let c = FaultPlan::random(43, 8, 100);
        assert_eq!(a.entries, b.entries);
        assert_ne!(a.entries, c.entries);
        assert_eq!(a.entries.len(), 8);
        for (_, fault) in &a.entries {
            assert!(
                !matches!(fault, Fault::PartitionInbound | Fault::PartitionOutbound),
                "random plans inject only recoverable transients"
            );
        }
    }
}
