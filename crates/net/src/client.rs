//! The blocking client for one node: the [`Runtime`] surface, over a
//! socket.
//!
//! [`NetClient`] speaks one request/one reply at a time over a single
//! connection, with a per-request deadline. It exposes the same
//! ingest/drain/checkpoint verbs as the in-process
//! [`Runtime`](etsc_serve::Runtime) and implements
//! [`StreamService`](etsc_serve::StreamService), so a driver (or a test)
//! written against the trait runs unchanged in-process and over the wire —
//! which is how this crate proves its alarm sequences match the
//! in-process runtime's.

use std::time::{Duration, Instant};

use etsc_serve::{Record, StreamAlarm, StreamService};

use crate::error::WireError;
use crate::transport::{Conn, Endpoint};
use crate::wire::{read_frame, Message, ReadOutcome, MAX_FRAME_PAYLOAD};

/// Tuning for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for a whole request/reply exchange. Zero disables the
    /// deadline (the client waits as long as the node computes — the right
    /// choice when ingest legitimately blocks on remote backpressure).
    pub request_timeout: Duration,
    /// Largest reply payload the client will accept.
    pub max_frame_payload: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(30),
            max_frame_payload: MAX_FRAME_PAYLOAD,
        }
    }
}

/// A connection to one [`Node`](crate::Node).
pub struct NetClient {
    conn: Conn,
    endpoint: Endpoint,
    cfg: ClientConfig,
}

/// Unwrap a specific reply variant or produce a typed
/// [`WireError::UnexpectedReply`].
macro_rules! expect_reply {
    ($reply:expr, $expected:literal, $pat:pat => $out:expr) => {
        match $reply {
            $pat => Ok($out),
            other => Err(WireError::UnexpectedReply {
                expected: $expected,
                got: other.name(),
            }),
        }
    };
}

impl NetClient {
    /// Dial a node with the default [`ClientConfig`].
    pub fn connect(endpoint: &Endpoint) -> Result<Self, WireError> {
        Self::connect_with(endpoint, ClientConfig::default())
    }

    /// Dial a node.
    pub fn connect_with(endpoint: &Endpoint, cfg: ClientConfig) -> Result<Self, WireError> {
        // The socket-level timeout is a fraction of the request deadline so
        // the deadline check runs several times before it expires.
        let poll = if cfg.request_timeout.is_zero() {
            Duration::from_millis(20)
        } else {
            (cfg.request_timeout / 4).max(Duration::from_millis(1))
        };
        let conn = Conn::connect(endpoint, poll)?;
        Ok(Self {
            conn,
            endpoint: endpoint.clone(),
            cfg,
        })
    }

    /// The endpoint this client is connected to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Send one request and wait for its reply. A remote
    /// [`Message::Error`] reply is surfaced as the carried [`WireError`].
    fn request(&mut self, msg: &Message) -> Result<Message, WireError> {
        msg.write_to(&mut self.conn)?;
        let deadline = if self.cfg.request_timeout.is_zero() {
            None
        } else {
            Some(Instant::now() + self.cfg.request_timeout)
        };
        let outcome = read_frame(&mut self.conn, self.cfg.max_frame_payload, &mut || {
            deadline.is_some_and(|d| Instant::now() >= d)
        })?;
        match outcome {
            ReadOutcome::Frame(frame) => match Message::decode(&frame)? {
                Message::Error(err) => Err(err),
                reply => Ok(reply),
            },
            ReadOutcome::Closed => Err(WireError::ConnectionClosed),
            ReadOutcome::Stopped => Err(WireError::TimedOut),
        }
    }

    /// Round-trip probe; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, WireError> {
        let reply = self.request(&Message::Ping { token })?;
        expect_reply!(reply, "Pong", Message::Pong { token } => token)
    }

    /// Open a monitor for `stream` on the node; `Ok(false)` if it already
    /// existed.
    pub fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        let reply = self.request(&Message::OpenStream { stream })?;
        expect_reply!(reply, "OpenAck", Message::OpenAck { created } => created)
    }

    /// Ingest a batch on the node. Blocks while the node applies
    /// backpressure; a remote Reject-policy overflow comes back as
    /// [`WireError::QueueFull`] with nothing enqueued.
    pub fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        let reply = self.request(&Message::IngestBatch {
            records: batch.to_vec(),
        })?;
        expect_reply!(reply, "IngestAck", Message::IngestAck => ())
    }

    /// Drain the node and return the alarms it produced.
    pub fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let reply = self.request(&Message::Drain)?;
        expect_reply!(reply, "DrainAck", Message::DrainAck { alarms } => alarms)
    }

    /// Cut a checkpoint into the node's registry; returns the state
    /// envelope's size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64, WireError> {
        let reply = self.request(&Message::Checkpoint)?;
        expect_reply!(reply, "CheckpointAck", Message::CheckpointAck { bytes } => bytes)
    }

    /// Fetch the node's metrics as Prometheus text exposition.
    pub fn stats_prometheus(&mut self) -> Result<String, WireError> {
        let reply = self.request(&Message::Stats)?;
        expect_reply!(reply, "StatsAck", Message::StatsAck { text } => text)
    }

    /// Number of live streams on the node.
    pub fn stream_count(&mut self) -> Result<usize, WireError> {
        let reply = self.request(&Message::StreamCount)?;
        expect_reply!(reply, "StreamCountAck",
            Message::StreamCountAck { streams } => streams as usize)
    }

    /// Export `streams` from the node for migration. Atomic remotely: on
    /// error no stream was removed.
    pub fn migrate_out(&mut self, streams: &[u64]) -> Result<Vec<(u64, Vec<u8>)>, WireError> {
        let reply = self.request(&Message::MigrateOut {
            streams: streams.to_vec(),
        })?;
        expect_reply!(reply, "MigrateStreams", Message::MigrateStreams { streams } => streams)
    }

    /// Import streams exported from another node. Atomic remotely: on
    /// error none were adopted.
    pub fn migrate_in(&mut self, streams: &[(u64, Vec<u8>)]) -> Result<u64, WireError> {
        let reply = self.request(&Message::MigrateIn {
            streams: streams.to_vec(),
        })?;
        expect_reply!(reply, "MigrateInAck", Message::MigrateInAck { accepted } => accepted)
    }

    /// Gracefully shut the node down; returns its final drain. Consumes
    /// the client — the node closes the connection after the ack.
    pub fn shutdown(mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let reply = self.request(&Message::Shutdown)?;
        expect_reply!(reply, "ShutdownAck", Message::ShutdownAck { alarms } => alarms)
    }
}

impl StreamService for NetClient {
    type Error = WireError;

    fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        NetClient::open_stream(self, stream)
    }

    fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        NetClient::ingest(self, batch)
    }

    fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        NetClient::drain(self)
    }

    fn stream_count(&mut self) -> Result<usize, WireError> {
        NetClient::stream_count(self)
    }
}
