//! The blocking client for one node: the [`Runtime`] surface, over a
//! socket.
//!
//! [`NetClient`] speaks one request/one reply at a time over a single
//! connection, with a per-request deadline. It exposes the same
//! ingest/drain/checkpoint verbs as the in-process
//! [`Runtime`](etsc_serve::Runtime) and implements
//! [`StreamService`](etsc_serve::StreamService), so a driver (or a test)
//! written against the trait runs unchanged in-process and over the wire —
//! which is how this crate proves its alarm sequences match the
//! in-process runtime's.
//!
//! # Resilience
//!
//! Every request runs under the configured [`RetryPolicy`]: failures that
//! [`WireError::is_retryable`] classifies as worth another attempt are
//! retried with capped exponential backoff and deterministic jitter, after
//! an automatic [`reconnect`](NetClient::reconnect) when the error left
//! the connection in an unknown state ([`WireError::needs_reconnect`]).
//! Requests whose failure proves the node did **not** apply them
//! ([`WireError::leaves_request_unapplied`] — queue-full and busy
//! refusals) are always safe to retry; transport faults are only retried
//! for idempotent requests, or for ingest batches carrying an idempotency
//! tag (a nonzero [`ClientConfig::client_id`]), which the node
//! deduplicates server-side so a batch whose acknowledgement was lost in
//! transit is never applied twice.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use etsc_core::metrics::{Clock, Histogram, HistogramSnapshot};
use etsc_core::trace::{EventKind, Severity, SpanKind, TraceContext, Tracer};
use etsc_serve::{Record, StreamAlarm, StreamService};

use crate::error::WireError;
use crate::fault::FaultInjector;
use crate::metrics::MessageTimings;
use crate::retry::{RetryPolicy, RetryStats};
use crate::transport::{Conn, Endpoint};
use crate::wire::{read_frame, Message, ReadOutcome, MAX_FRAME_PAYLOAD};

/// Tuning for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for a whole request/reply exchange. Zero disables the
    /// deadline (the client waits as long as the node computes — the right
    /// choice when ingest legitimately blocks on remote backpressure).
    pub request_timeout: Duration,
    /// Largest reply payload the client will accept.
    pub max_frame_payload: usize,
    /// Retry schedule for failed requests ([`RetryPolicy::none`] restores
    /// fail-on-first-error).
    pub retry: RetryPolicy,
    /// Idempotency-tag identity for ingest batches. `0` (the default)
    /// sends untagged batches — the node applies every one, and transport
    /// faults during ingest are *not* retried because a lost
    /// acknowledgement would make the retry a duplicate. Any nonzero id
    /// must be unique per client *incarnation* per node — tagged batches
    /// carry `(id, seq)` and the node remembers the highest applied seq
    /// per id across checkpoints, so a rebuilt client reusing an id would
    /// see its restarted sequence numbers dropped as duplicates.
    pub client_id: u64,
    /// Optional deterministic fault injection on everything this client's
    /// connections do (tests only; `None` in production).
    pub faults: Option<FaultInjector>,
    /// Clock behind request deadlines and the client's RTT histograms:
    /// monotonic by default, manual in deterministic tests. A
    /// [`Clock::disabled`] clock leaves the RTT histograms empty **and
    /// disables request deadlines** — without a time source the client
    /// cannot tell when one expires — so only disable it where the node is
    /// trusted to always reply.
    pub clock: Clock,
    /// Optional client-side tracer. When present and enabled, every
    /// [`ingest`](NetClient::ingest) opens a trace (a `ClientIngest` root
    /// span) whose [`TraceContext`] rides the batch over the wire, and
    /// retry/backoff decisions are recorded as structured events. `None`
    /// (the default) sends untraced batches — zero extra bytes on the
    /// wire, zero overhead on the hot path.
    pub tracer: Option<Tracer>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(30),
            max_frame_payload: MAX_FRAME_PAYLOAD,
            retry: RetryPolicy::default(),
            client_id: 0,
            faults: None,
            clock: Clock::monotonic(),
            tracer: None,
        }
    }
}

/// A connection to one [`Node`](crate::Node).
pub struct NetClient {
    conn: Conn,
    endpoint: Endpoint,
    cfg: ClientConfig,
    /// Jitter stream for backoff delays (seeded from policy + identity:
    /// deterministic, but distinct per client).
    rng: StdRng,
    /// Sequence number the *next* ingest batch will carry. Advances only
    /// on success, so a failed batch re-sent later reuses its number and
    /// the node's dedup cursor can recognize it.
    next_seq: u64,
    stats: RetryStats,
    /// Round-trip time per request kind (successful exchanges only).
    rtt_ns: MessageTimings,
    /// Scheduled retry-backoff delays, recorded whether or not the clock
    /// is enabled (the delay is known, not measured).
    backoff_ns: Histogram,
}

/// Unwrap a specific reply variant or produce a typed
/// [`WireError::UnexpectedReply`].
macro_rules! expect_reply {
    ($reply:expr, $expected:literal, $pat:pat => $out:expr) => {
        match $reply {
            $pat => Ok($out),
            other => Err(WireError::UnexpectedReply {
                expected: $expected,
                got: other.name(),
            }),
        }
    };
}

impl NetClient {
    /// Dial a node with the default [`ClientConfig`].
    pub fn connect(endpoint: &Endpoint) -> Result<Self, WireError> {
        Self::connect_with(endpoint, ClientConfig::default())
    }

    /// Dial a node.
    pub fn connect_with(endpoint: &Endpoint, cfg: ClientConfig) -> Result<Self, WireError> {
        let conn =
            Conn::connect_with_faults(endpoint, Self::poll_timeout(&cfg), cfg.faults.clone())?;
        let rng = StdRng::seed_from_u64(cfg.retry.jitter_seed ^ cfg.client_id);
        Ok(Self {
            conn,
            endpoint: endpoint.clone(),
            cfg,
            rng,
            next_seq: 1,
            stats: RetryStats::default(),
            rtt_ns: MessageTimings::new(),
            backoff_ns: Histogram::new(),
        })
    }

    /// The socket-level timeout is a fraction of the request deadline so
    /// the deadline check runs several times before it expires.
    fn poll_timeout(cfg: &ClientConfig) -> Duration {
        if cfg.request_timeout.is_zero() {
            Duration::from_millis(20)
        } else {
            (cfg.request_timeout / 4).max(Duration::from_millis(1))
        }
    }

    /// The endpoint this client is connected to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// This client's idempotency-tag identity (0 = untagged).
    pub fn client_id(&self) -> u64 {
        self.cfg.client_id
    }

    /// The sequence number the next ingest batch will carry (advances only
    /// when a batch is acknowledged).
    pub fn next_batch_seq(&self) -> u64 {
        self.next_seq
    }

    /// Resilience counters accumulated by this client.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// Round-trip-time histograms per request kind (successful exchanges
    /// only; empty under a disabled clock).
    pub fn rtt_timings(&self) -> &MessageTimings {
        &self.rtt_ns
    }

    /// Distribution of scheduled retry-backoff delays, in nanoseconds.
    pub fn backoff_snapshot(&self) -> HistogramSnapshot {
        self.backoff_ns.snapshot()
    }

    /// Drop the current connection and dial the endpoint again. The old
    /// connection is replaced only once the new dial succeeds, and request
    /// state (the ingest sequence number, retry counters) carries over —
    /// this is the first-class form of the "drop and reconnect" the
    /// transport errors call for.
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        let fresh = Conn::connect_with_faults(
            &self.endpoint,
            Self::poll_timeout(&self.cfg),
            self.cfg.faults.clone(),
        )?;
        self.conn.shutdown();
        self.conn = fresh;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Send one request and wait for its reply, without retries,
    /// recording the round trip into the per-kind RTT histograms when the
    /// clock is enabled. A remote [`Message::Error`] reply is surfaced as
    /// the carried [`WireError`].
    fn request_once(&mut self, msg: &Message) -> Result<Message, WireError> {
        let clock = self.cfg.clock.clone();
        let slot = if clock.is_disabled() {
            None
        } else {
            MessageTimings::index_of(msg)
        };
        let started = if slot.is_some() { clock.now_ns() } else { 0 };
        let result = self.exchange(msg, &clock);
        if let (Some(slot), Ok(_)) = (slot, &result) {
            self.rtt_ns
                .record(slot, clock.now_ns().saturating_sub(started));
        }
        result
    }

    /// The raw request/reply exchange under a per-request deadline.
    /// Deadlines are read off `clock`, so a disabled clock disables them
    /// and a manual clock makes timeout behavior test-steppable.
    fn exchange(&mut self, msg: &Message, clock: &Clock) -> Result<Message, WireError> {
        msg.write_to(&mut self.conn)?;
        let deadline = if self.cfg.request_timeout.is_zero() || clock.is_disabled() {
            None
        } else {
            let timeout = u64::try_from(self.cfg.request_timeout.as_nanos()).unwrap_or(u64::MAX);
            Some(clock.now_ns().saturating_add(timeout))
        };
        let outcome = read_frame(&mut self.conn, self.cfg.max_frame_payload, &mut || {
            deadline.is_some_and(|d| clock.now_ns() >= d)
        })?;
        match outcome {
            ReadOutcome::Frame(frame) => match Message::decode(&frame)? {
                Message::Error(err) => Err(err),
                reply => Ok(reply),
            },
            ReadOutcome::Closed => Err(WireError::ConnectionClosed),
            ReadOutcome::Stopped => Err(WireError::TimedOut),
        }
    }

    /// Send a request under the retry policy. `idempotent` marks requests
    /// that are safe to re-send even when a transport fault hides whether
    /// the node applied the original (see the [module docs](self)).
    fn request(&mut self, msg: &Message, idempotent: bool) -> Result<Message, WireError> {
        let mut retries_done = 0u32;
        loop {
            let err = match self.request_once(msg) {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            let retryable = err.leaves_request_unapplied() || (idempotent && err.is_retryable());
            let out_of_attempts = retries_done + 1 >= self.cfg.retry.max_attempts.max(1);
            if !retryable || out_of_attempts {
                if retryable {
                    self.stats.giveups += 1;
                }
                if err.needs_reconnect() {
                    // The connection may still carry this request's late
                    // reply (a timed-out ack arriving after the deadline,
                    // say); reading that as the answer to the *next*
                    // request would desynchronize every reply after it.
                    // Kill the socket first so a failed redial can't
                    // resurrect it, then try for a fresh one.
                    self.conn.shutdown();
                    let _ = self.reconnect();
                }
                return Err(err);
            }
            self.stats.retries += 1;
            if err.needs_reconnect() {
                // A failed reconnect is not terminal: the remaining
                // attempts bound how long a dead endpoint is re-dialed.
                let _ = self.reconnect();
            }
            let delay = err
                .retry_after()
                .unwrap_or_else(|| self.cfg.retry.backoff(retries_done, &mut self.rng));
            let delay_ns = u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX);
            self.backoff_ns.record(delay_ns);
            if let Some(t) = self.cfg.tracer.as_ref().filter(|t| t.enabled()) {
                let code = MessageTimings::index_of(msg).unwrap_or(0) as u64;
                t.event(
                    Severity::Warn,
                    EventKind::Retry,
                    code,
                    (retries_done + 1) as u64,
                );
                t.event(Severity::Debug, EventKind::Backoff, code, delay_ns);
            }
            std::thread::sleep(delay);
            retries_done += 1;
        }
    }

    /// Round-trip probe; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> Result<u64, WireError> {
        let reply = self.request(&Message::Ping { token }, true)?;
        expect_reply!(reply, "Pong", Message::Pong { token } => token)
    }

    /// [`ping`](Self::ping) without retries — a failure probe for health
    /// checking, where retrying inside the probe would hide exactly the
    /// signal the caller wants.
    pub fn ping_once(&mut self, token: u64) -> Result<u64, WireError> {
        let reply = self.request_once(&Message::Ping { token })?;
        expect_reply!(reply, "Pong", Message::Pong { token } => token)
    }

    /// Open a monitor for `stream` on the node; `Ok(false)` if it already
    /// existed.
    pub fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        let reply = self.request(&Message::OpenStream { stream }, true)?;
        expect_reply!(reply, "OpenAck", Message::OpenAck { created } => created)
    }

    /// Ingest a batch on the node. Blocks while the node applies
    /// backpressure; a remote Reject-policy overflow comes back as
    /// [`WireError::QueueFull`] with nothing enqueued (after the policy's
    /// retries — each one safe, since the rejection is atomic).
    ///
    /// With a nonzero [`ClientConfig::client_id`] the batch carries an
    /// idempotency tag and transport faults are retried too: if the
    /// original attempt actually landed and only the acknowledgement was
    /// lost, the node reports the retry as an already-applied duplicate
    /// and nothing is ingested twice. On error the batch's sequence number
    /// is not consumed; re-sending the same records later reuses it, and
    /// the node's cursor still dedups against the original.
    pub fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        // With a live tracer and no caller-supplied context, this ingest
        // opens its own trace: a ClientIngest root whose id rides the
        // batch so every downstream span (node, shard, alarm) chains back
        // to this call site.
        let root = match self.cfg.tracer.as_ref().filter(|t| t.enabled()) {
            Some(t) => {
                let tracer = t.clone();
                let trace_id = tracer.new_trace_id();
                let span_id = tracer.alloc_span_id();
                let started = tracer.start();
                Some((tracer, trace_id, span_id, started))
            }
            None => None,
        };
        let ctx = root.as_ref().map(|(_, trace_id, span_id, _)| TraceContext {
            trace_id: *trace_id,
            parent_span: *span_id,
        });
        let result = self.ingest_ctx(batch, ctx);
        if let Some((tracer, trace_id, span_id, started)) = root {
            tracer.span_with_id(
                span_id,
                SpanKind::ClientIngest,
                trace_id,
                0,
                started,
                batch.len() as u64,
            );
        }
        result
    }

    /// [`ingest`](Self::ingest) under a caller-supplied [`TraceContext`]
    /// (or none). The cluster fan-out path uses this to parent every
    /// node-bound sub-batch to one cluster-level root span instead of
    /// opening a fresh trace per node.
    pub fn ingest_ctx(
        &mut self,
        batch: &[Record],
        ctx: Option<TraceContext>,
    ) -> Result<(), WireError> {
        let msg = Message::IngestBatch {
            client: self.cfg.client_id,
            seq: self.next_seq,
            records: batch.to_vec(),
            ctx,
        };
        let reply = self.request(&msg, self.cfg.client_id != 0)?;
        let applied = expect_reply!(reply, "IngestAck", Message::IngestAck { applied } => applied)?;
        if !applied {
            self.stats.duplicate_acks += 1;
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Fetch the node's recorded trace as a Chrome `trace_event` JSON
    /// document. A node without a tracer answers a complete empty
    /// document, so this is always safe to call. Idempotent (exporting
    /// does not consume the node's span ring), so transport faults retry.
    pub fn fetch_trace(&mut self) -> Result<String, WireError> {
        let reply = self.request(&Message::Trace, true)?;
        expect_reply!(reply, "TraceAck", Message::TraceAck { json } => json)
    }

    /// Drain the node and return the alarms it produced. Not retried on
    /// transport faults: a drain is destructive (the node hands its
    /// pending alarms to the reply), so a lost reply must surface rather
    /// than silently re-draining.
    pub fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let reply = self.request(&Message::Drain, false)?;
        expect_reply!(reply, "DrainAck", Message::DrainAck { alarms } => alarms)
    }

    /// Cut a checkpoint into the node's registry; returns the state
    /// envelope's size in bytes. Idempotent (a re-cut checkpoint
    /// overwrites the same registry entry), so transport faults retry.
    pub fn checkpoint(&mut self) -> Result<u64, WireError> {
        let reply = self.request(&Message::Checkpoint, true)?;
        expect_reply!(reply, "CheckpointAck", Message::CheckpointAck { bytes } => bytes)
    }

    /// Fetch the node's metrics as Prometheus text exposition.
    pub fn stats_prometheus(&mut self) -> Result<String, WireError> {
        let reply = self.request(&Message::Stats, true)?;
        expect_reply!(reply, "StatsAck", Message::StatsAck { text } => text)
    }

    /// Number of live streams on the node.
    pub fn stream_count(&mut self) -> Result<usize, WireError> {
        let reply = self.request(&Message::StreamCount, true)?;
        expect_reply!(reply, "StreamCountAck",
            Message::StreamCountAck { streams } => streams as usize)
    }

    /// Export `streams` from the node for migration. Atomic remotely: on
    /// error no stream was removed. Not retried on transport faults — a
    /// lost reply carries the only copy of the exported snapshots.
    pub fn migrate_out(&mut self, streams: &[u64]) -> Result<Vec<(u64, Vec<u8>)>, WireError> {
        let reply = self.request(
            &Message::MigrateOut {
                streams: streams.to_vec(),
            },
            false,
        )?;
        expect_reply!(reply, "MigrateStreams", Message::MigrateStreams { streams } => streams)
    }

    /// Import streams exported from another node. Atomic remotely: on
    /// error none were adopted. Not retried on transport faults — if the
    /// original import landed, a blind retry would surface a misleading
    /// [`DuplicateStream`](WireError::DuplicateStream).
    pub fn migrate_in(&mut self, streams: &[(u64, Vec<u8>)]) -> Result<u64, WireError> {
        let reply = self.request(
            &Message::MigrateIn {
                streams: streams.to_vec(),
            },
            false,
        )?;
        expect_reply!(reply, "MigrateInAck", Message::MigrateInAck { accepted } => accepted)
    }

    /// Gracefully shut the node down; returns its final drain. Consumes
    /// the client — the node closes the connection after the ack.
    pub fn shutdown(mut self) -> Result<Vec<StreamAlarm>, WireError> {
        let reply = self.request(&Message::Shutdown, false)?;
        expect_reply!(reply, "ShutdownAck", Message::ShutdownAck { alarms } => alarms)
    }
}

impl StreamService for NetClient {
    type Error = WireError;

    fn open_stream(&mut self, stream: u64) -> Result<bool, WireError> {
        NetClient::open_stream(self, stream)
    }

    fn ingest(&mut self, batch: &[Record]) -> Result<(), WireError> {
        NetClient::ingest(self, batch)
    }

    fn drain(&mut self) -> Result<Vec<StreamAlarm>, WireError> {
        NetClient::drain(self)
    }

    fn stream_count(&mut self) -> Result<usize, WireError> {
        NetClient::stream_count(self)
    }
}
