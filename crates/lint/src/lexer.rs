//! A minimal Rust lexer — just enough token structure for the lint rules.
//!
//! The rules need to distinguish *code* from *text*: `unwrap` inside a
//! string literal or a doc comment must never fire the panic-freedom rule,
//! and a `// lint: allow(...)` suppression must be recognized as a comment,
//! not as tokens. So the lexer understands exactly the lexical shapes that
//! can hide rule patterns — line and (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes, numbers — and
//! degrades everything else to single-character punctuation. It does not
//! parse: the rules are token-pattern matchers, not AST visitors.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `let`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`). Distinguished from char literals.
    Lifetime,
    /// Numeric literal, including suffixes (`0u8`, `1.5e-3`).
    Number,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
    /// Any other single character (`.`, `[`, `!`, …).
    Punct,
}

/// One lexed token: its class, exact source text, and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token's exact text, borrowed from the source.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// True if this token is trivia (a comment) rather than code.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting at `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consume a `"`-delimited string body (opening quote already consumed),
    /// honoring backslash escapes.
    fn scan_quoted(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump_n(2);
            } else if b == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consume a raw-string body starting at the `#`s or `"` after `r`/`br`.
    /// Returns false if this is not actually a raw string (e.g. `r#ident`).
    fn scan_raw_string(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1);
        // Body ends at `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            if b == b'"' && (0..hashes).all(|i| self.peek(1 + i) == Some(b'#')) {
                self.bump_n(1 + hashes);
                return true;
            }
            self.bump();
        }
        true
    }

    fn scan_number(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Exponent sign: `1e-5` / `1E+5`.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && matches!(self.peek(2), Some(d) if d.is_ascii_digit())
                {
                    self.bump_n(2);
                    continue;
                }
                self.bump();
            } else if b == b'.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` is a range, stop.
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Tokenize `src`. Never panics: unterminated literals and comments simply
/// run to end of input (the lint reads real files, but fixtures and hostile
/// inputs must not crash it).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let start = lx.pos;
        let line = lx.line;
        let kind = match c {
            b'/' if lx.peek(1) == Some(b'/') => {
                while lx.peek(0).is_some_and(|b| b != b'\n') {
                    lx.bump();
                }
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.scan_quoted(b'"');
                TokenKind::Str
            }
            b'\'' => {
                // Lifetime or char literal. `'\…'` and `'<any>'` are chars;
                // `'ident` not closed by `'` is a lifetime.
                if lx.peek(1) == Some(b'\\') {
                    lx.bump();
                    lx.scan_quoted(b'\'');
                    TokenKind::Char
                } else if lx.peek(1).is_some_and(is_ident_start) {
                    let mut end = 2;
                    while lx.peek(end).is_some_and(is_ident_continue) {
                        end += 1;
                    }
                    if lx.peek(end) == Some(b'\'') {
                        lx.bump_n(end + 1);
                        TokenKind::Char
                    } else {
                        lx.bump_n(end);
                        TokenKind::Lifetime
                    }
                } else if lx.peek(2) == Some(b'\'') {
                    lx.bump_n(utf8_len(lx.peek(1).unwrap_or(b' ')) + 2);
                    TokenKind::Char
                } else {
                    lx.bump();
                    TokenKind::Punct
                }
            }
            b'r' if matches!(lx.peek(1), Some(b'"') | Some(b'#')) => {
                lx.bump();
                if lx.scan_raw_string() {
                    TokenKind::Str
                } else {
                    // `r#ident` raw identifier: consume `#` and the name.
                    lx.bump();
                    while lx.peek(0).is_some_and(is_ident_continue) {
                        lx.bump();
                    }
                    TokenKind::Ident
                }
            }
            b'b' if lx.peek(1) == Some(b'"') => {
                lx.bump_n(2);
                lx.scan_quoted(b'"');
                TokenKind::Str
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.bump_n(2);
                lx.scan_quoted(b'\'');
                TokenKind::Char
            }
            b'b' if lx.peek(1) == Some(b'r') && matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                lx.bump_n(2);
                lx.scan_raw_string();
                TokenKind::Str
            }
            c if is_ident_start(c) => {
                while lx.peek(0).is_some_and(is_ident_continue) {
                    lx.bump();
                }
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lx.scan_number();
                TokenKind::Number
            }
            c => {
                lx.bump_n(utf8_len(c));
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            text: &lx.src[start..lx.pos],
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn strings_hide_rule_patterns() {
        let toks = kinds(r#"let s = "x.unwrap()"; y.unwrap();"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_and_hashes_round_trip() {
        let toks = kinds(r##"r#"unwrap() "quoted" HashMap"# + b"bytes" + br#"raw"#"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert!(strs[0].contains("unwrap"));
    }

    #[test]
    fn comments_are_trivia_with_text() {
        let toks = lex("code(); // lint: allow(x, y)\n/* block\nunwrap */ more");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::LineComment && t.text.contains("lint: allow")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::BlockComment && t.text.contains("unwrap")));
        // The `unwrap` inside the block comment is not an Ident token.
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[1].is_ident("ident"));
    }

    #[test]
    fn numbers_swallow_suffixes_and_exponents_but_not_ranges() {
        let toks = kinds("0u8 1.5e-3 0xFF 1..4");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0u8", "1.5e-3", "0xFF", "1", "4"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\n\nb /* c\nd */ e");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("e"), Some(4));
    }

    #[test]
    fn hostile_unterminated_input_does_not_panic() {
        for src in ["\"unterminated", "r#\"raw", "/* open", "'", "b'", "1e+"] {
            let _ = lex(src);
        }
    }
}
