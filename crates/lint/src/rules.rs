//! The rule registry: name, invariant, path gate, and checker for each of
//! the five rules.
//!
//! Gating is by workspace-relative path. Two kinds of gate exist:
//!
//! * **scoped bans** (`ordered-iteration`, `panic-freedom`, `cast-safety`)
//!   fire only inside the modules whose invariants they protect;
//! * **workspace bans** (`determinism`, `lock-hygiene`) fire everywhere
//!   except an explicit allowlist of modules whose *job* is the banned
//!   thing: timing in `crates/bench`, and the single sanctioned
//!   `Instant::now` site inside `etsc_core::metrics::clock` — every other
//!   module that needs time takes an injected
//!   [`Clock`](../../core/src/metrics/clock.rs) instead.

use crate::engine::{
    check_cast_safety, check_determinism, check_lock_hygiene, check_ordered_iteration,
    check_panic_freedom,
};
use crate::lexer::Token;

/// A checker: walks the significant tokens of one file (with the byte
/// offset of each line start) and calls `emit(line, message)` per finding.
pub type Checker = fn(&[Token<'_>], &[usize], &mut dyn FnMut(u32, String));

/// A lint rule: identity, documentation, gate, and checker.
pub struct Rule {
    /// Stable name, used in output and in `lint: allow(<name>, …)`.
    pub name: &'static str,
    /// One-line description of what the rule bans.
    pub summary: &'static str,
    /// The workspace invariant the rule protects.
    pub invariant: &'static str,
    /// Whether the rule runs on this workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// Token-level checker; calls `emit(line, message)` per finding.
    pub check: Checker,
}

/// Modules whose iteration order reaches serialized bytes or alarm order.
fn ordered_iteration_gate(path: &str) -> bool {
    [
        "crates/persist/src/",
        "crates/serve/src/",
        "crates/net/src/",
        "crates/stream/src/",
        "crates/classifiers/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// Runtime crates that must never panic while serving traffic.
fn panic_freedom_gate(path: &str) -> bool {
    [
        "crates/serve/src/",
        "crates/net/src/",
        "crates/persist/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// The two codecs whose byte layouts are frozen.
fn cast_safety_gate(path: &str) -> bool {
    path == "crates/persist/src/lib.rs" || path == "crates/net/src/wire.rs"
}

/// Everywhere except modules whose job is wall-clock time or timing:
/// `crates/bench` (benchmarks measure by definition), the `Clock`
/// module — the workspace's one sanctioned `Instant::now` call site
/// (production code reads time through an injected `Clock`, which tests
/// and fault harnesses replace with a manual one) — and the Chrome trace
/// exporter, which stamps each export document with a `SystemTime`
/// wall-clock epoch for the viewer. The stamp never feeds back into
/// alarms or spans: the trace e2e pins alarm sequences bit-identical
/// with tracing on, off, and under a manual clock.
fn determinism_gate(path: &str) -> bool {
    ![
        "crates/bench/",
        "crates/core/src/metrics/clock.rs",
        "crates/core/src/trace/export.rs",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

fn everywhere(_path: &str) -> bool {
    true
}

/// Every rule the tool knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "determinism",
        summary: "bans ambient clocks (`Instant::now`, `SystemTime`) and entropy-seeded RNGs",
        invariant: "alarm sequences are bit-identical under any thread/shard/fault-seed \
                    configuration, so no deterministic path may read wall-clock time or OS entropy",
        applies: determinism_gate,
        check: check_determinism,
    },
    Rule {
        name: "ordered-iteration",
        summary: "bans `HashMap`/`HashSet` where iteration order reaches bytes or alarm order",
        invariant: "persist snapshots and wire payloads are byte-stable, and drain order is \
                    deterministic — arbitrary hash iteration order would leak into both",
        applies: ordered_iteration_gate,
        check: check_ordered_iteration,
    },
    Rule {
        name: "panic-freedom",
        summary: "bans `unwrap`/`expect`, panicking macros, and direct indexing in runtime code",
        invariant: "serve/net/persist runtime code surfaces every failure as a typed error; a \
                    panic mid-request tears down a node instead of returning `WireError`",
        applies: panic_freedom_gate,
        check: check_panic_freedom,
    },
    Rule {
        name: "cast-safety",
        summary: "bans bare integer `as` casts in the persist and wire codecs",
        invariant: "the frozen byte formats never silently truncate a length or discriminant — \
                    narrowing must go through `try_from` with a typed error",
        applies: cast_safety_gate,
        check: check_cast_safety,
    },
    Rule {
        name: "lock-hygiene",
        summary: "flags a second live lock guard in one scope chain",
        invariant: "no code path ever holds two mutexes at once, so lock-ordering deadlocks are \
                    structurally impossible",
        applies: everywhere,
        check: check_lock_hygiene,
    },
];

/// Look up a rule by its stable name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}
