//! Workspace file discovery and whole-workspace runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::{lint_source, Violation};

/// Directories under the workspace root that hold lintable runtime code.
/// `crates/shims/` (offline stand-ins for registry crates), `tests/`,
/// `benches/`, and `examples/` are out of scope by construction.
const ROOTS: &[&str] = &["src", "crates"];

/// True if `rel` (forward-slash, workspace-relative) should be linted.
pub fn is_lintable(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    if rel.starts_with("crates/shims/") {
        return false;
    }
    // Integration tests, benches, and fixture corpora are not runtime code.
    !rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

/// Collect every lintable `.rs` file under `root`, as sorted
/// workspace-relative forward-slash paths.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(root, &path, out)?;
        } else if let Some(rel) = relative(root, &path) {
            if is_lintable(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Some(s)
}

/// Lint every file of the workspace at `root`. Returns `(files scanned,
/// violations)`.
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Violation>)> {
    let files = workspace_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        violations.extend(lint_source(rel, &source));
    }
    Ok((files.len(), violations))
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_excludes_shims_tests_benches_fixtures() {
        assert!(is_lintable("crates/serve/src/runtime.rs"));
        assert!(is_lintable("src/lib.rs"));
        assert!(!is_lintable("crates/shims/rand/src/lib.rs"));
        assert!(!is_lintable("crates/net/tests/failover.rs"));
        assert!(!is_lintable("crates/bench/benches/kernels.rs"));
        assert!(!is_lintable(
            "crates/lint/tests/fixtures/determinism/violations.rs"
        ));
        assert!(!is_lintable("crates/serve/src/runtime.txt"));
    }
}
