//! The rule engine: test-region masking, suppression comments, and the
//! five token-pattern rules, applied per file according to path gates.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{rule_by_name, Rule, RULES};

/// One finding: a banned pattern at a specific location, with the rule
/// that banned it and what to do instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (`determinism`, `panic-freedom`, …) or `suppression` for
    /// a malformed `lint: allow` comment.
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

/// A parsed `// lint: allow(rule, reason)` comment.
struct Allow {
    rule: &'static str,
    /// Line the suppression applies to (the comment's own line for a
    /// trailing comment, the next code line for a standalone one).
    target_line: u32,
    /// File-wide suppression (`lint: allow-file(...)`).
    whole_file: bool,
}

/// Keywords that can legally precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `match v { [..] => … }`).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Integer primitive names for the cast-safety rule.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Lint one file's source. `rel_path` is the workspace-relative path used
/// for rule gating (fixtures pass synthetic paths to opt into rules).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let tokens = lex(source);
    let in_test = test_region_mask(&tokens);
    // Significant tokens: code outside comments and test regions. `sig[k]`
    // indexes into `tokens`.
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment() && !in_test[i])
        .collect();

    let mut violations = Vec::new();
    let allows = collect_allows(rel_path, &tokens, &sig, &mut violations);

    let rules: Vec<&Rule> = RULES.iter().filter(|r| (r.applies)(rel_path)).collect();
    for rule in rules {
        (rule.check)(&tokens, &sig, &mut |line, message| {
            violations.push(Violation {
                file: rel_path.to_string(),
                line,
                rule: rule.name,
                message,
            });
        });
    }

    violations.retain(|v| {
        v.rule == "suppression"
            || !allows
                .iter()
                .any(|a| a.rule == v.rule && (a.whole_file || a.target_line == v.line))
    });
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]` item. The lint
/// gates *runtime* invariants; test code may unwrap and index freely.
fn test_region_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attribute(tokens, i) {
            // Skip any further attributes, then mask through the item body
            // (to the matching `}`) or declaration (to the `;`).
            let mut j = attr_end;
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            let mut depth = 0usize;
            let mut k = j;
            while k < tokens.len() {
                if tokens[k].is_punct("{") {
                    depth += 1;
                } else if tokens[k].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[k].is_punct(";") && depth == 0 {
                    break;
                }
                k += 1;
            }
            for m in mask.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                *m = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i..]` begins a `#[cfg(test)]` or `#[test]` attribute, return
/// the index one past its closing `]`.
fn match_test_attribute(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct("#") || !tokens.get(i + 1)?.is_punct("[") {
        return None;
    }
    let is_test = tokens.get(i + 2)?.is_ident("test") && tokens.get(i + 3)?.is_punct("]");
    let is_cfg_test = tokens.get(i + 2)?.is_ident("cfg")
        && tokens.get(i + 3)?.is_punct("(")
        && tokens.get(i + 4)?.is_ident("test")
        && tokens.get(i + 5)?.is_punct(")")
        && tokens.get(i + 6)?.is_punct("]");
    if is_test {
        Some(i + 4)
    } else if is_cfg_test {
        Some(i + 7)
    } else {
        None
    }
}

/// Skip an attribute starting at `#`, returning the index past its `]`.
fn skip_attribute(tokens: &[Token<'_>], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Parse every `lint: allow` comment. A suppression without a reason, with
/// an unknown rule name, or with bad syntax is itself a violation — the
/// whole point is that every exemption carries a reviewable justification.
fn collect_allows(
    rel_path: &str,
    tokens: &[Token<'_>],
    sig: &[usize],
    violations: &mut Vec<Violation>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let text = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (whole_file, body) = if let Some(b) = rest.strip_prefix("allow-file") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow") {
            (false, b)
        } else {
            violations.push(Violation {
                file: rel_path.to_string(),
                line: tok.line,
                rule: "suppression",
                message: format!("unrecognized lint directive `lint:{rest}`"),
            });
            continue;
        };
        let mut fail = |message: String| {
            violations.push(Violation {
                file: rel_path.to_string(),
                line: tok.line,
                rule: "suppression",
                message,
            });
        };
        let Some(inner) = body
            .trim()
            .strip_prefix('(')
            .and_then(|b| b.rfind(')').map(|end| &b[..end]))
        else {
            fail("malformed suppression: expected `lint: allow(<rule>, <reason>)`".to_string());
            continue;
        };
        let (rule_name, reason) = match inner.split_once(',') {
            Some((r, reason)) => (r.trim(), reason.trim()),
            None => (inner.trim(), ""),
        };
        let Some(rule) = rule_by_name(rule_name) else {
            fail(format!(
                "suppression names unknown rule `{rule_name}` (rules: {})",
                RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
            ));
            continue;
        };
        if reason.is_empty() {
            fail(format!(
                "suppression of `{rule_name}` has no reason — `lint: allow({rule_name}, <why this is safe>)`"
            ));
            continue;
        }
        // Trailing comment → suppress this line. Standalone comment →
        // suppress the next line holding significant code.
        let trailing = tokens[..i]
            .iter()
            .any(|t| t.line == tok.line && !t.is_comment());
        let target_line = if trailing {
            tok.line
        } else {
            sig.iter()
                .map(|&k| tokens[k].line)
                .find(|&l| l > tok.line)
                .unwrap_or(tok.line)
        };
        allows.push(Allow {
            rule: rule.name,
            target_line,
            whole_file,
        });
    }
    allows
}

type Emit<'e> = dyn FnMut(u32, String) + 'e;

/// `determinism`: ambient clocks and entropy-seeded RNG construction are
/// banned — alarm sequences must be a pure function of input and seeds.
pub(crate) fn check_determinism(tokens: &[Token<'_>], sig: &[usize], emit: &mut Emit<'_>) {
    for (k, &i) in sig.iter().enumerate() {
        let t = &tokens[i];
        if t.is_ident("Instant")
            && matches!(sig.get(k + 1), Some(&a) if tokens[a].is_punct(":"))
            && matches!(sig.get(k + 2), Some(&b) if tokens[b].is_punct(":"))
            && matches!(sig.get(k + 3), Some(&c) if tokens[c].is_ident("now"))
        {
            emit(
                t.line,
                "ambient clock: `Instant::now()` in a deterministic path — thread time in \
                 explicitly, or justify with `lint: allow(determinism, …)`"
                    .to_string(),
            );
        } else if t.is_ident("SystemTime") {
            emit(
                t.line,
                "ambient clock: `SystemTime` in a deterministic path".to_string(),
            );
        } else if t.kind == TokenKind::Ident
            && matches!(t.text, "thread_rng" | "from_entropy" | "OsRng")
        {
            emit(
                t.line,
                format!(
                    "entropy-seeded RNG: `{}` — construct RNGs from an explicit seed \
                     (`StdRng::seed_from_u64`) so runs replay bit-identically",
                    t.text
                ),
            );
        }
    }
}

/// `ordered-iteration`: `HashMap`/`HashSet` iteration order is arbitrary;
/// in modules whose iteration reaches bytes or alarm order, require the
/// BTree equivalents (or a justification).
pub(crate) fn check_ordered_iteration(tokens: &[Token<'_>], sig: &[usize], emit: &mut Emit<'_>) {
    for &i in sig {
        let t = &tokens[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            let btree = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            emit(
                t.line,
                format!(
                    "`{}` in an order-sensitive module: iteration order is arbitrary and can \
                     reach serialized bytes or alarm order — use `{btree}`, or justify with \
                     `lint: allow(ordered-iteration, …)`",
                    t.text
                ),
            );
        }
    }
}

/// `panic-freedom`: `unwrap`/`expect`, panicking macros, and direct
/// index/slice expressions are banned in serving/wire/persist runtime code.
pub(crate) fn check_panic_freedom(tokens: &[Token<'_>], sig: &[usize], emit: &mut Emit<'_>) {
    for (k, &i) in sig.iter().enumerate() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && matches!(t.text, "unwrap" | "expect") {
            let after_dot = k > 0 && tokens[sig[k - 1]].is_punct(".");
            if after_dot {
                emit(
                    t.line,
                    format!(
                        "`.{}()` in runtime code — surface a typed error instead, or justify \
                         with `lint: allow(panic-freedom, …)`",
                        t.text
                    ),
                );
            }
        } else if t.kind == TokenKind::Ident
            && matches!(t.text, "panic" | "unreachable" | "todo" | "unimplemented")
            && matches!(sig.get(k + 1), Some(&a) if tokens[a].is_punct("!"))
        {
            emit(
                t.line,
                format!(
                    "`{}!` in runtime code — return a typed error instead",
                    t.text
                ),
            );
        } else if t.is_punct("[") && k > 0 {
            let prev = &tokens[sig[k - 1]];
            let indexes = match prev.kind {
                TokenKind::Ident => !KEYWORDS.contains(&prev.text),
                TokenKind::Punct => prev.text == "]" || prev.text == ")" || prev.text == "?",
                _ => false,
            };
            if indexes {
                emit(
                    t.line,
                    "direct index/slice expression in runtime code — prefer `.get(…)`, \
                     `split_at`-style structure, or iterator patterns; if the bound is \
                     provable, justify with `lint: allow(panic-freedom, …)`"
                        .to_string(),
                );
            }
        }
    }
}

/// `cast-safety`: in the persist codec and the wire codec, a bare `as`
/// between integer types can silently truncate a length or a discriminant
/// — require `try_from`/`From` with a typed error, or a justification.
pub(crate) fn check_cast_safety(tokens: &[Token<'_>], sig: &[usize], emit: &mut Emit<'_>) {
    for (k, &i) in sig.iter().enumerate() {
        let t = &tokens[i];
        if t.is_ident("as") {
            if let Some(&n) = sig.get(k + 1) {
                let target = &tokens[n];
                if target.kind == TokenKind::Ident && INT_TYPES.contains(&target.text) {
                    emit(
                        t.line,
                        format!(
                            "bare `as {}` cast in codec code can silently truncate — use \
                             `try_from` with a typed error (or `From` where lossless), or \
                             justify with `lint: allow(cast-safety, …)`",
                            target.text
                        ),
                    );
                }
            }
        }
    }
}

/// `lock-hygiene`: a second `let`-bound lock guard while another is live in
/// the same scope chain is a lock-ordering hazard — flag it.
pub(crate) fn check_lock_hygiene(tokens: &[Token<'_>], sig: &[usize], emit: &mut Emit<'_>) {
    struct Guard {
        name: String,
        depth: usize,
        line: u32,
    }
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut k = 0usize;
    while k < sig.len() {
        let t = &tokens[sig[k]];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("drop")
            && matches!(sig.get(k + 1), Some(&a) if tokens[a].is_punct("("))
        {
            if let Some(&n) = sig.get(k + 2) {
                let name = tokens[n].text;
                guards.retain(|g| g.name != name);
            }
        } else if t.is_ident("let") {
            // Bound name: `let [mut] name = …`. Destructuring patterns are
            // skipped (a guard bound through one is out of scope here).
            let mut j = k + 1;
            if matches!(sig.get(j), Some(&a) if tokens[a].is_ident("mut")) {
                j += 1;
            }
            let name = match sig.get(j) {
                Some(&a) if tokens[a].kind == TokenKind::Ident => tokens[a].text.to_string(),
                _ => String::new(),
            };
            // Scan the initializer for a *direct* (un-nested) `.lock(`
            // chain. Stop at the statement `;`, or at a `{` at top nesting:
            // block initializers and `if let`/`let-else` bodies are walked
            // by the outer loop, so their braces and inner `let`s are
            // tracked at their real depth. A `.lock(` nested inside a call
            // argument is a temporary guard (dropped at the `;`), not a
            // binding. Crucially this scan is a lookahead only — `k`
            // advances one token at a time, so the outer loop still sees
            // every brace.
            let mut nest = 0usize;
            let mut m = j;
            let mut locks_here: Option<u32> = None;
            while let Some(&a) = sig.get(m) {
                let u = &tokens[a];
                if u.is_punct("{") && nest == 0 {
                    break;
                }
                if u.is_punct("(") || u.is_punct("{") || u.is_punct("[") {
                    nest += 1;
                } else if u.is_punct(")") || u.is_punct("}") || u.is_punct("]") {
                    nest = nest.saturating_sub(1);
                } else if u.is_punct(";") && nest == 0 {
                    break;
                } else if nest == 0
                    && u.is_punct(".")
                    && matches!(sig.get(m + 1), Some(&b) if tokens[b].is_ident("lock"))
                    && matches!(sig.get(m + 2), Some(&c) if tokens[c].is_punct("("))
                {
                    locks_here.get_or_insert(u.line);
                }
                m += 1;
            }
            if let Some(line) = locks_here {
                if let Some(live) = guards.iter().find(|g| g.depth <= depth) {
                    emit(
                        line,
                        format!(
                            "second lock guard acquired while `{}` (line {}) is still live in \
                             this scope — a second mutex in hand is a deadlock-ordering \
                             hazard; drop the first guard or justify with \
                             `lint: allow(lock-hygiene, …)`",
                            live.name, live.line
                        ),
                    );
                }
                if !name.is_empty() {
                    guards.push(Guard { name, depth, line });
                }
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(path: &str, src: &str) -> Vec<Violation> {
        lint_source(path, src)
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            fn runtime() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
                #[test]
                fn t() { z.unwrap(); }
            }
        "#;
        let v = lint_as("crates/serve/src/runtime.rs", src);
        let unwraps: Vec<_> = v.iter().filter(|v| v.message.contains("unwrap")).collect();
        assert_eq!(unwraps.len(), 1, "{v:?}");
        assert_eq!(unwraps[0].line, 2);
    }

    #[test]
    fn standalone_test_attribute_is_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn r() { y.unwrap(); }\n";
        let v = lint_as("crates/serve/src/runtime.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn trailing_allow_with_reason_suppresses_that_line_only() {
        let src = "fn f() {\n  a.unwrap(); // lint: allow(panic-freedom, poisoning is unrecoverable here)\n  b.unwrap();\n}\n";
        let v = lint_as("crates/net/src/node.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let src = "fn f() {\n  // lint: allow(panic-freedom, bound is checked two lines up)\n  let x = xs[0];\n  let y = ys[0];\n}\n";
        let v = lint_as("crates/net/src/node.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_itself_a_violation() {
        let src = "fn f() {\n  a.unwrap(); // lint: allow(panic-freedom)\n}\n";
        let v = lint_as("crates/net/src/node.rs", src);
        assert!(v.iter().any(|v| v.rule == "suppression"), "{v:?}");
        // And the unwrap is NOT suppressed.
        assert!(v.iter().any(|v| v.rule == "panic-freedom"), "{v:?}");
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let src = "// lint: allow(made-up-rule, because)\nfn f() {}\n";
        let v = lint_as("crates/net/src/node.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "suppression");
        assert!(v[0].message.contains("made-up-rule"));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// lint: allow-file(panic-freedom, scripted fault state is test-only plumbing)\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        let v = lint_as("crates/net/src/node.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn let_array_pattern_is_not_an_index_expression() {
        let src = "fn f(h: [u8; 4]) { let [a, b, c, d] = h; let _ = (a, b, c, d); }\n";
        let v = lint_as("crates/net/src/wire.rs", src);
        assert!(v.iter().all(|v| !v.message.contains("index")), "{v:?}");
    }

    #[test]
    fn double_lock_in_scope_is_flagged_and_drop_clears_it() {
        let bad = "fn f() { let a = m1.lock(); let b = m2.lock(); }";
        let v = lint_as("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-hygiene");

        let good = "fn f() { let a = m1.lock(); drop(a); let b = m2.lock(); }";
        assert!(lint_as("crates/core/src/x.rs", good).is_empty());

        // Guards in sibling scopes never overlap.
        let sibling = "fn f() { { let a = m1.lock(); } { let b = m2.lock(); } }";
        assert!(lint_as("crates/core/src/x.rs", sibling).is_empty());
    }
}
