//! Output rendering: the human table and `--json` machine output.

use crate::engine::Violation;

/// Render violations as an aligned human-readable table.
pub fn render_table(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::new();
    if violations.is_empty() {
        out.push_str(&format!(
            "etsc-lint: {files_scanned} files scanned, 0 violations\n"
        ));
        return out;
    }
    let locs: Vec<String> = violations
        .iter()
        .map(|v| format!("{}:{}", v.file, v.line))
        .collect();
    let loc_w = locs.iter().map(|l| l.len()).max().unwrap_or(0);
    let rule_w = violations.iter().map(|v| v.rule.len()).max().unwrap_or(0);
    for (v, loc) in violations.iter().zip(&locs) {
        out.push_str(&format!(
            "{loc:<loc_w$}  {rule:<rule_w$}  {msg}\n",
            rule = v.rule,
            msg = v.message
        ));
    }
    out.push_str(&format!(
        "\netsc-lint: {files_scanned} files scanned, {} violation(s)\n",
        violations.len()
    ));
    out
}

/// Render violations as a JSON array (hand-rolled: the workspace is
/// offline, no serde).
pub fn render_json(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&v.file),
            v.line,
            escape(v.rule),
            escape(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![Violation {
            file: "crates/net/src/wire.rs".to_string(),
            line: 92,
            rule: "cast-safety",
            message: "bare `as u32` cast \"quoted\"".to_string(),
        }]
    }

    #[test]
    fn table_lists_location_rule_message() {
        let t = render_table(&sample(), 3);
        assert!(t.contains("crates/net/src/wire.rs:92"));
        assert!(t.contains("cast-safety"));
        assert!(t.contains("1 violation"));
    }

    #[test]
    fn json_escapes_quotes_and_reports_counts() {
        let j = render_json(&sample(), 3);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"line\": 92"));
        // Empty case is valid JSON too.
        assert!(render_json(&[], 0).contains("\"violations\": []"));
    }
}
