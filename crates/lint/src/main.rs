//! CLI for the workspace invariant checker.
//!
//! ```text
//! etsc-lint [--deny-all] [--json] [--rule <name>]… [--root <path>] [--list-rules]
//! ```
//!
//! Exit code: 0 when clean (or advisory mode), 1 when `--deny-all` and any
//! violation stands, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use etsc_lint::{find_workspace_root, lint_workspace, report, RULES};

struct Args {
    deny_all: bool,
    json: bool,
    rules: Vec<String>,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        json: false,
        rules: Vec::new(),
        root: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => args.deny_all = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--rule" => {
                let name = it.next().ok_or("--rule needs a rule name")?;
                if !RULES.iter().any(|r| r.name == name) {
                    return Err(format!(
                        "unknown rule `{name}` (rules: {})",
                        RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                    ));
                }
                args.rules.push(name);
            }
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: etsc-lint [--deny-all] [--json] [--rule <name>]… [--root <path>] \
                     [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!(
                "{}\n  bans:      {}\n  protects:  {}",
                rule.name, rule.summary, rule.invariant
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("etsc-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let (files_scanned, mut violations) = match lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("etsc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.rules.is_empty() {
        violations.retain(|v| args.rules.iter().any(|r| r == v.rule) || v.rule == "suppression");
    }

    if args.json {
        print!("{}", report::render_json(&violations, files_scanned));
    } else {
        print!("{}", report::render_table(&violations, files_scanned));
    }

    if args.deny_all && !violations.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
