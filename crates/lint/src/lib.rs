#![warn(missing_docs)]

//! # etsc-lint
//!
//! A zero-dependency static-analysis gate for the invariants this
//! workspace's correctness story rests on. The property suites check
//! *outcomes* (alarm sequences invariant under threads/shards/faults,
//! snapshots bit-stable); this tool bans the *causes* that would break
//! them, mechanically, in CI:
//!
//! ```text
//! cargo run -p etsc-lint -- --deny-all
//! ```
//!
//! ## Rules
//!
//! | rule | bans | protects |
//! |------|------|----------|
//! | `determinism` | `Instant::now` / `SystemTime` / entropy-seeded RNGs (`thread_rng`, `from_entropy`, `OsRng`) outside `crates/bench` and the sanctioned `Clock` source in `core/src/metrics/clock.rs` | bit-identical alarm sequences under any thread/shard/fault-seed configuration |
//! | `ordered-iteration` | `HashMap`/`HashSet` in `persist`/`serve`/`net`/`stream`/`classifiers` | byte-stable snapshots and deterministic drain order — hash iteration order must never reach bytes or alarms |
//! | `panic-freedom` | `.unwrap()`/`.expect()`, `panic!`-family macros, direct index/slice expressions in `serve`/`net`/`persist` runtime code | a malformed input or lost invariant surfaces as a typed error, never a torn-down node |
//! | `cast-safety` | bare integer `as` casts in `persist/src/lib.rs` and `net/src/wire.rs` | the frozen codecs never silently truncate a length or discriminant |
//! | `lock-hygiene` | a second live `let`-bound lock guard in one scope chain | lock-ordering deadlocks stay structurally impossible |
//!
//! Test code is exempt: `#[cfg(test)]` / `#[test]` items, `tests/`,
//! `benches/`, `examples/`, and `crates/shims/` are skipped — the gates
//! protect *runtime* behavior, and tests asserting panics are fine.
//!
//! ## Suppressions
//!
//! Every exemption carries a reviewable justification, inline:
//!
//! ```text
//! // lint: allow(panic-freedom, mutex poisoning is unrecoverable; propagating poison helps nobody)
//! let s = self.0.lock().unwrap();
//! ```
//!
//! A trailing comment suppresses its own line; a standalone comment
//! suppresses the next code line; `lint: allow-file(rule, reason)`
//! suppresses a whole file. The reason is **mandatory** — an allow with no
//! reason, bad syntax, or an unknown rule name is itself a violation
//! (rule `suppression`), so suppressions cannot rot silently.
//!
//! ## Design
//!
//! The tool lexes rather than greps: a minimal Rust lexer
//! ([`lexer`]) distinguishes comments, strings (raw/byte included),
//! lifetimes, and code, so `"unwrap"` in a string literal or a doc comment
//! never fires a rule, and rules match real token patterns
//! (`Ident(Instant) :: Ident(now)`, `Punct(.) Ident(unwrap)`). It does not
//! parse: rules are token-pattern matchers with just enough structure
//! (brace depth, attribute spans, statement extent) to be precise about
//! the patterns they ban. False positives are handled the same way real
//! violations are: fix the code or justify the exemption.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use engine::{lint_source, Violation};
pub use rules::{rule_by_name, Rule, RULES};
pub use workspace::{find_workspace_root, lint_workspace, workspace_files};
