//! Fixture (true negatives): explicit seeds, logical clocks, and a
//! justified deadline clock.

pub fn seeded() -> u64 {
    let mut _rng = StdRng::seed_from_u64(42);
    7
}

pub fn logical_tick(clock: &mut u64) -> u64 {
    *clock += 1;
    *clock
}

pub fn deadline_expired() -> bool {
    // lint: allow(determinism, retry deadline only shapes I/O pacing and never reaches alarm bytes)
    let now = std::time::Instant::now();
    now.elapsed().as_millis() > 0
}
