//! Fixture (true negatives): explicit seeds, logical clocks, and a
//! justified deadline clock.

pub fn seeded() -> u64 {
    let mut _rng = StdRng::seed_from_u64(42);
    7
}

pub fn logical_tick(clock: &mut u64) -> u64 {
    *clock += 1;
    *clock
}

pub fn deadline_expired() -> bool {
    // lint: allow(determinism, retry deadline only shapes I/O pacing and never reaches alarm bytes)
    let now = std::time::Instant::now();
    now.elapsed().as_millis() > 0
}

pub fn injected_clock_timing(clock: &etsc_core::metrics::Clock) -> u64 {
    // Reading time through an injected Clock is the sanctioned pattern:
    // the ambient call site lives in core/src/metrics/clock.rs, and tests
    // swap in a manual clock.
    let started = clock.now_ns();
    clock.now_ns().saturating_sub(started)
}
