//! Fixture (true positives): ambient clocks and entropy-seeded RNGs in a
//! module that must replay bit-identically.

pub fn deadline_ms() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis() as u64
}

pub fn wall_clock_tag() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

pub fn jitter() -> f64 {
    let mut _rng = rand::thread_rng();
    0.0
}
