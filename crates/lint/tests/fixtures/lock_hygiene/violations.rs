//! Fixture (true positive): a second lock guard taken while the first is
//! still live in the same scope chain.

pub fn transfer(a: &std::sync::Mutex<u64>, b: &std::sync::Mutex<u64>) {
    let mut from = a.lock().unwrap_or_else(|p| p.into_inner());
    let mut into = b.lock().unwrap_or_else(|p| p.into_inner());
    *into += *from;
    *from = 0;
}
