//! Fixture (true negatives): guards confined to sibling scopes, and a
//! guard explicitly dropped before the next lock.

pub fn sequential(a: &std::sync::Mutex<u64>, b: &std::sync::Mutex<u64>) -> u64 {
    let first = {
        let g = a.lock().unwrap_or_else(|p| p.into_inner());
        *g
    };
    let second = b.lock().unwrap_or_else(|p| p.into_inner());
    first + *second
}

pub fn dropped(a: &std::sync::Mutex<u64>, b: &std::sync::Mutex<u64>) {
    let g = a.lock().unwrap_or_else(|p| p.into_inner());
    drop(g);
    let mut h = b.lock().unwrap_or_else(|p| p.into_inner());
    *h += 1;
}
