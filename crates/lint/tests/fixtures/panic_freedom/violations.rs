//! Fixture (true positives): panics and unchecked indexing in runtime code.

pub fn first(xs: &[u64]) -> u64 {
    xs[0]
}

pub fn must(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn must_msg(x: Option<u64>) -> u64 {
    x.expect("fixture")
}

pub fn boom() {
    panic!("fixture");
}

pub fn dead_end() {
    unreachable!();
}
