//! Fixture (true negatives): typed errors, checked access, a justified
//! provable bound, and exempt test code.

pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn checked(x: Option<u64>) -> Result<u64, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn destructured(pair: &[u8; 2]) -> u16 {
    let [lo, hi] = *pair;
    u16::from_le_bytes([lo, hi])
}

pub fn justified(xs: &[u64]) -> u64 {
    // lint: allow(panic-freedom, caller validated xs is non-empty one line above)
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let xs = vec![1u64];
        assert_eq!(xs[0], super::checked(Some(1)).unwrap());
    }
}
