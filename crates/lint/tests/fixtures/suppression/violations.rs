//! Fixture: malformed suppressions are themselves violations, so
//! exemptions cannot rot silently.

pub fn missing_reason(x: Option<u64>) -> u64 {
    // lint: allow(panic-freedom)
    x.unwrap()
}

pub fn unknown_rule(x: Option<u64>) -> u64 {
    // lint: allow(no-such-rule, the rule name does not exist)
    x.unwrap()
}
