//! Fixture: a well-formed suppression — rule name plus a mandatory
//! reason — silences exactly its target line.

pub fn justified(x: Option<u64>) -> u64 {
    // lint: allow(panic-freedom, fixture demonstrating a complete justification)
    x.unwrap()
}
