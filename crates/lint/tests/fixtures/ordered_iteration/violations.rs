//! Fixture (true positives): hash containers in an order-sensitive module.
//! Iteration order would reach serialized bytes.

use std::collections::HashMap;

pub fn snapshot(counts: &HashMap<u64, u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in counts {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut _seen = std::collections::HashSet::new();
    out
}
