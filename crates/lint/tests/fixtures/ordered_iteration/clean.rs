//! Fixture (true negatives): BTree containers serialize in key order, and
//! hash containers inside test modules are exempt.

use std::collections::{BTreeMap, BTreeSet};

pub fn snapshot(counts: &BTreeMap<u64, u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in counts {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut _seen = BTreeSet::new();
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_containers() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
