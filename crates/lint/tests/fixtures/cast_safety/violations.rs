//! Fixture (true positives): bare integer casts in codec code.

pub fn header_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}

pub fn widen(x: u32) -> usize {
    x as usize
}
