//! Fixture (true negatives): `try_from` with a typed error, and a
//! justified provably-widening cast.

pub fn header_len(payload: &[u8]) -> Result<u32, String> {
    u32::try_from(payload.len()).map_err(|_| "payload exceeds the u32 length field".to_string())
}

pub fn widen(x: u32) -> usize {
    // lint: allow(cast-safety, u32 → usize is widening on every supported target)
    x as usize
}

pub fn float_scale(x: u64) -> f64 {
    x as f64
}
