//! Fixture-corpus tests: every rule has true-positive and true-negative
//! cases, linted under synthetic workspace-relative paths so the path
//! gates are exercised exactly as a real run would.

use std::fs;
use std::path::Path;

use etsc_lint::lint_source;

/// Load a fixture file from `tests/fixtures/`.
fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint `fixture_rel` as if it lived at workspace path `as_path`; return
/// the rule names of every violation, in order.
fn rules(fixture_rel: &str, as_path: &str) -> Vec<&'static str> {
    lint_source(as_path, &fixture(fixture_rel))
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

fn count(haystack: &[&str], rule: &str) -> usize {
    haystack.iter().filter(|r| **r == rule).count()
}

#[test]
fn determinism_flags_clocks_and_entropy() {
    let got = rules("determinism/violations.rs", "crates/stream/src/monitor.rs");
    assert_eq!(count(&got, "determinism"), 3, "got {got:?}");
}

#[test]
fn determinism_accepts_seeds_and_justified_deadlines() {
    let got = rules("determinism/clean.rs", "crates/stream/src/monitor.rs");
    assert!(got.is_empty(), "got {got:?}");
}

#[test]
fn determinism_allowlists_bench_clock_source_and_trace_exporter() {
    // The same clock-heavy source is fine where wall time is the point:
    // benchmarks, the one sanctioned `Clock` implementation, and the
    // Chrome trace exporter's per-document wall-clock stamp.
    for path in [
        "crates/bench/src/main.rs",
        "crates/core/src/metrics/clock.rs",
        "crates/core/src/trace/export.rs",
    ] {
        let got = rules("determinism/violations.rs", path);
        assert_eq!(count(&got, "determinism"), 0, "at {path}: {got:?}");
    }
}

#[test]
fn determinism_still_gates_the_rest_of_the_trace_module() {
    // Only the exporter is allowlisted — the recording path (ring, span,
    // event, tracer) must stay on the injected clock.
    for path in [
        "crates/core/src/trace.rs",
        "crates/core/src/trace/ring.rs",
        "crates/core/src/trace/event.rs",
        "crates/core/src/trace/exporter_helper.rs",
    ] {
        let got = rules("determinism/violations.rs", path);
        assert_eq!(count(&got, "determinism"), 3, "at {path}: {got:?}");
    }
}

#[test]
fn determinism_gates_net_modules_that_take_an_injected_clock() {
    // client/supervisor used to be allowlisted for their wall-clock
    // deadlines; since they read time through an injected `Clock`, the
    // gate applies to them again.
    for path in ["crates/net/src/client.rs", "crates/net/src/supervisor.rs"] {
        let got = rules("determinism/violations.rs", path);
        assert_eq!(count(&got, "determinism"), 3, "at {path}: {got:?}");
    }
}

#[test]
fn ordered_iteration_flags_hash_containers_in_gated_modules() {
    let got = rules(
        "ordered_iteration/violations.rs",
        "crates/serve/src/runtime.rs",
    );
    // `HashMap` appears twice (import + signature), `HashSet` once.
    assert_eq!(count(&got, "ordered-iteration"), 3, "got {got:?}");
}

#[test]
fn ordered_iteration_accepts_btree_and_test_modules() {
    let got = rules("ordered_iteration/clean.rs", "crates/serve/src/runtime.rs");
    assert!(got.is_empty(), "got {got:?}");
}

#[test]
fn ordered_iteration_ignores_ungated_modules() {
    let got = rules("ordered_iteration/violations.rs", "crates/early/src/lib.rs");
    assert_eq!(count(&got, "ordered-iteration"), 0, "got {got:?}");
}

#[test]
fn panic_freedom_flags_panics_and_indexing() {
    let got = rules("panic_freedom/violations.rs", "crates/serve/src/runtime.rs");
    // xs[0], unwrap, expect, panic!, unreachable!.
    assert_eq!(count(&got, "panic-freedom"), 5, "got {got:?}");
}

#[test]
fn panic_freedom_accepts_typed_errors_allows_and_tests() {
    let got = rules("panic_freedom/clean.rs", "crates/serve/src/runtime.rs");
    assert!(got.is_empty(), "got {got:?}");
}

#[test]
fn panic_freedom_ignores_ungated_modules() {
    let got = rules("panic_freedom/violations.rs", "crates/core/src/lib.rs");
    assert_eq!(count(&got, "panic-freedom"), 0, "got {got:?}");
}

#[test]
fn cast_safety_flags_bare_integer_casts_in_codecs() {
    for path in ["crates/persist/src/lib.rs", "crates/net/src/wire.rs"] {
        let got = rules("cast_safety/violations.rs", path);
        assert_eq!(count(&got, "cast-safety"), 2, "at {path}: {got:?}");
    }
}

#[test]
fn cast_safety_accepts_try_from_justified_casts_and_float_casts() {
    let got = rules("cast_safety/clean.rs", "crates/net/src/wire.rs");
    assert!(got.is_empty(), "got {got:?}");
}

#[test]
fn cast_safety_only_gates_the_frozen_codecs() {
    let got = rules("cast_safety/violations.rs", "crates/serve/src/runtime.rs");
    assert_eq!(count(&got, "cast-safety"), 0, "got {got:?}");
}

#[test]
fn lock_hygiene_flags_overlapping_guards() {
    let got = rules("lock_hygiene/violations.rs", "crates/net/src/node.rs");
    assert_eq!(count(&got, "lock-hygiene"), 1, "got {got:?}");
}

#[test]
fn lock_hygiene_accepts_sibling_scopes_and_explicit_drop() {
    let got = rules("lock_hygiene/clean.rs", "crates/net/src/node.rs");
    assert_eq!(count(&got, "lock-hygiene"), 0, "got {got:?}");
}

#[test]
fn malformed_suppressions_are_violations() {
    let got = rules("suppression/violations.rs", "crates/serve/src/runtime.rs");
    // One allow with no reason, one naming an unknown rule.
    assert_eq!(count(&got, "suppression"), 2, "got {got:?}");
    // A malformed allow must not silence its target either.
    assert_eq!(count(&got, "panic-freedom"), 2, "got {got:?}");
}

#[test]
fn well_formed_suppressions_silence_their_line_only() {
    let got = rules("suppression/clean.rs", "crates/serve/src/runtime.rs");
    assert!(got.is_empty(), "got {got:?}");
}

#[test]
fn violations_report_file_line_and_message() {
    let vs = lint_source(
        "crates/serve/src/runtime.rs",
        &fixture("panic_freedom/violations.rs"),
    );
    let first = vs.first().expect("at least one violation");
    assert_eq!(first.file, "crates/serve/src/runtime.rs");
    assert!(first.line > 0);
    assert!(!first.message.is_empty());
}
