//! Meta-test: the real workspace must be lint-clean. This is the CI gate
//! (`cargo run -p etsc-lint -- --deny-all`) expressed as a test, so a
//! plain `cargo test` catches a freshly introduced violation too.

use std::path::Path;

use etsc_lint::{lint_workspace, report};

#[test]
fn workspace_has_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    let (files, violations) = lint_workspace(root).expect("walk workspace sources");
    assert!(
        files >= 90,
        "expected to scan the whole workspace, saw only {files} files — \
         did the file walk break?"
    );
    assert!(
        violations.is_empty(),
        "the workspace must stay lint-clean (fix the code or add a \
         justified `lint: allow`):\n{}",
        report::render_table(&violations, files)
    );
}
