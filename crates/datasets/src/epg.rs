//! Synthetic electrical penetration graph (insect feeding behavior).
//!
//! Fig 5 (right) searches eight hours of insect EPG data for GunPoint
//! homophones. EPG recordings of aphids/sharpshooters alternate between
//! stereotyped waveform regimes — non-probing (quiet), pathway/probing
//! (irregular oscillation), and ingestion (strong quasi-periodic waves).
//! The generator emits a regime-switching signal with those three modes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// EPG generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EpgConfig {
    /// Mean regime duration in samples.
    pub mean_regime: f64,
    /// Measurement noise std-dev.
    pub noise: f64,
}

impl Default for EpgConfig {
    fn default() -> Self {
        Self {
            mean_regime: 400.0,
            noise: 0.02,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    NonProbing,
    Probing,
    Ingestion,
}

/// Generate `len` samples of synthetic EPG.
pub fn epg_stream(len: usize, cfg: &EpgConfig, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = Normal::new(0.0, cfg.noise).unwrap();
    let mut out = Vec::with_capacity(len);
    let mut regime = Regime::NonProbing;
    let mut phase = 0.0f64;

    while out.len() < len {
        let u: f64 = rng.random::<f64>().max(1e-9);
        let dur = (-u.ln() * cfg.mean_regime).ceil() as usize + 50;
        let base_level = rng.random_range(-0.2..0.2);
        let freq = match regime {
            Regime::NonProbing => 0.0,
            Regime::Probing => rng.random_range(0.05..0.12),
            Regime::Ingestion => rng.random_range(0.15..0.25),
        };
        let amp = match regime {
            Regime::NonProbing => 0.0,
            Regime::Probing => rng.random_range(0.2..0.5),
            Regime::Ingestion => rng.random_range(0.6..1.0),
        };
        for _ in 0..dur {
            if out.len() >= len {
                break;
            }
            phase += freq;
            // Ingestion waves are asymmetric (sawtooth-flavored sine).
            let wave = match regime {
                Regime::Ingestion => {
                    let s = phase.sin();
                    s.signum() * s.abs().powf(0.6)
                }
                _ => phase.sin(),
            };
            out.push(base_level + amp * wave + noise.sample(&mut rng));
        }
        regime = match rng.random_range(0..3) {
            0 => Regime::NonProbing,
            1 => Regime::Probing,
            _ => Regime::Ingestion,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::std_dev;

    #[test]
    fn stream_has_requested_length() {
        assert_eq!(epg_stream(3_000, &EpgConfig::default(), 1).len(), 3_000);
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = EpgConfig::default();
        assert_eq!(epg_stream(1_000, &cfg, 2), epg_stream(1_000, &cfg, 2));
    }

    #[test]
    fn regimes_have_distinct_local_variance() {
        let cfg = EpgConfig {
            noise: 0.0,
            ..EpgConfig::default()
        };
        let s = epg_stream(50_000, &cfg, 3);
        // Collect per-chunk variances; the mixture of quiet and active
        // regimes should produce both near-zero and large values.
        let chunk_stds: Vec<f64> = s.chunks(200).map(std_dev).collect();
        let quiet = chunk_stds.iter().filter(|&&v| v < 0.05).count();
        let active = chunk_stds.iter().filter(|&&v| v > 0.3).count();
        assert!(quiet > 5, "some quiet regimes (got {quiet})");
        assert!(active > 5, "some active regimes (got {active})");
    }
}
