//! Smoothed random walks.
//!
//! Fig 5 (center) of the paper clusters GunPoint exemplars against their
//! nearest neighbors in "a smoothed random walk of length 2^24"; Appendix B
//! embeds GunPoint exemplars "in between long stretches of random walks" to
//! count streaming false positives. Random walks are the canonical
//! structure-free background: anything a classifier finds in one is a
//! hallucination.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use crate::shapes::moving_average;

/// A plain Gaussian random walk of length `len` with unit steps.
pub fn random_walk(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let step = Normal::new(0.0, 1.0).unwrap();
    let mut out = Vec::with_capacity(len);
    let mut acc = 0.0;
    for _ in 0..len {
        acc += step.sample(&mut rng);
        out.push(acc);
    }
    out
}

/// A smoothed random walk: a Gaussian walk passed through a centered moving
/// average of width `smooth`. This is the Fig 5 background. The paper uses
/// length `2^24`; experiments here default to `2^20` for runtime and accept
/// the full length behind a flag.
pub fn smoothed_random_walk(len: usize, smooth: usize, seed: u64) -> Vec<f64> {
    moving_average(&random_walk(len, seed), smooth.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::std_dev;

    #[test]
    fn walk_has_requested_length() {
        assert_eq!(random_walk(1000, 1).len(), 1000);
        assert_eq!(smoothed_random_walk(1000, 9, 1).len(), 1000);
    }

    #[test]
    fn walk_is_deterministic() {
        assert_eq!(random_walk(100, 7), random_walk(100, 7));
        assert_ne!(random_walk(100, 7), random_walk(100, 8));
    }

    #[test]
    fn walk_wanders() {
        let w = random_walk(10_000, 2);
        // A random walk's spread grows with sqrt(n); it must exceed i.i.d.
        // noise by a wide margin.
        assert!(std_dev(&w) > 5.0);
    }

    #[test]
    fn smoothing_reduces_increment_variance() {
        let raw = random_walk(5_000, 3);
        let smooth = smoothed_random_walk(5_000, 15, 3);
        let inc_var = |xs: &[f64]| {
            let d: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
            std_dev(&d)
        };
        assert!(inc_var(&smooth) < inc_var(&raw) * 0.5);
    }
}
