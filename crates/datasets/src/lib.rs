#![warn(missing_docs)]

//! # etsc-datasets
//!
//! Seeded synthetic dataset generators standing in for every dataset used by
//! *"When is Early Classification of Time Series Meaningful?"*. None of the
//! paper's data ships with this repository (UCR archive terms, proprietary
//! lab recordings), so each generator reproduces the *structural properties*
//! the paper's arguments depend on — see `DESIGN.md` for the substitution
//! table.
//!
//! All generators are deterministic given a seed: every figure and table in
//! `EXPERIMENTS.md` regenerates bit-identically.
//!
//! | Module | Stands in for | Key property preserved |
//! |---|---|---|
//! | [`gunpoint`] | UCR GunPoint | early discriminating region, flat padded tail |
//! | [`words`] | spoken-word MFCC tracks | prefix/inclusion/homophone structure |
//! | [`ecg`] | ICU ECG telemetry | medically meaningless per-beat mean/σ drift |
//! | [`random_walk`] | 2^24-point smoothed random walk | Fig 5 homophone background |
//! | [`eog`] | one hour of eye movement | Fig 5 homophone background |
//! | [`epg`] | eight hours of insect behavior | Fig 5 homophone background |
//! | [`chicken`] | 12.5G-point accelerometer | rare detectable dustbathing bouts |

pub mod chicken;
pub mod ecg;
pub mod eog;
pub mod epg;
pub mod gunpoint;
pub mod random_walk;
pub mod shapes;
pub mod transforms;
pub mod words;

pub use transforms::{denormalize, train_test_split, DenormalizeConfig};
