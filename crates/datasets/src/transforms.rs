//! Dataset-level transformations: the Fig 6 denormalization, stratified
//! train/test splits, and UCR-style preprocessing.

use etsc_core::{CoreError, Result, UcrDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the paper's "denormalization" perturbation (Section 4,
/// Fig 6): each test exemplar is shifted by a random offset and optionally
/// rescaled, modeling a camera tilt, a taller actor, sensor gain drift, etc.
#[derive(Debug, Clone, Copy)]
pub struct DenormalizeConfig {
    /// Offsets are drawn uniformly from `[-max_offset, max_offset]`.
    /// The paper uses 1.0.
    pub max_offset: f64,
    /// Scales are drawn uniformly from `[1 - scale_jitter, 1 + scale_jitter]`.
    /// The paper's headline experiment only shifts; set 0.0 to match.
    pub scale_jitter: f64,
}

impl Default for DenormalizeConfig {
    fn default() -> Self {
        Self {
            max_offset: 1.0,
            scale_jitter: 0.0,
        }
    }
}

/// Produce a denormalized copy of `data`: per-exemplar random shift (and
/// optional scale). Deterministic given `seed`.
///
/// This is the exact perturbation behind Table 1's "DeNormalized" column.
/// Note how small it is: the paper likens a shift in `[-1, 1]` (on
/// z-normalized data) to tilting the camera by ~1.9 degrees.
pub fn denormalize(data: &UcrDataset, cfg: DenormalizeConfig, seed: u64) -> UcrDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();
    out.map_series(|_, s| {
        let offset = rng.random_range(-cfg.max_offset..=cfg.max_offset);
        let scale = if cfg.scale_jitter > 0.0 {
            rng.random_range(1.0 - cfg.scale_jitter..=1.0 + cfg.scale_jitter)
        } else {
            1.0
        };
        for x in s.iter_mut() {
            *x = *x * scale + offset;
        }
    });
    out
}

/// Stratified train/test split: `train_per_class` exemplars of each class go
/// to the train set, the remainder to test. Deterministic given `seed`.
///
/// Mirrors the UCR GunPoint convention of a small train set (50) and larger
/// test set (150).
pub fn train_test_split(
    data: &UcrDataset,
    train_per_class: usize,
    seed: u64,
) -> Result<(UcrDataset, UcrDataset)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = data.n_classes();
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..n_classes {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        if members.len() <= train_per_class {
            return Err(CoreError::InvalidParameter(format!(
                "class {class} has {} exemplars; cannot reserve {train_per_class} for training and leave a test set",
                members.len()
            )));
        }
        members.shuffle(&mut rng);
        train_idx.extend_from_slice(&members[..train_per_class]);
        test_idx.extend_from_slice(&members[train_per_class..]);
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();
    Ok((data.subset(&train_idx)?, data.subset(&test_idx)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::mean;

    fn toy(n_per_class: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for i in 0..n_per_class {
                data.push((0..len).map(|j| (c * 100 + i + j) as f64).collect());
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn denormalize_shifts_mean() {
        let mut d = toy(5, 20);
        d.znormalize();
        let dn = denormalize(&d, DenormalizeConfig::default(), 7);
        let mut any_shifted = false;
        for i in 0..d.len() {
            let m = mean(dn.series(i));
            // Original mean is 0; offsets in [-1, 1].
            assert!(m.abs() <= 1.0 + 1e-9);
            if m.abs() > 0.05 {
                any_shifted = true;
            }
        }
        assert!(
            any_shifted,
            "with 10 exemplars some offset should exceed 0.05"
        );
    }

    #[test]
    fn denormalize_is_deterministic() {
        let d = toy(3, 10);
        let a = denormalize(&d, DenormalizeConfig::default(), 42);
        let b = denormalize(&d, DenormalizeConfig::default(), 42);
        assert_eq!(a, b);
        let c = denormalize(&d, DenormalizeConfig::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn denormalize_with_scale_changes_std() {
        let mut d = toy(4, 30);
        d.znormalize();
        let cfg = DenormalizeConfig {
            max_offset: 0.0,
            scale_jitter: 0.5,
        };
        let dn = denormalize(&d, cfg, 1);
        let stds: Vec<f64> = (0..dn.len())
            .map(|i| etsc_core::stats::std_dev(dn.series(i)))
            .collect();
        assert!(stds.iter().any(|&s| (s - 1.0).abs() > 0.05));
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let d = toy(10, 5);
        let (train, test) = train_test_split(&d, 4, 9).unwrap();
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 12);
        assert_eq!(train.class_counts(), vec![4, 4]);
        assert_eq!(test.class_counts(), vec![6, 6]);
        // Disjoint: every series appears exactly once across both splits.
        let mut seen: Vec<&[f64]> = Vec::new();
        for i in 0..train.len() {
            seen.push(train.series(i));
        }
        for i in 0..test.len() {
            assert!(!seen.contains(&test.series(i)));
        }
    }

    #[test]
    fn split_rejects_overdraw() {
        let d = toy(3, 5);
        assert!(train_test_split(&d, 3, 0).is_err());
        assert!(train_test_split(&d, 10, 0).is_err());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(6, 4);
        let (a1, b1) = train_test_split(&d, 2, 5).unwrap();
        let (a2, b2) = train_test_split(&d, 2, 5).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }
}
