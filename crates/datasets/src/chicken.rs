//! Synthetic chicken "backpack" accelerometer data with dustbathing bouts.
//!
//! Section 5 of the paper describes the authors' best candidate for a
//! meaningful ETSC domain: 12.5 billion points of chicken accelerometry in
//! which a dustbathing template (length ~120) detects the behavior at
//! z-normalized Euclidean distance ≤ 2.3, and a *truncated* template
//! (length ~70) performs statistically indistinguishably at threshold 1.7
//! (Fig 8).
//!
//! The generator produces a background of resting / walking / pecking
//! regimes with rare dustbathing bouts: vigorous, high-amplitude, roughly
//! 4–6 Hz shaking with a characteristic ramp-up–sustain–decay envelope
//! (vertical wing-shaking against the ground). The canonical bout shape is
//! exposed as [`dustbathing_template`] so experiments can search for it the
//! way the paper does.

use etsc_core::{AnnotatedStream, Event};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::shapes::smoothstep;

/// Label of dustbathing events in the annotated stream.
pub const CLASS_DUSTBATHING: usize = 0;

/// Chicken accelerometry generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChickenConfig {
    /// Nominal dustbathing bout length in samples (paper's template: ~120).
    pub bout_len: usize,
    /// Mean gap between dustbathing bouts, in samples.
    pub mean_gap: f64,
    /// Measurement noise std-dev.
    pub noise: f64,
}

impl Default for ChickenConfig {
    fn default() -> Self {
        Self {
            bout_len: 120,
            mean_gap: 4_000.0,
            noise: 0.02,
        }
    }
}

/// The canonical (noise-free) dustbathing bout: an amplitude envelope that
/// ramps up, sustains vigorous shaking, and decays, carried on a ~0.25
/// cycles/sample oscillation.
pub fn dustbathing_template(len: usize) -> Vec<f64> {
    assert!(len >= 8);
    let n = len as f64;
    (0..len)
        .map(|i| {
            let t = i as f64 / n;
            // Envelope: quick attack (first 20%), sustain, release (last 25%).
            let attack = smoothstep(t / 0.2);
            let release = smoothstep((1.0 - t) / 0.25);
            let env = attack.min(release);
            // Vigorous shaking plus a slower rocking component.
            let shake = (std::f64::consts::TAU * 0.22 * i as f64).sin();
            let rock = 0.35 * (std::f64::consts::TAU * 0.045 * i as f64).sin();
            env * (shake + rock)
        })
        .collect()
}

/// One rendition of a dustbathing bout.
///
/// Dustbathing is highly stereotyped — that is exactly what makes the
/// paper's 2.3-threshold pointwise template work. Renditions therefore vary
/// in amplitude (z-normalization removes it) and carry smooth additive
/// motor noise, but keep the template's tempo and phase: pointwise
/// Euclidean distance decorrelates completely under even a few percent of
/// tempo drift on an oscillatory pattern, which would contradict the
/// observed detectability of the behavior.
fn dustbathing_bout(cfg: &ChickenConfig, rng: &mut StdRng) -> Vec<f64> {
    let amp = rng.random_range(1.6..2.4);
    let mut bout: Vec<f64> = dustbathing_template(cfg.bout_len)
        .into_iter()
        .map(|v| amp * v)
        .collect();
    // Smooth motor noise: white noise through a short moving average, so
    // the perturbation is band-limited like real limb movement.
    let noise = Normal::new(0.0, 0.22).expect("positive sigma");
    let raw: Vec<f64> = (0..bout.len()).map(|_| noise.sample(rng)).collect();
    let smooth = crate::shapes::moving_average(&raw, 5);
    for (b, n) in bout.iter_mut().zip(&smooth) {
        *b += n;
    }
    bout
}

/// Generate `len` samples of accelerometry with annotated dustbathing bouts.
pub fn chicken_stream(len: usize, cfg: &ChickenConfig, seed: u64) -> AnnotatedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = Normal::new(0.0, cfg.noise).unwrap();
    let mut data: Vec<f64> = Vec::with_capacity(len);
    let mut events = Vec::new();

    // Next dustbathing onset: exponential around the mean gap.
    let mut next_bout = {
        let u: f64 = rng.random::<f64>().max(1e-9);
        ((-u.ln() * cfg.mean_gap) as usize).saturating_add(cfg.bout_len)
    };

    while data.len() < len {
        if data.len() >= next_bout {
            // Emit a dustbathing bout.
            let bout = dustbathing_bout(cfg, &mut rng);
            let start = data.len();
            for &v in &bout {
                if data.len() >= len {
                    break;
                }
                data.push(v + noise.sample(&mut rng));
            }
            if data.len() - start >= bout.len() / 2 {
                events.push(Event::new(start, data.len(), CLASS_DUSTBATHING));
            }
            let u: f64 = rng.random::<f64>().max(1e-9);
            next_bout = data
                .len()
                .saturating_add(((-u.ln() * cfg.mean_gap) as usize).max(cfg.bout_len * 2));
            continue;
        }

        // Background regime until the next bout (or stream end).
        let u: f64 = rng.random::<f64>().max(1e-9);
        let dur =
            ((-u.ln() * 300.0) as usize + 60).min(next_bout.saturating_sub(data.len()).max(1));
        match rng.random_range(0..3) {
            // Resting: flat.
            0 => {
                let level = rng.random_range(-0.1..0.1);
                for _ in 0..dur {
                    if data.len() >= len {
                        break;
                    }
                    data.push(level + noise.sample(&mut rng));
                }
            }
            // Walking: moderate periodic gait.
            1 => {
                let f = rng.random_range(0.06..0.1);
                let a = rng.random_range(0.25..0.45);
                let start = data.len();
                for i in 0..dur {
                    if data.len() >= len {
                        break;
                    }
                    data.push(
                        a * (std::f64::consts::TAU * f * (start + i) as f64).sin()
                            + noise.sample(&mut rng),
                    );
                }
            }
            // Pecking: sparse downward spikes.
            _ => {
                for _ in 0..dur {
                    if data.len() >= len {
                        break;
                    }
                    let spike = if rng.random::<f64>() < 0.04 {
                        -rng.random_range(0.5..0.9)
                    } else {
                        0.0
                    };
                    data.push(spike + noise.sample(&mut rng));
                }
            }
        }
    }
    AnnotatedStream::new(data, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::nn::nearest_neighbor;
    use etsc_core::stats::std_dev;

    #[test]
    fn template_has_quiet_ends_and_active_middle() {
        let t = dustbathing_template(120);
        assert_eq!(t.len(), 120);
        assert!(t[0].abs() < 0.05 && t[119].abs() < 0.05);
        assert!(std_dev(&t[30..90]) > 0.4, "vigorous middle");
    }

    #[test]
    fn stream_is_deterministic_and_annotated() {
        let cfg = ChickenConfig::default();
        let a = chicken_stream(50_000, &cfg, 1);
        let b = chicken_stream(50_000, &cfg, 1);
        assert_eq!(a.data, b.data);
        assert_eq!(a.events, b.events);
        assert!(
            !a.events.is_empty(),
            "50k samples at mean gap 4k should contain bouts"
        );
        for e in &a.events {
            assert!(e.end <= a.len());
            assert_eq!(e.label, CLASS_DUSTBATHING);
        }
    }

    #[test]
    fn bouts_are_rare() {
        let cfg = ChickenConfig::default();
        let s = chicken_stream(100_000, &cfg, 2);
        let bout_samples: usize = s.events.iter().map(|e| e.len()).sum();
        assert!(
            (bout_samples as f64) < 0.1 * s.len() as f64,
            "dustbathing must be a rare class"
        );
    }

    #[test]
    fn template_finds_real_bouts() {
        let cfg = ChickenConfig::default();
        let s = chicken_stream(60_000, &cfg, 3);
        let template = dustbathing_template(cfg.bout_len);
        let m = nearest_neighbor(&template, &s.data).unwrap();
        // The nearest neighbor of the template should be inside (or at) a
        // true bout.
        let hit = s
            .events
            .iter()
            .any(|e| e.contains_with_tolerance(m.start + template.len() / 2, cfg.bout_len));
        assert!(hit, "template NN at {} missed all bouts", m.start);
        assert!(
            m.dist < 6.0,
            "template should match a bout well, d={}",
            m.dist
        );
    }

    #[test]
    fn background_does_not_match_template_tightly() {
        // A stream with NO bouts: template distance stays large.
        let cfg = ChickenConfig {
            mean_gap: f64::MAX / 4.0,
            ..ChickenConfig::default()
        };
        let s = chicken_stream(30_000, &cfg, 4);
        assert!(s.events.is_empty());
        let template = dustbathing_template(cfg.bout_len);
        let m = nearest_neighbor(&template, &s.data).unwrap();
        assert!(
            m.dist > 2.3,
            "background should not breach the paper's 2.3 threshold, d={}",
            m.dist
        );
    }
}
