//! A GunPoint-like dataset generator.
//!
//! The paper (Section 5) reveals how the real GunPoint data was made: actors
//! paced by a five-second metronome — "wait about a second, do the behavior
//! for about two seconds, then return your hand to the side for the remaining
//! time". The x-coordinate of the right hand's centroid is tracked for 150
//! frames. The class difference is mostly the fumbling to draw the gun from
//! the holster *at the beginning* of the action, and the last one to two
//! seconds are a non-informative rest region.
//!
//! This generator reproduces those structural facts:
//!
//! * flat lead-in (~hand at side) with onset jitter,
//! * **Gun**: a fumble dip + overshoot while lifting (the hand reaches down
//!   to the holster, grips, clears it);
//!   **Point**: a smooth rise,
//! * a plateau with small tremor (aiming / pointing),
//! * return to rest, then a flat, non-discriminating tail,
//! * per-actor amplitude scaling (a taller actor's hand travels further in
//!   camera coordinates — this is what makes the Fig 6 "Ann changes to heels"
//!   analogy bite),
//! * mild sensor noise.
//!
//! Output is **raw** (not z-normalized); callers choose the normalization,
//! because that choice is the subject of the paper's Section 4.

use etsc_core::UcrDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::shapes::{add_gaussian_bump, add_noise, smoothstep};

/// Class label for the gun-draw behavior.
pub const CLASS_GUN: usize = 0;
/// Class label for the pointing behavior.
pub const CLASS_POINT: usize = 1;

/// Generation parameters. Defaults mirror the UCR GunPoint layout
/// (150 samples, ~30% lead-in + action + ~30% rest tail).
#[derive(Debug, Clone, Copy)]
pub struct GunPointConfig {
    /// Samples per exemplar (UCR GunPoint: 150).
    pub series_len: usize,
    /// Std-dev of additive sensor noise.
    pub noise: f64,
    /// Std-dev of per-exemplar amplitude scaling around 1.0 (actor height /
    /// camera distance variation).
    pub amplitude_jitter: f64,
    /// Std-dev of the onset time jitter, in samples.
    pub onset_jitter: f64,
}

impl Default for GunPointConfig {
    fn default() -> Self {
        Self {
            series_len: 150,
            noise: 0.015,
            amplitude_jitter: 0.08,
            onset_jitter: 3.0,
        }
    }
}

/// Generate one raw exemplar of the given class.
pub fn generate_one(class: usize, cfg: &GunPointConfig, rng: &mut StdRng) -> Vec<f64> {
    let n = cfg.series_len;
    let t = |frac: f64| frac * n as f64;
    let onset_noise = Normal::new(0.0, cfg.onset_jitter).expect("jitter >= 0");

    // Action timeline (fractions of the series):
    //   rest [0, .18) | rise [.18, .38) | plateau [.38, .62) | fall [.62, .75)
    //   | rest tail [.75, 1)   -- the "formatting convention" padding.
    let onset = t(0.18) + onset_noise.sample(rng);
    let rise_end = onset + t(0.20);
    let fall_start = t(0.62) + onset_noise.sample(rng);
    let fall_end = fall_start + t(0.13);

    let amp = 1.0 + Normal::new(0.0, cfg.amplitude_jitter).unwrap().sample(rng);

    let mut out = vec![0.0; n];
    for (i, y) in out.iter_mut().enumerate() {
        let x = i as f64;
        let level = if x < onset {
            0.0
        } else if x < rise_end {
            smoothstep((x - onset) / (rise_end - onset))
        } else if x < fall_start {
            1.0
        } else if x < fall_end {
            1.0 - smoothstep((x - fall_start) / (fall_end - fall_start))
        } else {
            0.0
        };
        *y = amp * level;
    }

    if class == CLASS_GUN {
        // The holster fumble: reaching down before lifting (a dip just before
        // the rise) and a small overshoot while clearing the holster. This is
        // the early, class-discriminating region the paper highlights.
        let dip_center = onset + t(0.02);
        let over_center = onset + t(0.10);
        add_gaussian_bump(&mut out, dip_center, t(0.015), -0.25 * amp);
        add_gaussian_bump(&mut out, over_center, t(0.02), 0.18 * amp);
    }

    // Aiming tremor on the plateau — same for both classes (non-informative).
    let tremor_freq = 0.35 + 0.1 * rng.random::<f64>();
    for (i, y) in out.iter_mut().enumerate() {
        let x = i as f64;
        if x >= rise_end && x < fall_start {
            *y += 0.02 * (tremor_freq * x).sin();
        }
    }

    add_noise(&mut out, cfg.noise, rng);
    out
}

/// Generate a raw (un-normalized) GunPoint-like dataset with `n_per_class`
/// exemplars of each class. Deterministic given `seed`.
pub fn generate(n_per_class: usize, cfg: &GunPointConfig, seed: u64) -> UcrDataset {
    assert!(n_per_class > 0, "need at least one exemplar per class");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(2 * n_per_class);
    let mut labels = Vec::with_capacity(2 * n_per_class);
    for class in [CLASS_GUN, CLASS_POINT] {
        for _ in 0..n_per_class {
            data.push(generate_one(class, cfg, &mut rng));
            labels.push(class);
        }
    }
    UcrDataset::new(data, labels).expect("generator satisfies UCR invariants")
}

/// Generate the dataset and z-normalize it — "UCR format", ready for the
/// classifiers that assume archive-style preprocessing.
pub fn generate_ucr(n_per_class: usize, cfg: &GunPointConfig, seed: u64) -> UcrDataset {
    let mut d = generate(n_per_class, cfg, seed);
    d.znormalize();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::{mean, std_dev};

    #[test]
    fn generates_requested_shape() {
        let d = generate(10, &GunPointConfig::default(), 1);
        assert_eq!(d.len(), 20);
        assert_eq!(d.series_len(), 150);
        assert_eq!(d.class_counts(), vec![10, 10]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GunPointConfig::default();
        assert_eq!(generate(5, &cfg, 9), generate(5, &cfg, 9));
        assert_ne!(generate(5, &cfg, 9), generate(5, &cfg, 10));
    }

    #[test]
    fn lead_in_and_tail_are_flat() {
        let cfg = GunPointConfig::default();
        let d = generate(20, &cfg, 2);
        for i in 0..d.len() {
            let s = d.series(i);
            let head = &s[..15];
            let tail = &s[140..];
            assert!(std_dev(head) < 0.1, "head should be near-flat");
            assert!(std_dev(tail) < 0.1, "tail should be near-flat");
            assert!(mean(head).abs() < 0.2);
            assert!(mean(tail).abs() < 0.2);
        }
    }

    #[test]
    fn plateau_is_elevated() {
        let d = generate(10, &GunPointConfig::default(), 3);
        for i in 0..d.len() {
            let s = d.series(i);
            let plateau = mean(&s[65..85]);
            assert!(plateau > 0.6, "plateau should be near amp, got {plateau}");
        }
    }

    #[test]
    fn classes_differ_in_early_region_not_late() {
        // Class-mean difference concentrated in the rise region.
        let cfg = GunPointConfig {
            noise: 0.0,
            amplitude_jitter: 0.0,
            onset_jitter: 0.0,
            ..GunPointConfig::default()
        };
        let d = generate(5, &cfg, 4);
        let avg = |class: usize, range: std::ops::Range<usize>| -> f64 {
            let mut acc = 0.0;
            let mut cnt = 0;
            for i in 0..d.len() {
                if d.label(i) == class {
                    acc += d.series(i)[range.clone()].iter().sum::<f64>();
                    cnt += range.len();
                }
            }
            acc / cnt as f64
        };
        let early_diff = (avg(CLASS_GUN, 25..45) - avg(CLASS_POINT, 25..45)).abs();
        let late_diff = (avg(CLASS_GUN, 120..150) - avg(CLASS_POINT, 120..150)).abs();
        assert!(
            early_diff > 10.0 * late_diff.max(1e-6),
            "discrimination must be early: early {early_diff} vs late {late_diff}"
        );
    }

    #[test]
    fn ucr_variant_is_znormalized() {
        let d = generate_ucr(5, &GunPointConfig::default(), 5);
        assert!(d.is_znormalized(1e-6));
    }

    #[test]
    fn amplitude_jitter_varies_scale() {
        let cfg = GunPointConfig {
            noise: 0.0,
            ..GunPointConfig::default()
        };
        let d = generate(20, &cfg, 6);
        let maxes: Vec<f64> = (0..d.len())
            .map(|i| d.series(i).iter().cloned().fold(f64::MIN, f64::max))
            .collect();
        let spread = maxes.iter().cloned().fold(f64::MIN, f64::max)
            - maxes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.05, "actor variation should change peak height");
    }
}
